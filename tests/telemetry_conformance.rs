//! Sim ↔ wire trace conformance.
//!
//! The protocol event trace is recorded once, inside the sans-io cores,
//! in logical coordinates only (node, epoch, cycle, peer, detail — no
//! wall clock). Every engine that drives those cores therefore emits the
//! same event sequence for the same seed and scenario. This test pins
//! that property across the widest gap in the repo: the event-driven
//! simulator versus the multiplexed UDP runtime moving real datagrams
//! through the kernel.
//!
//! The scenario is the smallest one where timing cannot reorder logical
//! history: two nodes, so `GETNEIGHBOR()` is forced (the engines' peer
//! samplers draw from different RNG streams, but with one candidate the
//! draws cannot diverge), zero simulated delay, no drift, no failures.
//! Both engines seed the gossip cores identically — the simulator hands
//! its nodes `seed ^ 0xE7E7`, so the mux cluster is spawned with exactly
//! that seed. Traces are compared per node, truncated to the epochs both
//! runs fully completed (the engines stop at slightly different points
//! of the final partial epoch).

use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
use epidemic_net::TraceEvent;
use epidemic_sim::event::EventConfig;
use epidemic_sim::scenario::{Scenario, ValueInit};

const SEED: u64 = 0xD5_2004;
const GAMMA: u32 = 4;
const CYCLE_MS: u64 = 60;

fn node_config() -> NodeConfig {
    NodeConfig::builder()
        .gamma(GAMMA)
        .cycle_length(CYCLE_MS)
        .timeout(CYCLE_MS / 2)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

/// Events of `node` with `epoch < limit`, in recording order.
fn history(events: &[TraceEvent], node: u64, limit: u64) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| e.node == node && e.epoch < limit)
        .copied()
        .collect()
}

/// Largest epoch stamped on any of `node`'s events.
fn max_epoch(events: &[TraceEvent], node: u64) -> u64 {
    events
        .iter()
        .filter(|e| e.node == node)
        .map(|e| e.epoch)
        .max()
        .unwrap_or(0)
}

#[test]
fn sim_and_mux_emit_identical_event_traces() {
    // Simulated run: ticks are milliseconds, delay effectively zero.
    let sim_out = EventConfig {
        scenario: Scenario {
            n: 2,
            values: ValueInit::Linear,
            ..Scenario::default()
        },
        node: node_config(),
        delay: (0, 1),
        drift: 0.0,
        duration: 2_000,
        trace_capacity: 4_096,
        ..EventConfig::default()
    }
    .run(SEED);
    let sim_events: Vec<TraceEvent> = sim_out.traces.into_iter().flatten().collect();

    // Wire run: the same cores behind real UDP sockets. The simulator
    // seeds its gossip nodes with `seed ^ 0xE7E7` (its joiner stream);
    // handing the cluster that value aligns the per-node RNG streams.
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(2, node_config())
            .with_seed(SEED ^ 0xE7E7)
            .with_workers(1)
            .with_readers(1)
            .with_trace(4_096),
        |i| i as f64,
    )
    .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(1_400));
    let mut mux_events: Vec<TraceEvent> = Vec::new();
    for i in 0..cluster.len() {
        mux_events.extend(cluster.take_trace(i));
    }
    cluster.shutdown();

    // Compare each node's history over the epochs BOTH runs completed.
    let common = [0u64, 1]
        .iter()
        .map(|&n| max_epoch(&sim_events, n).min(max_epoch(&mux_events, n)))
        .min()
        .unwrap();
    assert!(
        common >= 2,
        "too little shared history (common epoch {common}) — \
         sim {} events, mux {} events",
        sim_events.len(),
        mux_events.len()
    );
    for node in [0u64, 1] {
        let sim_history = history(&sim_events, node, common);
        let mux_history = history(&mux_events, node, common);
        assert!(!sim_history.is_empty(), "node {node}: empty sim history");
        // Identical as structs and as JSONL lines (the export format).
        assert_eq!(
            sim_history, mux_history,
            "node {node}: trace sequences diverge"
        );
        let sim_jsonl: Vec<String> = sim_history.iter().map(TraceEvent::to_json).collect();
        let mux_jsonl: Vec<String> = mux_history.iter().map(TraceEvent::to_json).collect();
        assert_eq!(sim_jsonl, mux_jsonl, "node {node}: JSONL export diverges");
    }
}
