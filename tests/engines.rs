//! Cross-engine conformance: the *same* [`Scenario`] value drives the
//! cycle-driven and the event-driven engine, and both converge to the same
//! aggregate under the same adversity (peak values, churn, message loss).
//! This is the point of the scenario layer — robustness claims hold in
//! both time models, not just the synchronous idealization. The NEWSCAST
//! scenarios exercise *gossiped* membership in the event engine: partial
//! views maintained by view exchanges under the same delay/loss model,
//! not uniform sampling over the live set.

use epidemic::aggregation::{InstanceSpec, NodeConfig};
use epidemic::sim::event::{EventConfig, EventOutcome, MembershipModel};
use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::failure::{CommFailure, FailureModel};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

/// gamma matching the cycle engine's 30-cycle epochs.
fn event_node(gamma: u32) -> NodeConfig {
    NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(1_000)
        .timeout(200)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

fn run_event(scenario: Scenario, seed: u64) -> EventOutcome {
    EventConfig {
        scenario,
        node: event_node(30),
        delay: (10, 50),
        drift: 0.01,
        duration: 45_000,
        membership: MembershipModel::Gossip,
        ..EventConfig::default()
    }
    .run(seed)
}

fn run_both(scenario: Scenario, seed: u64) -> (f64, f64) {
    let cycle_est = ExperimentConfig {
        scenario: scenario.clone(),
        cycles: 30,
        aggregate: AggregateSetup::Average,
    }
    .run(seed)
    .mean_final_estimate();
    let event_out = run_event(scenario, seed);
    let event_est = event_out
        .mean_epoch_estimate(0)
        .expect("event engine completed no epoch");
    (cycle_est, event_est)
}

#[test]
fn engines_agree_on_peak_average_with_message_loss() {
    // A lost message under the peak distribution can carry a macroscopic
    // share of the total mass, so individual runs scatter; agreement is a
    // property of the expectation. Average both engines over seeds.
    let scenario = Scenario {
        n: 400,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Peak { total: 400.0 },
        comm: CommFailure::messages(0.05),
        ..Scenario::default()
    };
    let seeds = 1u64..=8;
    let (mut cycle_sum, mut event_sum) = (0.0, 0.0);
    let reps = seeds.clone().count() as f64;
    for seed in seeds {
        let (c, e) = run_both(scenario.clone(), seed);
        cycle_sum += c;
        event_sum += e;
    }
    let (cycle_mean, event_mean) = (cycle_sum / reps, event_sum / reps);
    let truth = 1.0;
    assert!(
        (cycle_mean - truth).abs() < 0.15,
        "cycle engine mean estimate {cycle_mean} vs truth {truth}"
    );
    assert!(
        (event_mean - truth).abs() < 0.15,
        "event engine mean estimate {event_mean} vs truth {truth}"
    );
    assert!(
        (cycle_mean - event_mean).abs() < 0.2,
        "engines disagree: cycle {cycle_mean} vs event {event_mean}"
    );
}

#[test]
fn engines_agree_under_churn() {
    // Constant values keep the true average at 5.0 regardless of which
    // nodes are substituted, so both engines must report it despite 10%
    // of the population churning every epoch.
    let scenario = Scenario {
        n: 300,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Constant(5.0),
        failure: FailureModel::Churn { per_cycle: 1 },
        joiner_value: 5.0,
        ..Scenario::default()
    };
    let (cycle_est, event_est) = run_both(scenario, 7);
    assert!(
        (cycle_est - 5.0).abs() < 0.1,
        "cycle engine estimate {cycle_est}"
    );
    assert!(
        (event_est - 5.0).abs() < 0.1,
        "event engine estimate {event_est}"
    );
    assert!((cycle_est - event_est).abs() < 0.1);
}

#[test]
fn event_engine_is_deterministic_under_crash_schedule() {
    let config = EventConfig {
        scenario: Scenario {
            n: 128,
            values: ValueInit::Linear,
            failure: FailureModel::SuddenDeath {
                fraction: 0.3,
                at_cycle: 5,
            },
            ..Scenario::default()
        },
        node: event_node(15),
        delay: (10, 50),
        drift: 0.02,
        duration: 40_000,
        membership: MembershipModel::Gossip,
        ..EventConfig::default()
    };
    let a = config.run(11);
    let b = config.run(11);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.messages_lost, b.messages_lost);
    assert_eq!(a.epoch_entries, b.epoch_entries);
    assert_eq!(a.final_alive, b.final_alive);
    assert_eq!(a.epoch_estimates(1), b.epoch_estimates(1));
    // And the crash actually happened.
    assert!(a.final_alive < 128);
}

#[test]
fn engines_agree_on_newscast_under_churn_and_loss() {
    // The acceptance scenario for gossiped membership: a NEWSCAST overlay
    // whose views are maintained by event-level exchanges, while churn
    // substitutes nodes every cycle and 20% of messages are lost. Both
    // engines must still land on the true average. Loss scatters single
    // runs (lost replies leak mass), so compare means over seeds.
    let scenario = Scenario {
        n: 300,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Uniform { lo: 0.0, hi: 10.0 },
        failure: FailureModel::Churn { per_cycle: 2 },
        comm: CommFailure::messages(0.2),
        joiner_value: 5.0,
        ..Scenario::default()
    };
    let seeds = 1u64..=6;
    let reps = seeds.clone().count() as f64;
    let (mut cycle_sum, mut event_sum) = (0.0, 0.0);
    let mut view_traffic = 0usize;
    for seed in seeds {
        let cycle_est = ExperimentConfig {
            scenario: scenario.clone(),
            cycles: 30,
            aggregate: AggregateSetup::Average,
        }
        .run(seed)
        .mean_final_estimate();
        let event_out = run_event(scenario.clone(), seed);
        let event_est = event_out
            .mean_epoch_estimate(0)
            .expect("event engine completed no epoch");
        view_traffic += event_out.view_messages_sent;
        cycle_sum += cycle_est;
        event_sum += event_est;
    }
    let (cycle_mean, event_mean) = (cycle_sum / reps, event_sum / reps);
    let truth = 5.0; // mean of U[0, 10)
    assert!(
        (cycle_mean - truth).abs() < 0.5,
        "cycle engine mean estimate {cycle_mean} vs truth {truth}"
    );
    assert!(
        (event_mean - truth).abs() < 0.5,
        "event engine mean estimate {event_mean} vs truth {truth}"
    );
    assert!(
        (cycle_mean - event_mean).abs() < 0.5,
        "engines disagree: cycle {cycle_mean} vs event {event_mean}"
    );
    // The event engine really gossiped membership (the conformance point
    // of this suite: no silent fallback to live-set sampling).
    assert!(view_traffic > 0, "no view exchanges simulated");
}

#[test]
fn event_engine_is_deterministic_with_membership_gossip() {
    // Same seed ⇒ identical estimates, with view gossip, churn, and loss
    // all enabled at once.
    let scenario = Scenario {
        n: 200,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Uniform { lo: 0.0, hi: 10.0 },
        failure: FailureModel::Churn { per_cycle: 3 },
        comm: CommFailure::messages(0.2),
        joiner_value: 5.0,
        ..Scenario::default()
    };
    let a = run_event(scenario.clone(), 23);
    let b = run_event(scenario, 23);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.view_messages_sent, b.view_messages_sent);
    assert_eq!(a.view_messages_lost, b.view_messages_lost);
    assert_eq!(a.epoch_entries, b.epoch_entries);
    assert_eq!(a.final_alive, b.final_alive);
    assert_eq!(a.epoch_estimates(0), b.epoch_estimates(0));
    assert_eq!(a.epoch_estimates(1), b.epoch_estimates(1));
    assert!(
        a.view_messages_sent > 0,
        "membership gossip was not enabled"
    );
}
