//! Cross-engine agreement: the *same* [`Scenario`] value drives the
//! cycle-driven and the event-driven engine, and both converge to the same
//! aggregate under the same adversity (peak values, churn, message loss).
//! This is the point of the scenario layer — robustness claims hold in
//! both time models, not just the synchronous idealization.

use epidemic::aggregation::{InstanceSpec, NodeConfig};
use epidemic::sim::event::EventConfig;
use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::failure::{CommFailure, FailureModel};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

/// gamma matching the cycle engine's 30-cycle epochs.
fn event_node(gamma: u32) -> NodeConfig {
    NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(1_000)
        .timeout(200)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

fn run_both(scenario: Scenario, seed: u64) -> (f64, f64) {
    let cycle_est = ExperimentConfig {
        scenario: scenario.clone(),
        cycles: 30,
        aggregate: AggregateSetup::Average,
    }
    .run(seed)
    .mean_final_estimate();
    let event_out = EventConfig {
        scenario,
        node: event_node(30),
        delay: (10, 50),
        drift: 0.01,
        duration: 45_000,
    }
    .run(seed);
    let event_est = event_out
        .mean_epoch_estimate(0)
        .expect("event engine completed no epoch");
    (cycle_est, event_est)
}

#[test]
fn engines_agree_on_peak_average_with_message_loss() {
    // A lost message under the peak distribution can carry a macroscopic
    // share of the total mass, so individual runs scatter; agreement is a
    // property of the expectation. Average both engines over seeds.
    let scenario = Scenario {
        n: 400,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Peak { total: 400.0 },
        comm: CommFailure::messages(0.05),
        ..Scenario::default()
    };
    let seeds = 1u64..=8;
    let (mut cycle_sum, mut event_sum) = (0.0, 0.0);
    let reps = seeds.clone().count() as f64;
    for seed in seeds {
        let (c, e) = run_both(scenario.clone(), seed);
        cycle_sum += c;
        event_sum += e;
    }
    let (cycle_mean, event_mean) = (cycle_sum / reps, event_sum / reps);
    let truth = 1.0;
    assert!(
        (cycle_mean - truth).abs() < 0.15,
        "cycle engine mean estimate {cycle_mean} vs truth {truth}"
    );
    assert!(
        (event_mean - truth).abs() < 0.15,
        "event engine mean estimate {event_mean} vs truth {truth}"
    );
    assert!(
        (cycle_mean - event_mean).abs() < 0.2,
        "engines disagree: cycle {cycle_mean} vs event {event_mean}"
    );
}

#[test]
fn engines_agree_under_churn() {
    // Constant values keep the true average at 5.0 regardless of which
    // nodes are substituted, so both engines must report it despite 10%
    // of the population churning every epoch.
    let scenario = Scenario {
        n: 300,
        overlay: OverlaySpec::Newscast { c: 20 },
        values: ValueInit::Constant(5.0),
        failure: FailureModel::Churn { per_cycle: 1 },
        joiner_value: 5.0,
        ..Scenario::default()
    };
    let (cycle_est, event_est) = run_both(scenario, 7);
    assert!(
        (cycle_est - 5.0).abs() < 0.1,
        "cycle engine estimate {cycle_est}"
    );
    assert!(
        (event_est - 5.0).abs() < 0.1,
        "event engine estimate {event_est}"
    );
    assert!((cycle_est - event_est).abs() < 0.1);
}

#[test]
fn event_engine_is_deterministic_under_crash_schedule() {
    let config = EventConfig {
        scenario: Scenario {
            n: 128,
            values: ValueInit::Linear,
            failure: FailureModel::SuddenDeath {
                fraction: 0.3,
                at_cycle: 5,
            },
            ..Scenario::default()
        },
        node: event_node(15),
        delay: (10, 50),
        drift: 0.02,
        duration: 40_000,
    };
    let a = config.run(11);
    let b = config.run(11);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.messages_lost, b.messages_lost);
    assert_eq!(a.epoch_entries, b.epoch_entries);
    assert_eq!(a.final_alive, b.final_alive);
    assert_eq!(a.epoch_estimates(1), b.epoch_estimates(1));
    // And the crash actually happened.
    assert!(a.final_alive < 128);
}
