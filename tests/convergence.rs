//! Cross-crate integration: the aggregation protocol converges to the
//! correct aggregate over every overlay substrate the workspace builds.

use epidemic::aggregation::estimator;
use epidemic::aggregation::rule::Rule;
use epidemic::common::rng::Xoshiro256;
use epidemic::newscast::Overlay;
use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::network::{CycleOptions, Network};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};
use epidemic::topology::TopologyKind;

fn average_config(overlay: OverlaySpec) -> ExperimentConfig {
    ExperimentConfig {
        scenario: Scenario {
            n: 2_000,
            overlay,
            values: ValueInit::Uniform { lo: -5.0, hi: 15.0 },
            ..Scenario::default()
        },
        cycles: 40,
        aggregate: AggregateSetup::Average,
    }
}

#[test]
fn average_converges_on_every_topology() {
    let overlays = [
        ("complete", OverlaySpec::Complete),
        (
            "random",
            OverlaySpec::Static(TopologyKind::Random { k: 20 }),
        ),
        (
            "watts-strogatz",
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k: 20, beta: 0.25 }),
        ),
        (
            "scale-free",
            OverlaySpec::Static(TopologyKind::ScaleFree { m: 10 }),
        ),
        (
            "lattice",
            OverlaySpec::Static(TopologyKind::RingLattice { k: 20 }),
        ),
        ("newscast", OverlaySpec::Newscast { c: 30 }),
    ];
    for (name, overlay) in overlays {
        let out = average_config(overlay).run(11);
        // Mass conservation: the mean never moves.
        let drift = (out.mean[40] - out.mean[0]).abs();
        assert!(drift < 1e-9, "{name}: mean drifted by {drift}");
        // Convergence: estimates agree. The pure ring lattice is the
        // paper's pathological case (Fig. 3(b) shows it reaching only
        // ~1e-2 after 50 cycles), so it gets a looser bound.
        let reduction = out.variance[40] / out.variance[0];
        let bound = if name == "lattice" { 5e-2 } else { 1e-3 };
        assert!(
            reduction < bound,
            "{name}: variance only reduced by {reduction}"
        );
    }
}

#[test]
fn every_node_learns_the_same_value() {
    let out = average_config(OverlaySpec::Newscast { c: 30 }).run(5);
    let summary = out.final_summary();
    assert_eq!(summary.count, 2_000);
    assert!(
        summary.max - summary.min < 1e-4,
        "estimates disagree: [{}, {}]",
        summary.min,
        summary.max
    );
}

#[test]
fn count_is_accurate_across_sizes() {
    for n in [500usize, 2_000, 8_000] {
        let config = ExperimentConfig {
            scenario: Scenario {
                n,
                overlay: OverlaySpec::Newscast { c: 30 },
                values: ValueInit::Constant(0.0),
                ..Scenario::default()
            },
            cycles: 30,
            aggregate: AggregateSetup::CountPeak,
        };
        let est = config.run(3).mean_final_estimate();
        let err = (est - n as f64).abs() / n as f64;
        assert!(
            err < 0.03,
            "n={n}: estimate {est} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn min_max_sum_variance_product_compose() {
    // Run the full Section 5 suite as parallel fields over one overlay and
    // check every derived aggregate against ground truth.
    let n = 3_000usize;
    let mut rng = Xoshiro256::seed_from_u64(17);
    let mut overlay_rng = Xoshiro256::seed_from_u64(18);
    let values: Vec<f64> = (0..n).map(|_| 1.0 + rng.next_f64() * 9.0).collect();

    let mut overlay = Overlay::random_init(n, 30, &mut overlay_rng);
    let mut net = Network::new(n);
    let avg = net.add_scalar_field(Rule::Average, |i| values[i]);
    let avg_sq = net.add_scalar_field(Rule::Average, |i| values[i] * values[i]);
    let min = net.add_scalar_field(Rule::Min, |i| values[i]);
    let max = net.add_scalar_field(Rule::Max, |i| values[i]);
    let geo = net.add_scalar_field(Rule::GeometricMean, |i| values[i]);
    let count = net.add_map_field(&[0, n / 2, n - 1]);

    for cycle in 1..=40 {
        overlay.run_cycle(cycle, &mut overlay_rng);
        net.run_cycle(&overlay, CycleOptions::default(), &mut overlay_rng);
    }

    let probe = 123usize;
    let est_mean = net.scalar_value(avg, probe);
    let est_mean_sq = net.scalar_value(avg_sq, probe);
    let est_count = estimator::count_estimate(net.map_value(count, probe)).unwrap();

    let true_mean = values.iter().sum::<f64>() / n as f64;
    assert!((est_mean - true_mean).abs() < 1e-6);

    // MIN / MAX broadcast the exact extrema.
    let true_min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let true_max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(net.scalar_value(min, probe), true_min);
    assert_eq!(net.scalar_value(max, probe), true_max);

    // COUNT.
    assert!(
        (est_count - n as f64).abs() < n as f64 * 0.05,
        "count {est_count}"
    );

    // SUM = AVERAGE x COUNT.
    let true_sum: f64 = values.iter().sum();
    let est_sum = estimator::sum_estimate(est_mean, est_count);
    assert!(
        (est_sum - true_sum).abs() / true_sum < 0.05,
        "sum {est_sum}"
    );

    // VARIANCE = E[x^2] - E[x]^2.
    let est_var = estimator::variance_estimate(est_mean, est_mean_sq);
    let true_var = values
        .iter()
        .map(|v| (v - true_mean) * (v - true_mean))
        .sum::<f64>()
        / n as f64;
    assert!(
        (est_var - true_var).abs() / true_var < 0.01,
        "variance {est_var} vs {true_var}"
    );

    // PRODUCT = geomean^COUNT — compare in log space (the raw product of
    // 3000 values overflows f64).
    let est_geo = net.scalar_value(geo, probe);
    let true_log_product: f64 = values.iter().map(|v| v.ln()).sum();
    let est_log_product = est_count * est_geo.ln();
    assert!(
        (est_log_product - true_log_product).abs() / true_log_product.abs() < 0.05,
        "log product {est_log_product} vs {true_log_product}"
    );
}

#[test]
fn peak_distribution_worst_case_converges() {
    // The paper's Figure 2 scenario at reduced scale.
    let n = 10_000;
    let config = ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Static(TopologyKind::Random { k: 20 }),
            values: ValueInit::Peak { total: n as f64 },
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::Average,
    };
    let out = config.run(2);
    // After 30 cycles min and max hug the true average of 1.
    assert!(out.min[30] > 0.99, "min {}", out.min[30]);
    assert!(out.max[30] < 1.01, "max {}", out.max[30]);
    // And the trajectory is monotone-ish: max decreasing, min increasing
    // after the first cycles.
    assert!(out.max[30] < out.max[5]);
    assert!(out.min[30] > out.min[5]);
}

#[test]
fn facade_reexports_are_usable() {
    // The README's five-line quickstart, via the facade.
    let config = ExperimentConfig {
        scenario: Scenario {
            n: 500,
            overlay: OverlaySpec::Newscast { c: 20 },
            values: ValueInit::Uniform { lo: 0.0, hi: 10.0 },
            ..Scenario::default()
        },
        cycles: 25,
        aggregate: AggregateSetup::Average,
    };
    let estimate = config.run(1).mean_final_estimate();
    assert!((estimate - 5.0).abs() < 0.6);
    // Theory constants are reachable through the facade too.
    assert!((epidemic::aggregation::theory::RHO_PUSH_PULL - 0.3033).abs() < 1e-4);
}
