//! Property-based tests of the core invariants, spanning crates.

use epidemic::aggregation::estimator::trimmed_mean;
use epidemic::aggregation::rule::{Rule, UpdateRule};
use epidemic::aggregation::value::InstanceMap;
use epidemic::aggregation::{InstanceState, Message, MessageBody};
use epidemic::common::NodeId;
use epidemic::net::{decode_message, encode_message};
use epidemic::newscast::{Descriptor, View};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL | prop::num::f64::ZERO
}

fn small_f64() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

proptest! {
    // ---- scalar update rules -------------------------------------------

    #[test]
    fn average_conserves_sum(a in small_f64(), b in small_f64()) {
        let m = Rule::Average.merge(a, b);
        prop_assert!((2.0 * m - (a + b)).abs() <= 1e-6 * (1.0 + a.abs() + b.abs()));
    }

    #[test]
    fn rules_are_symmetric(a in small_f64(), b in small_f64()) {
        for rule in [Rule::Average, Rule::Min, Rule::Max] {
            prop_assert_eq!(rule.merge(a, b), rule.merge(b, a));
        }
    }

    #[test]
    fn merge_result_is_bounded_by_inputs(a in small_f64(), b in small_f64()) {
        // Every rule's output lies within [min(a,b), max(a,b)] — the key
        // stability property: exchanges never create runaway values.
        let (lo, hi) = (a.min(b), a.max(b));
        for rule in [Rule::Average, Rule::Min, Rule::Max] {
            let m = rule.merge(a, b);
            prop_assert!(m >= lo && m <= hi, "{} out of [{}, {}]", m, lo, hi);
        }
    }

    #[test]
    fn geometric_mean_conserves_product(a in 1e-3..1e3f64, b in 1e-3..1e3f64) {
        let m = Rule::GeometricMean.merge(a, b);
        prop_assert!((m * m - a * b).abs() / (a * b) < 1e-9);
    }

    // ---- instance maps --------------------------------------------------

    #[test]
    fn map_merge_conserves_per_leader_mass(
        a_entries in prop::collection::btree_map(0u64..8, 0.0..1.0f64, 0..6),
        b_entries in prop::collection::btree_map(0u64..8, 0.0..1.0f64, 0..6),
    ) {
        let a = InstanceMap::from_entries(a_entries.clone());
        let b = InstanceMap::from_entries(b_entries.clone());
        let merged = InstanceMap::merge(&a, &b);
        for leader in 0u64..8 {
            let before = a.get(leader).unwrap_or(0.0) + b.get(leader).unwrap_or(0.0);
            let after = 2.0 * merged.get(leader).unwrap_or(0.0);
            prop_assert!((before - after).abs() < 1e-12);
        }
        // The union of keys survives.
        prop_assert_eq!(
            merged.len(),
            a_entries.keys().chain(b_entries.keys()).collect::<std::collections::BTreeSet<_>>().len()
        );
    }

    #[test]
    fn map_merge_is_symmetric(
        a_entries in prop::collection::btree_map(0u64..8, 0.0..1.0f64, 0..6),
        b_entries in prop::collection::btree_map(0u64..8, 0.0..1.0f64, 0..6),
    ) {
        let a = InstanceMap::from_entries(a_entries);
        let b = InstanceMap::from_entries(b_entries);
        prop_assert_eq!(InstanceMap::merge(&a, &b), InstanceMap::merge(&b, &a));
    }

    // ---- trimmed mean ---------------------------------------------------

    #[test]
    fn trimmed_mean_is_bounded(values in prop::collection::vec(small_f64(), 1..40)) {
        let tm = trimmed_mean(&values).unwrap();
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(tm >= lo - 1e-9 && tm <= hi + 1e-9);
    }

    #[test]
    fn trimmed_mean_ignores_extreme_third(
        mut values in prop::collection::vec(100.0..101.0f64, 7..30),
        outlier in 1e7..1e9f64,
    ) {
        // Corrupt up to floor(t/3) entries with huge outliers; the trimmed
        // mean must stay in the clean band.
        let k = values.len() / 3;
        for v in values.iter_mut().take(k) {
            *v = outlier;
        }
        let tm = trimmed_mean(&values).unwrap();
        prop_assert!((100.0..=101.0).contains(&tm), "tm = {}", tm);
    }

    // ---- newscast views -------------------------------------------------

    #[test]
    fn view_merge_invariants(
        own in prop::collection::vec((0u32..50, 0u32..100), 0..20),
        received in prop::collection::vec((0u32..50, 0u32..100), 0..20),
        capacity in 1usize..15,
        self_node in 0u32..50,
    ) {
        let mut view = View::new(capacity);
        for (node, ts) in own {
            if node != self_node {
                view.insert(Descriptor::new(node, ts));
            }
        }
        let received: Vec<Descriptor> = received
            .into_iter()
            .map(|(node, ts)| Descriptor::new(node, ts))
            .collect();
        view.merge_with(&received, self_node);
        // Invariants: bounded, no self, no duplicates, freshest-first.
        prop_assert!(view.len() <= capacity);
        prop_assert!(!view.contains(self_node));
        let entries = view.entries();
        let ids: std::collections::HashSet<u32> = entries.iter().map(|d| d.node).collect();
        prop_assert_eq!(ids.len(), entries.len());
        for pair in entries.windows(2) {
            prop_assert!(pair[0].timestamp >= pair[1].timestamp);
        }
    }

    // ---- wire codec -----------------------------------------------------

    #[test]
    fn codec_round_trips_scalar_messages(
        from in 0u64..1000,
        epoch in 0u64..1000,
        scalars in prop::collection::vec(finite_f64(), 0..5),
        is_request in any::<bool>(),
    ) {
        let states: Vec<InstanceState> = scalars.into_iter().map(InstanceState::Scalar).collect();
        let msg = if is_request {
            Message::request(NodeId::new(from), epoch, states)
        } else {
            Message::reply(NodeId::new(from), epoch, states)
        };
        let decoded = decode_message(&encode_message(&msg)).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn codec_round_trips_map_messages(
        entries in prop::collection::btree_map(0u64..100, finite_f64(), 0..30),
    ) {
        let msg = Message::request(
            NodeId::new(1),
            2,
            vec![InstanceState::Map(InstanceMap::from_entries(entries))],
        );
        let decoded = decode_message(&encode_message(&msg)).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn codec_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_message(&data); // must return Err, not panic
    }

    // ---- theory ---------------------------------------------------------

    #[test]
    fn crash_variance_monotone_in_pf(n in 100usize..100_000, cycles in 1u32..40) {
        let lo = epidemic::aggregation::theory::crash_variance_ratio(
            0.05, n, epidemic::aggregation::theory::RHO_PUSH_PULL, cycles);
        let hi = epidemic::aggregation::theory::crash_variance_ratio(
            0.25, n, epidemic::aggregation::theory::RHO_PUSH_PULL, cycles);
        prop_assert!(hi > lo);
    }

    #[test]
    fn epoch_message_body_tags_are_stable(epoch in 0u64..u64::MAX) {
        // Control messages survive the codec for any epoch value.
        for msg in [
            Message::epoch_notice(NodeId::new(3), epoch),
            Message::refuse(NodeId::new(3), epoch),
        ] {
            let decoded = decode_message(&encode_message(&msg)).unwrap();
            prop_assert_eq!(decoded.epoch, epoch);
            prop_assert!(matches!(
                decoded.body,
                MessageBody::EpochNotice | MessageBody::Refuse
            ));
        }
    }
}
