//! Cross-crate integration: robustness claims of Sections 6 and 7 hold at
//! test scale.

use epidemic::aggregation::theory;
use epidemic::common::stats;
use epidemic::sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic::sim::failure::{CommFailure, FailureModel};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn count_config(n: usize) -> ExperimentConfig {
    ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Newscast { c: 30 },
            values: ValueInit::Constant(0.0),
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::CountPeak,
    }
}

#[test]
fn theorem_1_predicts_crash_error() {
    // Complete topology, proportional crashes: the measured variance of
    // the mean must match Eq. (2) within statistical noise. Theorem 1
    // assumes uncorrelated node values, so the initial distribution is
    // i.i.d. uniform (not the peak).
    let n = 10_000;
    let cycles = 20u32;
    let p_f = 0.1;
    let config = ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Complete,
            values: ValueInit::Uniform { lo: 0.0, hi: 2.0 },
            failure: FailureModel::ProportionalCrash { p_f },
            ..Scenario::default()
        },
        cycles,
        aggregate: AggregateSetup::Average,
    };
    let seeds: Vec<u64> = (0..40).collect();
    let outcomes = run_many(&config, &seeds);
    // The theorem predicts the variance of the crash-induced drift
    // µ₂₀ − µ₀ (each run's starting mean is its own reference point).
    let drifts: Vec<f64> = outcomes
        .iter()
        .map(|o| o.mean[cycles as usize] - o.mean[0])
        .collect();
    let sigma0 = stats::mean(&outcomes.iter().map(|o| o.variance[0]).collect::<Vec<_>>());
    let measured = stats::variance(&drifts) / sigma0;
    let predicted = theory::crash_variance_ratio(p_f, n, theory::RHO_PUSH_PULL, cycles);
    // Variance-of-variance noise with 60 runs is large; require the right
    // order of magnitude and a 3x band, like the paper's visual fit.
    assert!(
        measured > predicted / 3.0 && measured < predicted * 3.0,
        "measured {measured:.3e} vs predicted {predicted:.3e}"
    );
}

#[test]
fn link_failure_bound_holds() {
    for p_d in [0.3, 0.6, 0.8] {
        let mut config = count_config(5_000);
        config.scenario.comm = CommFailure::links(p_d);
        config.cycles = 20;
        let seeds: Vec<u64> = (0..5).collect();
        let outcomes = run_many(&config, &seeds);
        let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
        let mean_factor = stats::mean(&factors);
        let bound = theory::link_failure_rho_bound(p_d);
        assert!(
            mean_factor <= bound + 0.03,
            "P_d={p_d}: factor {mean_factor} above bound {bound}"
        );
        // And convergence genuinely slows relative to failure-free runs.
        assert!(mean_factor > theory::RHO_PUSH_PULL);
    }
}

#[test]
fn link_failure_does_not_bias_the_mean() {
    let config = ExperimentConfig {
        scenario: Scenario {
            n: 5_000,
            overlay: OverlaySpec::Complete,
            values: ValueInit::Peak { total: 5_000.0 },
            comm: CommFailure::links(0.7),
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::Average,
    };
    let out = config.run(9);
    assert!(
        (out.mean[30] - 1.0).abs() < 1e-9,
        "link failure changed the mean: {}",
        out.mean[30]
    );
}

#[test]
fn message_loss_biases_but_moderately() {
    let seeds: Vec<u64> = (0..8).collect();
    let mut config = count_config(5_000);
    config.scenario.comm = CommFailure::messages(0.05);
    let outcomes = run_many(&config, &seeds);
    for o in &outcomes {
        let est = o.mean_final_estimate();
        assert!(
            est > 2_500.0 && est < 10_000.0,
            "5% loss blew up the estimate: {est}"
        );
    }
}

#[test]
fn sudden_death_early_vs_late() {
    let n = 10_000;
    let seeds: Vec<u64> = (0..8).collect();
    let run_at = |at_cycle: u32| -> Vec<f64> {
        let mut config = count_config(n);
        config.scenario.failure = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle,
        };
        run_many(&config, &seeds)
            .iter()
            .map(|o| o.mean_final_estimate())
            .filter(|v| v.is_finite())
            .collect()
    };
    let early = run_at(2);
    let late = run_at(25);
    // Late crashes are harmless: estimates stay at the epoch-start size.
    for &est in &late {
        assert!(
            (est - n as f64).abs() < n as f64 * 0.1,
            "late crash estimate {est}"
        );
    }
    // Early crashes scatter the estimates much more.
    let early_spread = stats::variance(&early).sqrt();
    let late_spread = stats::variance(&late).sqrt();
    assert!(
        early_spread > late_spread * 3.0,
        "early {early_spread} vs late {late_spread}"
    );
}

#[test]
fn churn_of_75_percent_still_estimates() {
    // The headline robustness claim: 75% of nodes substituted within one
    // epoch (2.5%/cycle x 30 cycles) still yields usable estimates.
    let n = 4_000;
    let mut config = count_config(n);
    config.scenario.failure = FailureModel::Churn {
        per_cycle: n / 40, // 2.5% per cycle
    };
    let seeds: Vec<u64> = (0..8).collect();
    let estimates: Vec<f64> = run_many(&config, &seeds)
        .iter()
        .map(|o| o.mean_final_estimate())
        .filter(|v| v.is_finite())
        .collect();
    assert!(!estimates.is_empty());
    let mean = stats::mean(&estimates);
    assert!(
        mean > n as f64 * 0.5 && mean < n as f64 * 2.5,
        "estimate {mean} out of band for n={n}"
    );
}

#[test]
fn multiple_instances_tighten_estimates_under_loss() {
    let n = 4_000;
    let seeds: Vec<u64> = (0..10).collect();
    let spread_with = |t: usize| -> f64 {
        let mut config = count_config(n);
        config.aggregate = AggregateSetup::CountMap { leaders: t };
        config.scenario.comm = CommFailure::messages(0.2);
        let estimates: Vec<f64> = run_many(&config, &seeds)
            .iter()
            .map(|o| o.mean_final_estimate())
            .filter(|v| v.is_finite())
            .collect();
        let max = estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = estimates.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    };
    let single = spread_with(1);
    let twenty = spread_with(20);
    assert!(
        twenty < single,
        "20 instances should tighten the estimate range: 1 -> {single}, 20 -> {twenty}"
    );
}
