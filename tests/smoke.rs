//! Workspace smoke test: one small, fully deterministic experiment runs
//! end-to-end through the façade and converges at the rate the paper
//! proves for push-pull averaging on sufficiently random overlays —
//! E[σ²(i+1)/σ²(i)] = ρ ≈ 1/(2√e) per cycle (Section 3).

use epidemic::aggregation::theory::RHO_PUSH_PULL;
use epidemic::sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

#[test]
fn deterministic_experiment_converges_at_paper_rate() {
    let config = ExperimentConfig {
        scenario: Scenario {
            n: 500,
            overlay: OverlaySpec::Newscast { c: 30 },
            values: ValueInit::Uniform { lo: 0.0, hi: 10.0 },
            ..Scenario::default()
        },
        cycles: 20,
        aggregate: AggregateSetup::Average,
    };
    let out = config.run(42);

    // Deterministic: the same seed reproduces the run bit-for-bit.
    let again = config.run(42);
    assert_eq!(
        out.variance, again.variance,
        "experiment is not deterministic"
    );
    assert_eq!(out.final_estimates, again.final_estimates);

    // The estimate lands on the true mean of U[0, 10).
    let estimate = out.mean_final_estimate();
    assert!((estimate - 5.0).abs() < 0.5, "final estimate {estimate}");

    // Per-cycle variance reduction matches ρ = 1/(2√e) ≈ 0.3033. The
    // theoretical ρ is an expectation over cycles; we check the empirical
    // geometric-mean rate over the measurable range (before hitting f64
    // noise) stays within 20% of theory, and never collapses to "no
    // convergence" (rate ≥ 1).
    let horizon = 15; // variance ρ^15 ≈ 1.6e-8 of initial: still measurable
    assert!(out.variance[0] > 0.0, "degenerate initial variance");
    let empirical_rate = (out.variance[horizon] / out.variance[0]).powf(1.0 / horizon as f64);
    assert!(
        empirical_rate < 1.0,
        "no variance reduction at all: rate {empirical_rate}"
    );
    assert!(
        (empirical_rate - RHO_PUSH_PULL).abs() < 0.2 * RHO_PUSH_PULL,
        "empirical per-cycle reduction {empirical_rate} strays from ρ = {RHO_PUSH_PULL}"
    );
}
