//! Multi-tenant query plane, end to end: the event simulator and the mux
//! runtime drive the *same* sans-io [`epidemic::query::QueryPlane`], so a
//! named query installed at one node must spread epidemically, serve
//! submits and reads at *any* node, and converge to the same answer in
//! both time models. The wire test is the acceptance scenario: a plain
//! UDP client installs a query through the RPC listener of a running mux
//! cluster — no restart — and reads the converged estimate back through
//! a different node.

use epidemic::aggregation::{AggregateKind, InstanceSpec, NodeConfig};
use epidemic::net::cluster::Cluster;
use epidemic::net::codec::{decode_rpc_response, encode_rpc_request};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig};
use epidemic::net::runtime::{ClusterConfig, ThreadCluster};
use epidemic::query::{QueryDescriptor, QueryError, QueryPlaneConfig, RpcRequest, RpcStatus};
use epidemic::sim::event::{EventConfig, QueryAction};
use epidemic::sim::scenario::{Scenario, ValueInit};
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// The shared workload: an AVERAGE query whose nodes default to 4.0 with
/// one client submitting 10.0 — truth (31·4 + 10)/32 = 4.1875 at n = 32.
const N: usize = 32;
const TRUTH: f64 = (31.0 * 4.0 + 10.0) / 32.0;

fn sim_descriptor(name: &str) -> QueryDescriptor {
    QueryDescriptor::new(name, AggregateKind::Average)
        .with_gamma(5)
        .with_cycle_length(500)
        .with_default_value(4.0)
}

fn mux_descriptor(name: &str) -> QueryDescriptor {
    // Same query, wall-clock geometry: 8-cycle epochs of 40 ms.
    QueryDescriptor::new(name, AggregateKind::Average)
        .with_gamma(8)
        .with_cycle_length(40)
        .with_default_value(4.0)
}

/// Runs the event-sim side of the conformance pair: install at node 1,
/// submit at node 5, plus a second query installed and removed
/// mid-epoch. Returns (per-node final values of "load", final values of
/// "tmp").
fn run_sim_side(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut cfg = EventConfig {
        scenario: Scenario {
            n: N,
            values: ValueInit::Linear,
            ..Scenario::default()
        },
        duration: 40_000,
        ..EventConfig::default()
    };
    cfg.query_script = vec![
        QueryAction {
            at: 2_000,
            node: 1,
            request: RpcRequest::Install {
                id: 1,
                descriptor: sim_descriptor("load"),
            },
        },
        // Second tenant, installed mid-run…
        QueryAction {
            at: 3_000,
            node: 2,
            request: RpcRequest::Install {
                id: 2,
                descriptor: sim_descriptor("tmp"),
            },
        },
        QueryAction {
            at: 8_000,
            node: 5,
            request: RpcRequest::Submit {
                id: 3,
                name: "load".into(),
                value: 10.0,
            },
        },
        // …and removed mid-epoch through a different node ("tmp"'s
        // boundaries sit at 3000 + k·2500; 9800 is mid-epoch).
        QueryAction {
            at: 9_800,
            node: 9,
            request: RpcRequest::Remove {
                id: 4,
                name: "tmp".into(),
            },
        },
    ];
    let out = cfg.run(seed);
    for response in &out.query_responses {
        assert_eq!(
            response.status,
            RpcStatus::Ok,
            "sim rpc failed: {response:?}"
        );
    }
    (out.query_values("load"), out.query_values("tmp"))
}

/// Polls `read` every 30 ms until it returns a value within `tol` of
/// `truth`, panicking with `what` after 15 s.
fn drive_until(what: &str, truth: f64, tol: f64, mut read: impl FnMut() -> Option<f64>) -> f64 {
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last = f64::NAN;
    while Instant::now() < deadline {
        if let Some(value) = read() {
            last = value;
            if (value - truth).abs() < tol {
                return value;
            }
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    panic!("{what} never converged: last {last} vs truth {truth} (tol {tol})");
}

#[test]
fn query_conformance_sim_vs_mux_on_one_seed() {
    // Sim side.
    let (sim_load, sim_tmp) = run_sim_side(11);
    assert_eq!(sim_load.len(), N, "sim: query missing at some nodes");
    assert!(sim_tmp.is_empty(), "sim: removed query still installed");
    let sim_mean = sim_load.iter().sum::<f64>() / sim_load.len() as f64;
    assert!(
        (sim_mean - TRUTH).abs() < 0.2,
        "sim mean {sim_mean} vs truth {TRUTH}"
    );

    // Mux side: same tenants, driven through the Cluster seam.
    let node_config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(N, node_config)
            .with_workers(2)
            .with_seed(11)
            .with_query_config(QueryPlaneConfig {
                gossip_period: 50,
                ..QueryPlaneConfig::default()
            }),
        |i| i as f64,
    )
    .unwrap();
    cluster.install_query(1, mux_descriptor("load")).unwrap();
    cluster.install_query(2, mux_descriptor("tmp")).unwrap();
    // Submit at a different node once catalog gossip reaches it.
    drive_until("mux submit at node 5", 0.0, 0.5, || {
        match cluster.submit_query(5, "load", 10.0) {
            Ok(()) => Some(0.0),
            Err(QueryError::UnknownQuery) => None,
            Err(err) => panic!("submit failed: {err}"),
        }
    });
    // Remove the second tenant mid-epoch via yet another node.
    drive_until("mux remove at node 9", 0.0, 0.5, || {
        match cluster.remove_query(9, "tmp") {
            Ok(()) => Some(0.0),
            Err(QueryError::UnknownQuery) => None,
            Err(err) => panic!("remove failed: {err}"),
        }
    });
    // Read the converged estimate at an uninvolved node.
    let mux_value = drive_until("mux read at node 20", TRUTH, 0.2, || {
        match cluster.query_estimate(20, "load") {
            Ok(est) if est.settled => Some(est.value),
            _ => None,
        }
    });
    // The tombstone spreads until reads at other nodes reject.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match cluster.query_estimate(20, "tmp") {
            Err(QueryError::UnknownQuery) => break,
            _ if Instant::now() >= deadline => panic!("mux: removed query still readable"),
            _ => std::thread::sleep(Duration::from_millis(30)),
        }
    }
    // Per-query telemetry reached the shared registry.
    let text = cluster.registry().render_prometheus();
    assert!(
        text.contains("query_submits{query=\"load\"}"),
        "missing per-query submit series:\n{text}"
    );
    cluster.shutdown();

    // The conformance pin: both engines answer the same workload with
    // the same number, despite completely different time models.
    assert!(
        (sim_mean - mux_value).abs() < 0.3,
        "engines disagree: sim {sim_mean} vs mux {mux_value}"
    );
}

#[test]
fn thread_cluster_serves_queries_through_the_same_seam() {
    let node_config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = ThreadCluster::spawn(
        ClusterConfig::loopback(8, node_config)
            .unwrap()
            .with_query_config(QueryPlaneConfig {
                gossip_period: 50,
                ..QueryPlaneConfig::default()
            }),
        |i| i as f64,
    )
    .unwrap();
    cluster
        .install_query(0, mux_descriptor("temp").with_default_value(6.0))
        .unwrap();
    // Every node (installer or not) converges on the default fixed point.
    let value = drive_until("thread-cluster read at node 3", 6.0, 1e-6, || match cluster
        .query_estimate(3, "temp")
    {
        Ok(est) if est.settled => Some(est.value),
        _ => None,
    });
    assert!((value - 6.0).abs() < 1e-6);
    // Admission errors surface through the seam, not as silent drops.
    assert!(matches!(
        cluster.submit_query(3, "nope", 1.0),
        Err(QueryError::UnknownQuery)
    ));
    cluster.shutdown();
}

/// The acceptance scenario: a running mux cluster, no restart, accepts a
/// query installed over the wire at its RPC endpoint; catalog gossip
/// carries it to all nodes; the client submits and reads through
/// *different* nodes (the listener round-robins requests over vnodes);
/// the estimate converges within the query's epoch geometry.
#[test]
fn query_rpc_over_the_wire_at_any_node() {
    let n = 16usize;
    let truth = (15.0 * 2.0 + 18.0) / 16.0; // defaults 2.0, one submit 18.0
    let node_config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, node_config)
            .with_workers(2)
            .with_seed(3)
            .with_query_config(QueryPlaneConfig {
                gossip_period: 50,
                ..QueryPlaneConfig::default()
            })
            .with_rpc_addr("127.0.0.1:0".parse().unwrap()),
        |i| i as f64,
    )
    .unwrap();
    let rpc_addr = cluster.rpc_addr().expect("rpc listener bound");
    let client = UdpSocket::bind("127.0.0.1:0").unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut next_id = 0u64;
    let rpc = |request: RpcRequest| {
        let frame = encode_rpc_request(&request);
        let mut buf = [0u8; 64];
        // UDP: retry a few times on timeout before giving up.
        for _ in 0..10 {
            client.send_to(&frame, rpc_addr).unwrap();
            match client.recv_from(&mut buf) {
                Ok((len, _)) => {
                    let response = decode_rpc_response(&buf[..len]).expect("decodable response");
                    assert_eq!(response.id, request.id(), "correlation id mismatch");
                    return response;
                }
                Err(_) => continue,
            }
        }
        panic!("rpc {request:?} got no response");
    };
    let mut id = || {
        next_id += 1;
        next_id
    };

    // Install over the wire at whichever node the round-robin picks.
    let descriptor = QueryDescriptor::new("cpu", AggregateKind::Average)
        .with_gamma(8)
        .with_cycle_length(40)
        .with_default_value(2.0);
    let install = rpc(RpcRequest::Install {
        id: id(),
        descriptor,
    });
    assert_eq!(
        install.status,
        RpcStatus::Ok,
        "install rejected: {install:?}"
    );

    // Submit through a *different* node: the next requests round-robin
    // onward, and succeed only once catalog gossip delivered the query
    // there — retry until it has.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = rpc(RpcRequest::Submit {
            id: id(),
            name: "cpu".into(),
            value: 18.0,
        });
        match response.status {
            RpcStatus::Ok => break,
            RpcStatus::UnknownQuery if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(30));
            }
            other => panic!("submit failed with {other:?}"),
        }
    }

    // Read until the estimate settles on the truth — each read lands on
    // yet another node, so this also proves every node serves the query.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut last = f64::NAN;
    loop {
        let response = rpc(RpcRequest::Read {
            id: id(),
            name: "cpu".into(),
        });
        if response.status == RpcStatus::Ok {
            last = response.estimate;
            if (last - truth).abs() < 0.2 {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "estimate never converged: last {last} vs truth {truth}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }

    // A bad request is rejected — visibly, in the response, the traffic
    // counters, and the registry; never swallowed.
    let reject = rpc(RpcRequest::Read {
        id: id(),
        name: "no-such-query".into(),
    });
    assert_eq!(reject.status, RpcStatus::UnknownQuery);
    let registry = cluster.registry();
    assert!(registry.counter_value("rpc.requests") > 0);
    assert!(registry.counter_value("rpc.rejects") > 0);
    let totals = cluster.total_datagram_counts();
    assert!(totals.rpc_rejects > 0, "reject not counted in traffic");
    assert!(totals.query_sent > 0, "no query-plane frames on the wire");
    assert!(totals.query_bytes_sent > 0);
    let text = registry.render_prometheus();
    assert!(
        text.contains("query_installed"),
        "missing query series in /metrics text:\n{text}"
    );
    cluster.shutdown();
}
