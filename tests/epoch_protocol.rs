//! Cross-crate integration of the practical protocol (Section 4): epochs,
//! joins, synchronization and timeouts, exercised through the sans-io
//! state machine driven both by hand and by the event simulator.

use epidemic::aggregation::node::GossipNode;
use epidemic::aggregation::{InstanceSpec, Message, NodeConfig};
use epidemic::common::NodeId;
use epidemic::sim::event::EventConfig;
use epidemic::sim::scenario::{Scenario, ValueInit};
use epidemic::sim::CommFailure;

fn config(gamma: u32) -> NodeConfig {
    NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(1_000)
        .timeout(200)
        .instance(InstanceSpec::AVERAGE)
        .instance(InstanceSpec::count(8.0))
        .build()
        .unwrap()
}

#[test]
fn event_sim_produces_correct_averages_and_counts() {
    let n = 100;
    let out = EventConfig {
        scenario: Scenario {
            n,
            values: ValueInit::Linear,
            ..Scenario::default()
        },
        node: config(20),
        delay: (5, 40),
        drift: 0.01,
        duration: 100_000,
        ..EventConfig::default()
    }
    .run(4);
    let truth = (n as f64 - 1.0) / 2.0;
    let mut avg_errs = Vec::new();
    let mut count_estimates = Vec::new();
    for reports in &out.reports {
        for r in reports {
            if r.epoch == 0 {
                continue; // epoch 0 starts desynchronized by construction
            }
            avg_errs.push((r.scalar(0).unwrap() - truth).abs() / truth);
            if let Some(c) = r.count_estimate() {
                count_estimates.push(c);
            }
        }
    }
    assert!(!avg_errs.is_empty());
    let mean_err = avg_errs.iter().sum::<f64>() / avg_errs.len() as f64;
    assert!(mean_err < 0.01, "mean avg error {mean_err}");
    // COUNT with self-elected leaders: correct within a factor of ~1.5
    // at this scale (Poisson leader count adds noise).
    assert!(!count_estimates.is_empty());
    let mean_count = count_estimates.iter().sum::<f64>() / count_estimates.len() as f64;
    assert!(
        mean_count > n as f64 * 0.6 && mean_count < n as f64 * 1.6,
        "mean count {mean_count}"
    );
}

#[test]
fn joiner_waits_and_participates_later() {
    let cfg = config(5);
    // A founder runs alone; a joiner arrives mid-epoch.
    let mut founder = GossipNode::founder(NodeId::new(0), cfg.clone(), 10.0, 1);
    let mut joiner = GossipNode::joiner(NodeId::new(1), cfg, 50.0, 2, 0, 5_500);

    let mut t = 0u64;
    let mut joiner_merged_epoch = None;
    while t < 30_000 && joiner_merged_epoch.is_none() {
        t += 10;
        if let Some(out) = founder.poll(t, Some(NodeId::new(1))) {
            if let Some(resp) = joiner.handle(&out.message, t) {
                founder.handle(&resp.message, t);
                if joiner.is_active() {
                    joiner_merged_epoch = Some(out.message.epoch);
                }
            }
        }
        joiner.poll(t, Some(NodeId::new(0)));
    }
    assert!(joiner.is_active(), "joiner never activated");
    // Joiner participates in an epoch strictly after the one it saw first.
    assert!(joiner.epoch() >= 1);
}

#[test]
fn epoch_identifiers_synchronize_epidemically() {
    let cfg = config(10);
    let mut slow = GossipNode::founder(NodeId::new(0), cfg.clone(), 1.0, 1);
    assert_eq!(slow.epoch(), 0);
    // A message from epoch 7 drags the slow node forward immediately.
    let msg = Message::request(
        NodeId::new(9),
        7,
        vec![
            epidemic::aggregation::InstanceState::Scalar(3.0),
            epidemic::aggregation::InstanceState::Map(Default::default()),
        ],
    );
    let resp = slow.handle(&msg, 100).unwrap();
    assert_eq!(slow.epoch(), 7);
    assert!(matches!(
        resp.message.body,
        epidemic::aggregation::MessageBody::Reply(_)
    ));
}

#[test]
fn message_loss_slows_but_epochs_still_complete() {
    let out = EventConfig {
        scenario: Scenario {
            n: 60,
            values: ValueInit::Linear,
            comm: CommFailure::messages(0.3),
            ..Scenario::default()
        },
        node: config(15),
        delay: (5, 30),
        drift: 0.02,
        duration: 80_000,
        ..EventConfig::default()
    }
    .run(8);
    assert!(out.messages_lost > 0);
    let completed: usize = out.reports.iter().map(Vec::len).sum();
    assert!(
        completed > 60,
        "only {completed} epochs completed under loss"
    );
}

#[test]
fn isolated_node_epochs_do_not_stall() {
    // A node with no peers must still restart epochs on its own timer
    // (availability under partition).
    let mut node = GossipNode::founder(NodeId::new(0), config(3), 5.0, 1);
    for t in 0..20_000 {
        node.poll(t, None);
    }
    let reports = node.take_reports();
    assert!(
        reports.len() >= 4,
        "only {} epochs while isolated",
        reports.len()
    );
    for r in &reports {
        assert_eq!(r.scalar(0), Some(5.0)); // its own value is the average
    }
}
