//! Cross-crate validation of the paper's analytical claims (Sections 3,
//! 4.5 and 6) against simulation.

use epidemic::aggregation::theory;
use epidemic::common::stats;
use epidemic::sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic::sim::metrics::{convergence_factor, exchange_moments, per_cycle_factors};
use epidemic::sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn average_peak(n: usize) -> ExperimentConfig {
    ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Complete,
            values: ValueInit::Peak { total: n as f64 },
            ..Scenario::default()
        },
        cycles: 20,
        aggregate: AggregateSetup::Average,
    }
}

#[test]
fn rho_matches_one_over_two_sqrt_e() {
    let seeds: Vec<u64> = (0..10).collect();
    let outcomes = run_many(&average_peak(20_000), &seeds);
    let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
    let mean = stats::mean(&factors);
    assert!(
        (mean - theory::RHO_PUSH_PULL).abs() < 0.01,
        "measured rho {mean} vs theory {}",
        theory::RHO_PUSH_PULL
    );
}

#[test]
fn rho_is_independent_of_network_size() {
    // The O(1)-time claim: the factor does not change with N.
    let mut factors = Vec::new();
    for n in [1_000usize, 10_000, 50_000] {
        let out = average_peak(n).run(3);
        factors.push(out.convergence_factor(20));
    }
    let spread = factors.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - factors.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(spread < 0.03, "rho varies with N: {factors:?}");
}

#[test]
fn per_cycle_factor_is_constant_on_random_overlays() {
    // Fig. 3(b)'s "straight line on log scale": every cycle reduces the
    // variance by the same factor (after the first couple of cycles).
    let out = average_peak(20_000).run(4);
    let factors = per_cycle_factors(&out.variance);
    for (i, &f) in factors.iter().enumerate().take(15).skip(2) {
        assert!(
            (f - theory::RHO_PUSH_PULL).abs() < 0.12,
            "cycle {i}: factor {f} far from constant"
        );
    }
}

#[test]
fn gamma_from_cycles_for_accuracy_is_sufficient() {
    // Pick epsilon, derive gamma, run gamma cycles, check accuracy.
    let epsilon = 1e-8;
    let gamma = theory::cycles_for_accuracy(epsilon, theory::RHO_PUSH_PULL);
    let config = ExperimentConfig {
        cycles: gamma,
        ..average_peak(10_000)
    };
    let seeds: Vec<u64> = (0..5).collect();
    for out in run_many(&config, &seeds) {
        let achieved = out.variance[gamma as usize] / out.variance[0];
        // Statistical fluctuation allows a small factor above epsilon.
        assert!(
            achieved < epsilon * 30.0,
            "gamma={gamma} left variance ratio {achieved:.3e}"
        );
    }
}

#[test]
fn exchange_count_moments_match_poisson() {
    use epidemic::aggregation::rule::Rule;
    use epidemic::common::rng::Xoshiro256;
    use epidemic::sim::network::{CycleOptions, Network};
    use epidemic::topology::CompleteSampler;

    let n = 30_000;
    let mut net = Network::new(n);
    net.add_scalar_field(Rule::Average, |_| 0.0);
    net.enable_tally();
    let sampler = CompleteSampler::new(n);
    let mut rng = Xoshiro256::seed_from_u64(5);
    net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
    let tally = net.take_tally();
    let (mean, variance) = exchange_moments(&tally);
    assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    assert!((variance - 1.0).abs() < 0.08, "variance {variance}");
}

#[test]
fn convergence_factor_helper_consistency() {
    let out = average_peak(5_000).run(6);
    let direct = out.convergence_factor(20);
    let helper = convergence_factor(out.variance[0], out.variance[20], 20);
    assert!((direct - helper).abs() < 1e-12);
}

#[test]
fn link_failure_behaves_like_slowdown() {
    // Section 6.2: P_d > 0 is "the same system, slower". Verify that the
    // variance after k cycles at P_d=0.5 is comparable to the variance
    // after ~k/2 cycles without failures.
    let clean = average_peak(10_000).run(7);
    let mut lossy_cfg = average_peak(10_000);
    lossy_cfg.scenario.comm = epidemic::sim::failure::CommFailure::links(0.5);
    let lossy = lossy_cfg.run(7);
    let clean_at_10 = clean.variance[10] / clean.variance[0];
    let lossy_at_20 = lossy.variance[20] / lossy.variance[0];
    let ratio = lossy_at_20.ln() / clean_at_10.ln();
    assert!(
        (0.6..1.6).contains(&ratio),
        "half-speed equivalence violated: ratio {ratio}"
    );
}
