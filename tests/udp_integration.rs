//! End-to-end integration over real UDP sockets: the full stack —
//! sans-io protocol node, binary codec, threaded and multiplexed
//! runtimes — computing aggregates on localhost.

use epidemic::aggregation::{theory, EpochReport, InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig};
use epidemic::net::runtime::{ClusterConfig, UdpNode};
use std::time::Duration;

fn spawn_cluster(n: usize, node_config: NodeConfig, values: impl Fn(usize) -> f64) -> Vec<UdpNode> {
    let cluster = ClusterConfig::loopback(n, node_config).expect("bind cluster");
    (0..n)
        .map(|i| UdpNode::spawn(cluster.node(i, values(i))).expect("spawn node"))
        .collect()
}

#[test]
fn five_node_cluster_converges_on_average() {
    let config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let nodes = spawn_cluster(5, config, |i| (i as f64 + 1.0) * 4.0); // avg 12
    std::thread::sleep(Duration::from_millis(1_500));
    let mut last_estimates = Vec::new();
    for node in &nodes {
        if let Some(r) = node.take_reports().last() {
            last_estimates.push(r.scalar(0).unwrap());
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(
        last_estimates.len() >= 4,
        "only {} nodes reported",
        last_estimates.len()
    );
    for est in last_estimates {
        assert!((est - 12.0).abs() < 1.0, "estimate {est} (truth 12)");
    }
}

#[test]
fn cluster_counts_itself() {
    let n = 8;
    let config = NodeConfig::builder()
        .gamma(12)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 3.0 },
        })
        .initial_size_guess(n as f64)
        .build()
        .unwrap();
    let nodes = spawn_cluster(n, config, |_| 0.0);
    std::thread::sleep(Duration::from_millis(2_200));
    let mut estimates = Vec::new();
    for node in &nodes {
        for r in node.take_reports() {
            if let Some(c) = r.count_estimate() {
                estimates.push(c);
            }
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(!estimates.is_empty(), "no COUNT estimates produced");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert!(
        mean > n as f64 * 0.5 && mean < n as f64 * 2.0,
        "mean count {mean} for {n} nodes"
    );
}

#[test]
fn mux_512_nodes_single_process_converge_within_theory_bounds() {
    // 512 real-socket nodes in one process — far beyond what the
    // thread-per-node runtime is meant for — multiplexed over one socket
    // and 4 + 2 OS threads.
    let n = 512usize;
    let gamma = 20u32;
    let config = NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, config)
            .with_workers(4)
            .with_seed(7),
        |i| i as f64, // truth: (n - 1) / 2 = 255.5
    )
    .unwrap();
    assert_eq!(cluster.thread_count(), 4 + 2);
    std::thread::sleep(Duration::from_millis(2_300));
    let reports = cluster.take_all_reports();
    cluster.shutdown();

    let truth = (n as f64 - 1.0) / 2.0;
    // Section 3: each push-pull cycle contracts the estimate variance by
    // rho = 1/(2 sqrt e). After gamma cycles the expected residual std is
    // sigma_0 * rho^(gamma/2) — far below 1.0 here — so allowing 100x the
    // theoretical residual (plus real-world delays, drops, and partial
    // exchanges) is still a sub-1% relative bound.
    let sigma0 = ((n as f64 * n as f64 - 1.0) / 12.0).sqrt();
    let residual = sigma0 * theory::variance_after(gamma, theory::RHO_PUSH_PULL, 1.0).sqrt();
    let bound = (residual * 100.0).max(truth * 0.01);
    for node_reports in &reports {
        for r in node_reports {
            let est = r.scalar(0).unwrap();
            assert!(
                (est - truth).abs() < bound,
                "epoch {} estimate {est} vs truth {truth} (bound {bound:.3})",
                r.epoch
            );
        }
    }
    // The overwhelming majority of nodes must have completed epoch 0
    // within the run (a few stragglers may still be mid-epoch).
    let nodes_reporting = reports.iter().filter(|r| !r.is_empty()).count();
    assert!(
        nodes_reporting >= n * 3 / 4,
        "only {nodes_reporting} of {n} nodes completed an epoch"
    );
}

#[test]
fn mux_matches_thread_per_node_runtime_on_same_seed() {
    // Same seed, same protocol config, same values: the mux cluster and
    // the thread-per-node cluster must produce identical EpochReport
    // sequences. n = 2 makes the comparison exact: any completed exchange
    // yields precisely the true average, independent of scheduling, so
    // every epoch report of every node is bit-identical across runtimes.
    let seed = 0xA11CE;
    let make_config = || {
        NodeConfig::builder()
            .gamma(5)
            .cycle_length(30)
            .timeout(12)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    };
    let values = |i: usize| (i as f64 + 1.0) * 10.0; // 10, 20 -> average 15

    let mux = MuxCluster::spawn(
        MuxClusterConfig::new(2, make_config()).with_seed(seed),
        values,
    )
    .unwrap();
    let threads_cluster = ClusterConfig::loopback(2, make_config())
        .expect("bind cluster")
        .with_seed(seed);
    let thread_nodes: Vec<UdpNode> = (0..2)
        .map(|i| UdpNode::spawn(threads_cluster.node(i, values(i))).unwrap())
        .collect();

    std::thread::sleep(Duration::from_millis(1_400));
    let mux_reports = mux.take_all_reports();
    let thread_reports: Vec<Vec<EpochReport>> = thread_nodes
        .iter()
        .map(|node| node.take_reports())
        .collect();
    mux.shutdown();
    for node in thread_nodes {
        node.shutdown();
    }

    for (i, (m, t)) in mux_reports.iter().zip(&thread_reports).enumerate() {
        let common = m.len().min(t.len());
        assert!(
            common >= 3,
            "node {i}: too few comparable epochs (mux {}, threads {})",
            m.len(),
            t.len()
        );
        assert_eq!(
            &m[..common],
            &t[..common],
            "node {i}: runtimes diverged on the same seed"
        );
    }
}

#[test]
fn mux_1024_nodes_run_on_six_threads() {
    // The headline capability: an n = 1024 localhost cluster in ONE
    // process on workers + 2 = 6 OS threads (the thread-per-node runtime
    // would need 1024).
    let n = 1024usize;
    let config = NodeConfig::builder()
        .gamma(8)
        .cycle_length(60)
        .timeout(25)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, config)
            .with_workers(4)
            .with_seed(3),
        |i| (i % 101) as f64, // truth ~ 49.76 (1024 = 10*101 + 14 slots of 0..13)
    )
    .unwrap();
    assert_eq!(cluster.thread_count(), 6);
    std::thread::sleep(Duration::from_millis(1_800));
    let reports = cluster.take_all_reports();
    let (rx, tx) = cluster.datagram_counts();
    cluster.shutdown();
    let truth = (0..n).map(|i| (i % 101) as f64).sum::<f64>() / n as f64;
    let estimates: Vec<f64> = reports
        .iter()
        .flatten()
        .filter_map(|r| r.scalar(0))
        .collect();
    assert!(
        estimates.len() >= n / 2,
        "only {} epoch reports from {n} nodes",
        estimates.len()
    );
    assert!(tx > 0 && rx > 0, "no datagrams moved ({rx} in, {tx} out)");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert!(
        (mean - truth).abs() < truth * 0.05,
        "mean estimate {mean} vs truth {truth}"
    );
}

#[test]
fn node_survives_garbage_datagrams() {
    let config = NodeConfig::builder()
        .gamma(5)
        .cycle_length(25)
        .timeout(10)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let nodes = spawn_cluster(2, config, |i| i as f64);
    // Blast corrupt datagrams at both nodes.
    let attacker = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    for _ in 0..50 {
        for node in &nodes {
            let _ = attacker.send_to(&[0xFF, 0x00, 0x13, 0x37], node.addr());
        }
    }
    std::thread::sleep(Duration::from_millis(700));
    // The protocol keeps running and converges regardless.
    let mut saw_report = false;
    for node in &nodes {
        if let Some(r) = node.take_reports().last() {
            saw_report = true;
            assert!((r.scalar(0).unwrap() - 0.5).abs() < 0.2);
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(saw_report, "cluster stalled after garbage input");
}
