//! End-to-end integration over real UDP sockets: the full stack —
//! sans-io protocol node, binary codec, pluggable peer directories, and
//! every runtime behind the unified `Cluster` seam — computing aggregates
//! on localhost.
//!
//! The cross-runtime conformance suite holds the thread-per-node runtime,
//! the mux runtime in every I/O configuration (single- and multi-reader
//! socket sets, syscall-batched and portable backends), and a 2-socket
//! sharded mux cluster to the same answers: identical n = 2 epoch-report
//! sequences on the same seed, and agreeing convergence within paper
//! theory bounds at n = 256 (and n = 1024 for the multi-reader set).

use epidemic::aggregation::{theory, EpochReport, InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::batch::IoBackend;
use epidemic::net::cluster::Cluster;
use epidemic::net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic::net::mux::{MuxCluster, MuxClusterConfig, PeerTable};
use epidemic::net::runtime::{ClusterConfig, ThreadCluster};
use std::time::Duration;

/// Per-node report streams keyed by cluster-wide node id.
type NodeReports = Vec<(u64, Vec<EpochReport>)>;

/// Drains every node's reports, keyed by cluster-wide node id so shards
/// of one cluster can be merged and compared across runtimes.
fn reports_by_id<C: Cluster>(cluster: &C) -> NodeReports {
    (0..cluster.node_count())
        .map(|i| (cluster.node_id(i).as_u64(), cluster.take_reports(i)))
        .collect()
}

/// The theory-backed absolute error bound used across the convergence
/// tests: Section 3 gives a per-cycle variance reduction of
/// rho = 1/(2 sqrt e), so after gamma cycles the expected residual std of
/// estimates started at 0..n is sigma_0 * rho^(gamma/2) — far below 1
/// here. `slack` multiplies the residual to absorb real-world delays,
/// drops, and partial exchanges; the floor keeps the bound a small
/// relative error even when the residual underflows.
fn theory_bound(n: usize, gamma: u32, slack: f64) -> f64 {
    let truth = (n as f64 - 1.0) / 2.0;
    let sigma0 = ((n as f64 * n as f64 - 1.0) / 12.0).sqrt();
    let residual = sigma0 * theory::variance_after(gamma, theory::RHO_PUSH_PULL, 1.0).sqrt();
    (residual * slack).max(truth * 0.01 * slack / 100.0)
}

#[test]
fn five_node_cluster_converges_on_average() {
    let config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = ThreadCluster::spawn(
        ClusterConfig::loopback(5, config).expect("bind cluster"),
        |i| (i as f64 + 1.0) * 4.0, // avg 12
    )
    .expect("spawn cluster");
    std::thread::sleep(Duration::from_millis(1_500));
    let mut last_estimates = Vec::new();
    for (_, reports) in reports_by_id(&cluster) {
        if let Some(r) = reports.last() {
            last_estimates.push(r.scalar(0).unwrap());
        }
    }
    cluster.shutdown();
    assert!(
        last_estimates.len() >= 4,
        "only {} nodes reported",
        last_estimates.len()
    );
    for est in last_estimates {
        assert!((est - 12.0).abs() < 1.0, "estimate {est} (truth 12)");
    }
}

#[test]
fn cluster_counts_itself() {
    let n = 8;
    let config = NodeConfig::builder()
        .gamma(12)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 3.0 },
        })
        .initial_size_guess(n as f64)
        .build()
        .unwrap();
    let cluster = ThreadCluster::spawn(
        ClusterConfig::loopback(n, config).expect("bind cluster"),
        |_| 0.0,
    )
    .expect("spawn cluster");
    std::thread::sleep(Duration::from_millis(2_200));
    let mut estimates = Vec::new();
    for (_, reports) in reports_by_id(&cluster) {
        for r in reports {
            if let Some(c) = r.count_estimate() {
                estimates.push(c);
            }
        }
    }
    cluster.shutdown();
    assert!(!estimates.is_empty(), "no COUNT estimates produced");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert!(
        mean > n as f64 * 0.5 && mean < n as f64 * 2.0,
        "mean count {mean} for {n} nodes"
    );
}

#[test]
fn mux_512_nodes_single_process_converge_within_theory_bounds() {
    // 512 real-socket nodes in one process — far beyond what the
    // thread-per-node runtime is meant for — multiplexed over one socket
    // and 4 + 2 OS threads.
    let n = 512usize;
    let gamma = 20u32;
    let config = NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, config)
            .with_workers(4)
            .with_readers(1)
            .with_seed(7),
        |i| i as f64, // truth: (n - 1) / 2 = 255.5
    )
    .unwrap();
    // readers = 1 preserves the original workers + 2 thread budget.
    assert_eq!(cluster.thread_count(), 4 + 2);
    std::thread::sleep(Duration::from_millis(2_300));
    let reports = cluster.take_all_reports();
    cluster.shutdown();

    let truth = (n as f64 - 1.0) / 2.0;
    let bound = theory_bound(n, gamma, 100.0);
    for node_reports in &reports {
        for r in node_reports {
            let est = r.scalar(0).unwrap();
            assert!(
                (est - truth).abs() < bound,
                "epoch {} estimate {est} vs truth {truth} (bound {bound:.3})",
                r.epoch
            );
        }
    }
    // The overwhelming majority of nodes must have completed epoch 0
    // within the run (a few stragglers may still be mid-epoch).
    let nodes_reporting = reports.iter().filter(|r| !r.is_empty()).count();
    assert!(
        nodes_reporting >= n * 3 / 4,
        "only {nodes_reporting} of {n} nodes completed an epoch"
    );
}

#[test]
fn mux_1024_nodes_multi_reader_converge_within_theory_bounds() {
    // The multi-reader socket set at scale: 1024 vnodes spread over 4
    // reader sockets (vnode i homed on socket i % 4), frames flushed in
    // sendmmsg bursts on the default backend. Convergence must sit
    // within the same paper bound as the single-reader runtime.
    let n = 1024usize;
    let gamma = 20u32;
    let config = NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(60)
        .timeout(24)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, config)
            .with_workers(4)
            .with_readers(4)
            .with_seed(7),
        |i| i as f64, // truth: (n - 1) / 2 = 511.5
    )
    .unwrap();
    assert_eq!(cluster.reader_count(), 4);
    assert_eq!(cluster.thread_count(), 4 + 4 + 1);
    assert_eq!(cluster.addrs().len(), 4);
    std::thread::sleep(Duration::from_millis(3_400));
    let reports = cluster.take_all_reports();
    let syscalls = cluster.syscall_counts();
    let totals = cluster.total_datagram_counts();
    cluster.shutdown();

    let truth = (n as f64 - 1.0) / 2.0;
    let bound = theory_bound(n, gamma, 100.0);
    for node_reports in &reports {
        for r in node_reports {
            let est = r.scalar(0).unwrap();
            assert!(
                (est - truth).abs() < bound,
                "epoch {} estimate {est} vs truth {truth} (bound {bound:.3})",
                r.epoch
            );
        }
    }
    let nodes_reporting = reports.iter().filter(|r| !r.is_empty()).count();
    assert!(
        nodes_reporting >= n * 3 / 4,
        "only {nodes_reporting} of {n} nodes completed an epoch"
    );
    // Syscall accounting runs on every backend; on the batched one the
    // send side must do strictly better than one syscall per datagram.
    assert!(syscalls.recv_calls > 0 && syscalls.send_calls > 0);
    let attempted = totals.sent() + totals.send_errors;
    assert!(
        syscalls.send_calls <= attempted,
        "send syscalls ({}) exceed datagrams attempted ({attempted})",
        syscalls.send_calls
    );
    if cluster_io_is_batched() {
        assert!(
            syscalls.send_calls < attempted,
            "batched backend never coalesced a send burst \
             ({} syscalls for {attempted} datagrams)",
            syscalls.send_calls
        );
    }
}

/// Whether the default-selected backend actually batches here (Linux,
/// barring an `EPIDEMIC_NET_IO` override — the CI fallback leg sets it).
fn cluster_io_is_batched() -> bool {
    IoBackend::auto().is_batched()
}

#[test]
fn runtimes_agree_on_same_seed() {
    // Same seed, same protocol config, same values: the thread-per-node
    // cluster, the mux cluster in every I/O configuration (readers 1 and
    // 2, syscall-batched and portable backends), AND a mux cluster
    // sharded over two sockets must produce identical EpochReport
    // sequences. n = 2 makes the comparison exact: any completed
    // exchange yields precisely the true average, independent of
    // scheduling, so every epoch report of every node is bit-identical
    // across runtimes — the reader-set refactor must be invisible to the
    // protocol.
    let seed = 0xA11CE;
    let make_config = || {
        NodeConfig::builder()
            .gamma(5)
            .cycle_length(30)
            .timeout(12)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    };
    let values = |i: usize| (i as f64 + 1.0) * 10.0; // 10, 20 -> average 15

    let threads = ThreadCluster::spawn(
        ClusterConfig::loopback(2, make_config())
            .expect("bind cluster")
            .with_seed(seed),
        values,
    )
    .expect("spawn thread cluster");
    let mux_variants: Vec<(&str, MuxCluster)> = [
        ("mux r1 auto", 1, IoBackend::auto()),
        ("mux r1 portable", 1, IoBackend::Portable),
        ("mux r2 auto", 2, IoBackend::auto()),
        ("mux r2 portable", 2, IoBackend::Portable),
    ]
    .into_iter()
    .map(|(label, readers, io)| {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(2, make_config())
                .with_seed(seed)
                .with_readers(readers)
                .with_io(io),
            values,
        )
        .unwrap();
        assert_eq!(cluster.reader_count(), readers, "{label}");
        (label, cluster)
    })
    .collect();
    // One vnode per socket: every exchange crosses between two sockets,
    // exercising the cross-host frame path.
    let table = PeerTable::loopback_split(2, 2).unwrap();
    let shards = [
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table.clone(), 0, make_config())
                .with_seed(seed)
                .with_workers(1),
            values,
        )
        .unwrap(),
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table, 1, make_config())
                .with_seed(seed)
                .with_workers(1),
            values,
        )
        .unwrap(),
    ];

    std::thread::sleep(Duration::from_millis(1_400));
    let mut thread_reports = reports_by_id(&threads);
    let mut variant_reports: Vec<(&str, NodeReports)> = mux_variants
        .iter()
        .map(|(label, cluster)| (*label, reports_by_id(cluster)))
        .collect();
    let mut sharded_reports: NodeReports = shards.iter().flat_map(reports_by_id).collect();
    threads.shutdown();
    for (_, cluster) in mux_variants {
        cluster.shutdown();
    }
    for shard in shards {
        shard.shutdown();
    }
    thread_reports.sort_by_key(|(id, _)| *id);
    for (_, reports) in &mut variant_reports {
        reports.sort_by_key(|(id, _)| *id);
    }
    sharded_reports.sort_by_key(|(id, _)| *id);

    let mut comparisons: Vec<(&str, &NodeReports)> = variant_reports
        .iter()
        .map(|(label, reports)| (*label, reports))
        .collect();
    comparisons.push(("2-shard mux", &sharded_reports));
    for (label, other) in comparisons {
        for ((id, t), (other_id, o)) in thread_reports.iter().zip(other) {
            assert_eq!(id, other_id);
            // Join by epoch number: under CPU contention a starved
            // cluster may skip a cycle boundary and miss an epoch
            // entirely, but every epoch BOTH runtimes completed must
            // carry a bit-identical report.
            let by_epoch: std::collections::BTreeMap<u64, &EpochReport> =
                o.iter().map(|r| (r.epoch, r)).collect();
            let mut common = 0usize;
            for report in t {
                if let Some(other_report) = by_epoch.get(&report.epoch) {
                    assert_eq!(
                        &report, other_report,
                        "node {id}: {label} diverged from threads on the same seed \
                         at epoch {}",
                        report.epoch
                    );
                    common += 1;
                }
            }
            assert!(
                common >= 3,
                "node {id}: too few comparable epochs vs {label} (threads {}, {label} {})",
                t.len(),
                o.len()
            );
        }
    }
}

#[test]
fn conformance_convergence_agrees_at_n256() {
    // The same n = 256 scenario through all three runtimes, run
    // sequentially on the same seed: each must converge within the paper
    // bound, and their means must agree with each other.
    let n = 256usize;
    let gamma = 12u32;
    let seed = 99;
    let make_config = || {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(40)
            .timeout(16)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    };
    let truth = (n as f64 - 1.0) / 2.0;
    let bound = theory_bound(n, gamma, 100.0);

    // Epoch 0 overlaps cluster startup (for the thread runtime, binding
    // and spawning 256 sockets and threads), so each node is judged on
    // its latest completed epoch past the first.
    let check = |label: &str, reports: Vec<(u64, Vec<EpochReport>)>| -> f64 {
        let mut finals = Vec::new();
        for (id, node_reports) in &reports {
            let Some(r) = node_reports.iter().rev().find(|r| r.epoch >= 1) else {
                continue;
            };
            let est = r.scalar(0).unwrap();
            assert!(
                (est - truth).abs() < bound,
                "{label}: node {id} epoch {} estimate {est} vs {truth} (bound {bound:.3})",
                r.epoch,
            );
            finals.push(est);
        }
        assert!(
            finals.len() >= n / 2,
            "{label}: only {} of {n} nodes completed a post-startup epoch",
            finals.len()
        );
        finals.iter().sum::<f64>() / finals.len() as f64
    };

    let threads = ThreadCluster::spawn(
        ClusterConfig::loopback(n, make_config())
            .expect("bind cluster")
            .with_seed(seed),
        |i| i as f64,
    )
    .expect("spawn thread cluster");
    std::thread::sleep(Duration::from_millis(2_600));
    let thread_mean = check("threads", reports_by_id(&threads));
    threads.shutdown();

    let mux = MuxCluster::spawn(
        MuxClusterConfig::new(n, make_config())
            .with_workers(4)
            .with_seed(seed),
        |i| i as f64,
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(2_600));
    let mux_mean = check("mux", reports_by_id(&mux));
    mux.shutdown();

    let table = PeerTable::loopback_split(n, 2).unwrap();
    let shards = [
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table.clone(), 0, make_config())
                .with_seed(seed)
                .with_workers(2),
            |i| i as f64,
        )
        .unwrap(),
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table, 1, make_config())
                .with_seed(seed)
                .with_workers(2),
            |i| i as f64,
        )
        .unwrap(),
    ];
    assert_eq!(shards[0].len() + shards[1].len(), n);
    std::thread::sleep(Duration::from_millis(2_600));
    let sharded_mean = check(
        "2-shard mux",
        shards.iter().flat_map(reports_by_id).collect(),
    );
    for shard in shards {
        shard.shutdown();
    }

    for (label, mean) in [
        ("threads", thread_mean),
        ("mux", mux_mean),
        ("2-shard mux", sharded_mean),
    ] {
        assert!(
            (mean - truth).abs() < bound,
            "{label}: mean {mean} vs truth {truth}"
        );
    }
    assert!(
        (thread_mean - mux_mean).abs() < bound && (mux_mean - sharded_mean).abs() < bound,
        "runtimes disagree: threads {thread_mean}, mux {mux_mean}, sharded {sharded_mean}"
    );
}

#[test]
fn gossip_directory_mux_converges_without_static_peer_table() {
    // NO static peer table: vnode 0 is the only bootstrap contact; every
    // other vnode joins it over the wire, learns the overlay by NEWSCAST
    // view gossip (codec tags 4-7 in mux frames through the same socket,
    // timer wheel, and workers), and serves GETNEIGHBOR() from its live
    // partial view. Epoch 0 overlaps the bootstrap; from epoch 1 on the
    // estimates must sit within (a slackened) paper theory bound.
    let n = 256usize;
    let gamma = 15u32;
    let config = NodeConfig::builder()
        .gamma(gamma)
        .cycle_length(40)
        .timeout(16)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let directory =
        DirectorySpec::Gossip(GossipDirectoryConfig::new(20, 25).with_introducer_node(0));
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, config)
            .with_workers(4)
            .with_seed(21)
            .with_directory(directory),
        |i| i as f64,
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(3_000));
    let reports = cluster.take_all_reports();
    let totals = cluster.total_datagram_counts();
    cluster.shutdown();

    let truth = (n as f64 - 1.0) / 2.0;
    // NEWSCAST's partial views approximate-but-don't-equal uniform
    // sampling and the bootstrap steals early cycles, so allow double
    // the slack of the static-directory tests.
    let bound = theory_bound(n, gamma, 200.0);
    let mut converged = 0usize;
    for (id, node_reports) in reports.iter().enumerate() {
        for r in node_reports {
            if r.epoch == 0 {
                continue; // bootstrap epoch: views may still be filling
            }
            let est = r.scalar(0).unwrap();
            assert!(
                (est - truth).abs() < bound,
                "node {id} epoch {} estimate {est} vs truth {truth} (bound {bound:.3})",
                r.epoch
            );
            converged += 1;
        }
    }
    assert!(
        converged >= n / 2,
        "only {converged} post-bootstrap epoch reports from {n} nodes"
    );
    // The membership plane actually ran — and is accounted separately
    // from the aggregation plane.
    assert!(totals.membership_sent > 0, "no membership traffic counted");
    assert!(totals.membership_received > 0);
    assert!(totals.membership_bytes_sent > 0);
    assert!(totals.aggregation_sent > 0);
    let overhead = totals.membership_byte_overhead();
    assert!(
        overhead > 0.0 && overhead < 10.0,
        "implausible membership byte overhead {overhead}"
    );
}

#[test]
fn delta_gossip_matches_full_view_gossip_over_the_wire() {
    // Conformance: the delta view path (tags 8/9 + piggybacked trailers)
    // must reach the same aggregation fidelity as full-view gossip on the
    // same seed — while spending strictly fewer membership bytes.
    let n = 64usize;
    let gamma = 12u32;
    let make_config = || {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(40)
            .timeout(16)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    };
    let truth = (n as f64 - 1.0) / 2.0;
    let bound = theory_bound(n, gamma, 200.0);
    let run = |gossip: GossipDirectoryConfig| {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(n, make_config())
                .with_workers(2)
                .with_seed(17)
                .with_directory(DirectorySpec::Gossip(gossip)),
            |i| i as f64,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(2_200));
        let reports = cluster.take_all_reports();
        let totals = cluster.total_datagram_counts();
        cluster.shutdown();
        let mut finals = Vec::new();
        for (id, node_reports) in reports.iter().enumerate() {
            if let Some(r) = node_reports.iter().rev().find(|r| r.epoch >= 1) {
                let est = r.scalar(0).unwrap();
                assert!(
                    (est - truth).abs() < bound,
                    "node {id} epoch {} estimate {est} vs {truth} (bound {bound:.3})",
                    r.epoch
                );
                finals.push(est);
            }
        }
        assert!(
            finals.len() >= n / 2,
            "only {} of {n} nodes completed a post-bootstrap epoch",
            finals.len()
        );
        totals
    };

    let base = || GossipDirectoryConfig::new(20, 25).with_introducer_node(0);
    let delta = run(base());
    let full = run(base().with_full_views());
    assert!(delta.membership_bytes_sent > 0 && full.membership_bytes_sent > 0);
    // Same cadence, same seed: deltas must beat full views per membership
    // datagram on the wire, not just in the simulator.
    let per_msg = |t: &epidemic::net::cluster::TrafficCounts| {
        t.membership_bytes_sent as f64 / t.membership_sent.max(1) as f64
    };
    assert!(
        per_msg(&delta) < per_msg(&full),
        "delta gossip not cheaper per message: {:.1} vs {:.1} bytes",
        per_msg(&delta),
        per_msg(&full)
    );
}

#[test]
fn sharded_gossip_cluster_fans_frames_across_reader_sets() {
    // Two shards, two reader sockets each, gossiped membership: joins,
    // view deltas, piggybacked trailers, and aggregation frames all cross
    // between the shards — and every reader socket of both shards must
    // see remote traffic (the destination vnode's home socket, not just
    // the shard's first address).
    let n = 8usize;
    let config = NodeConfig::builder()
        .gamma(8)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let table = PeerTable::loopback_split_readers(n, 2, 2).unwrap();
    let directory =
        || DirectorySpec::Gossip(GossipDirectoryConfig::new(6, 20).with_introducer_node(0));
    let spawn = |shard: usize| {
        MuxCluster::spawn(
            MuxClusterConfig::sharded(table.clone(), shard, config.clone())
                .with_workers(1)
                .with_readers(2)
                .with_seed(23)
                .with_directory(directory()),
            |i| i as f64,
        )
        .unwrap()
    };
    let shards = [spawn(0), spawn(1)];
    std::thread::sleep(Duration::from_millis(1_500));
    let recvs: Vec<_> = shards.iter().map(|s| s.socket_recv_counts()).collect();
    let totals = shards[0].total_datagram_counts() + shards[1].total_datagram_counts();
    for shard in shards {
        shard.shutdown();
    }
    assert!(
        totals.membership_sent > 0,
        "membership never crossed shards"
    );
    assert!(totals.aggregation_sent > 0);
    for (s, sockets) in recvs.iter().enumerate() {
        assert_eq!(sockets.len(), 2, "shard {s} lost a reader socket");
        for (i, socket) in sockets.iter().enumerate() {
            assert!(
                socket.remote_datagrams > 0,
                "shard {s} socket {i} never saw cross-shard traffic: {recvs:?}"
            );
        }
    }
}

#[test]
fn node_survives_garbage_datagrams() {
    let config = NodeConfig::builder()
        .gamma(5)
        .cycle_length(25)
        .timeout(10)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = ThreadCluster::spawn(
        ClusterConfig::loopback(2, config).expect("bind cluster"),
        |i| i as f64,
    )
    .expect("spawn cluster");
    // Blast corrupt datagrams at both nodes.
    let attacker = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    for _ in 0..50 {
        for addr in cluster.addrs() {
            let _ = attacker.send_to(&[0xFF, 0x00, 0x13, 0x37], addr);
        }
    }
    std::thread::sleep(Duration::from_millis(700));
    // The protocol keeps running and converges regardless.
    let mut saw_report = false;
    for (_, reports) in reports_by_id(&cluster) {
        if let Some(r) = reports.last() {
            saw_report = true;
            assert!((r.scalar(0).unwrap() - 0.5).abs() < 0.2);
        }
    }
    cluster.shutdown();
    assert!(saw_report, "cluster stalled after garbage input");
}
