//! End-to-end integration over real UDP sockets: the full stack —
//! sans-io protocol node, binary codec, threaded runtime — computing
//! aggregates on localhost.

use epidemic::aggregation::{InstanceSpec, LeaderPolicy, NodeConfig};
use epidemic::net::runtime::{ClusterConfig, UdpNode};
use std::time::Duration;

fn spawn_cluster(n: usize, node_config: NodeConfig, values: impl Fn(usize) -> f64) -> Vec<UdpNode> {
    let cluster = ClusterConfig::loopback(n, node_config).expect("bind cluster");
    (0..n)
        .map(|i| UdpNode::spawn(cluster.node(i, values(i))).expect("spawn node"))
        .collect()
}

#[test]
fn five_node_cluster_converges_on_average() {
    let config = NodeConfig::builder()
        .gamma(10)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let nodes = spawn_cluster(5, config, |i| (i as f64 + 1.0) * 4.0); // avg 12
    std::thread::sleep(Duration::from_millis(1_500));
    let mut last_estimates = Vec::new();
    for node in &nodes {
        if let Some(r) = node.take_reports().last() {
            last_estimates.push(r.scalar(0).unwrap());
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(
        last_estimates.len() >= 4,
        "only {} nodes reported",
        last_estimates.len()
    );
    for est in last_estimates {
        assert!((est - 12.0).abs() < 1.0, "estimate {est} (truth 12)");
    }
}

#[test]
fn cluster_counts_itself() {
    let n = 8;
    let config = NodeConfig::builder()
        .gamma(12)
        .cycle_length(30)
        .timeout(12)
        .instance(InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency: 3.0 },
        })
        .initial_size_guess(n as f64)
        .build()
        .unwrap();
    let nodes = spawn_cluster(n, config, |_| 0.0);
    std::thread::sleep(Duration::from_millis(2_200));
    let mut estimates = Vec::new();
    for node in &nodes {
        for r in node.take_reports() {
            if let Some(c) = r.count_estimate() {
                estimates.push(c);
            }
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(!estimates.is_empty(), "no COUNT estimates produced");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    assert!(
        mean > n as f64 * 0.5 && mean < n as f64 * 2.0,
        "mean count {mean} for {n} nodes"
    );
}

#[test]
fn node_survives_garbage_datagrams() {
    let config = NodeConfig::builder()
        .gamma(5)
        .cycle_length(25)
        .timeout(10)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let nodes = spawn_cluster(2, config, |i| i as f64);
    // Blast corrupt datagrams at both nodes.
    let attacker = std::net::UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    for _ in 0..50 {
        for node in &nodes {
            let _ = attacker.send_to(&[0xFF, 0x00, 0x13, 0x37], node.addr());
        }
    }
    std::thread::sleep(Duration::from_millis(700));
    // The protocol keeps running and converges regardless.
    let mut saw_report = false;
    for node in &nodes {
        if let Some(r) = node.take_reports().last() {
            saw_report = true;
            assert!((r.scalar(0).unwrap() - 0.5).abs() < 0.2);
        }
    }
    for node in nodes {
        node.shutdown();
    }
    assert!(saw_report, "cluster stalled after garbage input");
}
