//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements just enough of criterion's API for the workspace's benches to
//! compile and run: benchmark groups, `iter`/`iter_batched`, throughput
//! annotation, and the `criterion_group!`/`criterion_main!` macros. It
//! measures wall-clock mean time per iteration (no statistical analysis or
//! outlier detection) and prints one line per benchmark.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON object per
//! benchmark to `<path>` (used to capture `BENCH_baseline.json`).
//!
//! Like the real harness, a positional command-line argument filters by
//! substring match against `group/id`, so
//! `cargo bench --bench <target> -- <needle>` runs only the matching
//! benchmarks (flags are ignored).

#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// First positional CLI argument, used as a substring filter.
fn cli_filter() -> Option<&'static str> {
    static FILTER: OnceLock<Option<String>> = OnceLock::new();
    FILTER
        .get_or_init(|| std::env::args().skip(1).find(|a| !a.starts_with('-')))
        .as_deref()
}

/// Re-export point used by `criterion::black_box` callers.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

/// Units-of-work annotation, echoed into reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by this stand-in).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A named collection of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a units-of-work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.skipped(&id.id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id.id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if self.skipped(&id.id) {
            return self;
        }
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Ends the group (the stand-in reports eagerly, so this is a no-op).
    pub fn finish(&mut self) {}

    fn skipped(&self, id: &str) -> bool {
        cli_filter().is_some_and(|needle| !format!("{}/{id}", self.name).contains(needle))
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let ns = bencher.ns_per_iter();
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                format!("  {:>12.0} elem/s", e as f64 / (ns * 1e-9))
            }
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                format!("  {:>12.0} B/s", b as f64 / (ns * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "bench: {}/{:<40} {:>14.1} ns/iter ({} iters){rate}",
            self.name, id, ns, bencher.iters
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let elems = match self.throughput {
                Some(Throughput::Elements(e)) => e,
                _ => 0,
            };
            let line = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{},\"throughput_elems\":{}}}\n",
                self.name, id, ns, bencher.iters, elems
            );
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = file.write_all(line.as_bytes());
            }
        }
    }
}

/// Measures closures; handed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Target measurement time, scaled down for small sample sizes (which
    /// the benches use to mark expensive workloads).
    fn budget(&self) -> Duration {
        if self.sample_size <= 10 {
            Duration::from_millis(300)
        } else {
            Duration::from_millis(500)
        }
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total.as_nanos() as f64 / self.iters as f64
        }
    }

    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let budget = self.budget();
        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = self.budget();
        let start = Instant::now();
        while start.elapsed() < budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
