//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements just enough of proptest's API for the workspace's property
//! tests to compile and run: random generation driven by a deterministic
//! per-test RNG, `prop_assert*` macros, and the strategy combinators the
//! tests use. It does **not** shrink failing inputs; a failure panics with
//! the case number and the test's derived seed so the case can be replayed.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Convenience re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`, `btree_map`).
    pub mod collection {
        pub use crate::strategy::collection::{btree_map, vec};
    }
    /// `Option<T>` strategies.
    pub mod option {
        pub use crate::strategy::option::of;
    }
    /// Numeric sub-strategies.
    pub mod num {
        /// `f64` class strategies.
        pub mod f64 {
            pub use crate::strategy::num_f64::{NORMAL, ZERO};
        }
    }
}

/// Defines property tests from `fn name(pat in strategy, ...) { body }`
/// items, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut case: u32 = 0;
            let mut attempts: u32 = 0;
            while case < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20).max(1000),
                    "proptest {}: too many rejected cases",
                    stringify!($name),
                );
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Fails the current test case (returns `Err` from the case closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discards the current case (does not count toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
