//! Generation-only strategies: ranges, tuples, collections, map/union
//! combinators. No shrinking — failures report the case index instead.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random values of one type.
///
/// Unlike real proptest this is generate-only (`&self`, no value tree), so
/// any `Strategy` is also usable through a `Box<dyn ...>`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`, `a | b`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Boxes a strategy for use in [`Union`].
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<V: 'static, A, B> std::ops::BitOr<B> for crate::strategy::Wrap<A>
where
    A: Strategy<Value = V> + 'static,
    B: Strategy<Value = V> + 'static,
{
    type Output = Union<V>;
    fn bitor(self, rhs: B) -> Union<V> {
        Union::new(vec![boxed(self.0), boxed(rhs)])
    }
}

/// Newtype enabling `a | b` unions on strategy constants.
#[derive(Debug, Clone)]
pub struct Wrap<S>(pub S);

impl<S: Strategy> Strategy for Wrap<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        self.0.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.next_below(span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_below(self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i128 - self.start as i128) as u64;
        (self.start as i128 + rng.next_below(span) as i128) as i64
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `any::<T>()` support for the handful of types the tests use.
pub trait ArbitraryValue: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Mirrors `proptest::prelude::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::collections::BTreeMap;

    /// `Vec` strategy with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy; the generated size may fall below the requested
    /// range when random keys collide (acceptable for these tests).
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// Mirrors `prop::collection::btree_map`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.len.generate(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `Option<T>` strategies.
pub mod option {
    use super::*;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` 25% of the time, `Some(inner)` otherwise (matches real
    /// proptest's default `of` weighting closely enough).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// `f64` class strategies (`prop::num::f64`).
pub mod num_f64 {
    use super::*;

    /// Normal (non-zero, non-subnormal, finite) doubles of either sign.
    #[derive(Debug, Clone, Copy)]
    pub struct NormalF64;

    /// Positive or negative zero.
    #[derive(Debug, Clone, Copy)]
    pub struct ZeroF64;

    /// Mirrors `prop::num::f64::NORMAL` (wrapped so `NORMAL | ZERO` works).
    pub const NORMAL: Wrap<NormalF64> = Wrap(NormalF64);

    /// Mirrors `prop::num::f64::ZERO`.
    pub const ZERO: Wrap<ZeroF64> = Wrap(ZeroF64);

    impl Strategy for NormalF64 {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            loop {
                let sign = rng.next_u64() & (1 << 63);
                // Biased exponent in [1, 2046]: excludes zero/subnormal
                // (0) and inf/nan (2047).
                let exp = 1 + rng.next_below(2046);
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                let bits = sign | (exp << 52) | mantissa;
                let v = f64::from_bits(bits);
                if v.is_normal() {
                    return v;
                }
            }
        }
    }

    impl Strategy for ZeroF64 {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            if rng.next_u64() & 1 == 0 {
                0.0
            } else {
                -0.0
            }
        }
    }
}
