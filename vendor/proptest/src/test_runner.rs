//! Test-runner plumbing: per-test deterministic RNG, config, and the
//! error type threaded through `prop_assert*`.

use std::fmt;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is regenerated.
    Reject(&'static str),
    /// `prop_assert*` failed; the whole test fails.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(why) => write!(f, "rejected: {why}"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Subset of `proptest::test_runner::Config` used by this workspace.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases to run.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG driving generation (xoshiro256** seeded from the test
/// name via SplitMix64, plus an optional `PROPTEST_RNG_SEED` env override).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the RNG for one property test, seeded from the test name so
    /// every test explores a distinct but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(mut v) = extra.trim().parse::<u64>() {
                h ^= splitmix(&mut v);
            }
        }
        let mut state = h;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix(&mut state);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}
