//! Figure reproduction CLI.
//!
//! ```text
//! repro <figure id>... [--scale F] [--seed N] [--out DIR] [--list]
//! repro all [--scale F]
//! ```
//!
//! Runs the requested figures of the DSN 2004 evaluation, prints each
//! table, and writes `<out>/<id>.csv`. `--scale 1.0` (default 0.1)
//! reproduces the paper's full parameters (N = 10⁵, 50–100 runs); smaller
//! scales shrink sizes and repetitions proportionally.

use epidemic_bench::{figures, Scale};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    ids: Vec<String>,
    scale: f64,
    seed: u64,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: 0.1,
        seed: 20040628, // DSN 2004 conference date
        out: PathBuf::from("results"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let v = iter.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("scale {v} out of range: must be in (0, 1]"));
                }
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
            }
            "--out" => {
                let v = iter.next().ok_or("--out needs a value")?;
                args.out = PathBuf::from(v);
            }
            "--list" => {
                for id in figures::ALL {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro <figure id>...|all [--scale F] [--seed N] [--out DIR] [--list]"
                );
                std::process::exit(0);
            }
            "all" => args.ids.extend(figures::ALL.iter().map(|s| s.to_string())),
            id if figures::ALL.contains(&id) => args.ids.push(id.to_string()),
            other => return Err(format!("unknown argument {other:?}; try --list")),
        }
    }
    if args.ids.is_empty() {
        return Err("no figures requested; try `repro all` or `repro --list`".to_string());
    }
    args.ids.dedup();
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = Scale::new(args.scale);
    println!(
        "reproducing {} figure(s) at scale {} (seed {})\n",
        args.ids.len(),
        args.scale,
        args.seed
    );
    for id in &args.ids {
        let start = Instant::now();
        let fig = figures::run(id, scale, args.seed);
        let elapsed = start.elapsed();
        println!("{}", fig.to_table());
        match fig.write_csv(&args.out) {
            Ok(path) => println!("[{id}] wrote {} in {elapsed:.2?}\n", path.display()),
            Err(e) => eprintln!("[{id}] CSV write failed: {e}\n"),
        }
    }
    ExitCode::SUCCESS
}
