//! Figure 5: crash-induced error vs Theorem 1.
//!
//! Before every cycle a proportion P_f of the remaining nodes crashes. The
//! paper plots `Var(µ₂₀)/E(σ₀²)` — the variance (across runs) of the mean
//! estimate after 20 cycles, normalized by the initial estimate variance —
//! against the closed form of Eq. (2) with ρ = 1/(2√e), for both the fully
//! connected topology and NEWSCAST.
//!
//! Theorem 1 assumes pairwise *uncorrelated* node values, so this
//! experiment initializes nodes with i.i.d. uniform values. (The peak
//! distribution concentrates all mass on one node; at high P_f that node
//! dies early in essentially every run, which collapses the between-run
//! variance far below the prediction — a violated assumption, not a
//! protocol effect.)

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_aggregation::theory;
use epidemic_common::stats;
use epidemic_sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic_sim::failure::FailureModel;
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};

/// Reproduces Figure 5. Columns: P_f, measured ratio on the complete
/// topology, measured ratio on NEWSCAST, and the Theorem 1 prediction.
pub fn fig5(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(100);
    let cycles = 20u32;
    let pfs: Vec<f64> = (0..=10).map(|i| i as f64 * 0.03).collect();
    let overlays = [
        OverlaySpec::Complete,
        OverlaySpec::Newscast { c: 30.min(n / 2) },
    ];
    let mut rows = Vec::new();
    for &p_f in &pfs {
        let mut row = vec![p_f];
        for overlay in overlays {
            let config = ExperimentConfig {
                scenario: Scenario {
                    n,
                    overlay,
                    values: ValueInit::Uniform { lo: 0.0, hi: 2.0 },
                    failure: if p_f > 0.0 {
                        FailureModel::ProportionalCrash { p_f }
                    } else {
                        FailureModel::None
                    },
                    ..Scenario::default()
                },
                cycles,
                aggregate: AggregateSetup::Average,
            };
            let outcomes = run_many(&config, &seeds(seed, reps));
            // Theorem 1 predicts the variance of the crash-induced drift
            // of the running mean; subtracting each run's own µ₀ removes
            // the (i.i.d.-sampling) variance of the starting point.
            let drifts: Vec<f64> = outcomes
                .iter()
                .map(|o| o.mean[cycles as usize] - o.mean[0])
                .collect();
            let sigma0: Vec<f64> = outcomes.iter().map(|o| o.variance[0]).collect();
            let ratio = stats::variance(&drifts) / stats::mean(&sigma0);
            row.push(ratio);
        }
        row.push(theory::crash_variance_ratio(
            p_f,
            n,
            theory::RHO_PUSH_PULL,
            cycles,
        ));
        rows.push(row);
    }
    FigureOutput {
        id: "fig5",
        title: format!(
            "Var(mu_20)/E(sigma0^2) vs crash proportion P_f, N={n}, {reps} runs, \
             vs Theorem 1 prediction (rho = 1/(2*sqrt(e)))"
        ),
        columns: ["pf", "complete", "newscast", "predicted"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}
