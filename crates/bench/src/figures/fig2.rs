//! Figure 2: behavior of AVERAGE on the peak distribution.
//!
//! N = 10⁵ nodes on a regular random overlay (20 neighbors each); one node
//! starts at 10⁵, everyone else at 0 (global average 1). The paper plots,
//! per cycle, the minimum and maximum estimate over all nodes, averaged
//! over 50 runs — converging onto 1 from 0 and 10⁵ respectively.

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};
use epidemic_topology::TopologyKind;

/// Reproduces Figure 2. Columns: cycle, the across-run averages of the
/// per-cycle minimum/maximum estimate, and the across-run extremes.
pub fn fig2(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    let cycles = 30u32;
    let config = ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Static(TopologyKind::Random { k: 20.min(n - 1) }),
            values: ValueInit::Peak { total: n as f64 },
            ..Scenario::default()
        },
        cycles,
        aggregate: AggregateSetup::Average,
    };
    let outcomes = run_many(&config, &seeds(seed, reps));
    let mut rows = Vec::with_capacity(cycles as usize + 1);
    for cycle in 0..=cycles as usize {
        let mins: Vec<f64> = outcomes.iter().map(|o| o.min[cycle]).collect();
        let maxs: Vec<f64> = outcomes.iter().map(|o| o.max[cycle]).collect();
        rows.push(vec![
            cycle as f64,
            epidemic_common::stats::mean(&mins),
            epidemic_common::stats::mean(&maxs),
            mins.iter().copied().fold(f64::INFINITY, f64::min),
            maxs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ]);
    }
    FigureOutput {
        id: "fig2",
        title: format!(
            "AVERAGE on peak distribution, N={n}, random overlay (k=20), {reps} runs; \
             min/max estimate per cycle (true average = 1)"
        ),
        columns: ["cycle", "avg_min", "avg_max", "min_of_min", "max_of_max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}
