//! Figures 3 and 4: convergence across topologies.
//!
//! * Fig. 3(a): average convergence factor over 20 cycles vs network size
//!   (10²..10⁶) for eight topologies.
//! * Fig. 3(b): normalized variance-reduction curves over 50 cycles at
//!   N = 10⁵ for the same topologies.
//! * Fig. 4(a): convergence factor vs Watts–Strogatz β.
//! * Fig. 4(b): convergence factor vs NEWSCAST view size c.

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};
use epidemic_topology::TopologyKind;

/// The eight overlay families of Figure 3, in plot order.
fn topology_suite(n: usize) -> Vec<(String, OverlaySpec)> {
    let k = 20.min(n - 1);
    let k = if k % 2 == 1 { k - 1 } else { k };
    vec![
        (
            "ws_b0.00".into(),
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k, beta: 0.0 }),
        ),
        (
            "ws_b0.25".into(),
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k, beta: 0.25 }),
        ),
        (
            "ws_b0.50".into(),
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k, beta: 0.5 }),
        ),
        (
            "ws_b0.75".into(),
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k, beta: 0.75 }),
        ),
        (
            "newscast".into(),
            OverlaySpec::Newscast { c: 30.min(n / 2) },
        ),
        (
            "scalefree".into(),
            OverlaySpec::Static(TopologyKind::ScaleFree { m: (k / 2).max(1) }),
        ),
        (
            "random".into(),
            OverlaySpec::Static(TopologyKind::Random { k }),
        ),
        ("complete".into(), OverlaySpec::Complete),
    ]
}

fn average_config(n: usize, overlay: OverlaySpec, cycles: u32) -> ExperimentConfig {
    ExperimentConfig {
        scenario: Scenario {
            n,
            overlay,
            values: ValueInit::Peak { total: n as f64 },
            ..Scenario::default()
        },
        cycles,
        aggregate: AggregateSetup::Average,
    }
}

/// Reproduces Figure 3(a): convergence factor (20 cycles) vs network size.
pub fn fig3a(scale: Scale, seed: u64) -> FigureOutput {
    let max_n = scale.n(1_000_000);
    let ladder: Vec<usize> = [100usize, 1_000, 10_000, 100_000, 1_000_000]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    let suite_names: Vec<String> = topology_suite(1_000).into_iter().map(|(l, _)| l).collect();
    let mut rows = Vec::new();
    for &n in &ladder {
        // The paper uses 50 runs; repetitions taper with size to keep the
        // full-scale suite tractable (documented in EXPERIMENTS.md).
        let paper_reps = match n {
            0..=1_000 => 50,
            1_001..=10_000 => 20,
            10_001..=100_000 => 8,
            _ => 3,
        };
        let reps = scale.reps(paper_reps);
        let mut row = vec![n as f64];
        for (_, overlay) in topology_suite(n) {
            let config = average_config(n, overlay, 20);
            let outcomes = run_many(&config, &seeds(seed, reps));
            let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
            row.push(epidemic_common::stats::mean(&factors));
        }
        rows.push(row);
    }
    let mut columns = vec!["size".to_string()];
    columns.extend(suite_names);
    FigureOutput {
        id: "fig3a",
        title: format!(
            "convergence factor over 20 cycles vs network size (up to N={max_n}), \
             AVERAGE on peak distribution"
        ),
        columns,
        rows,
    }
}

/// Reproduces Figure 3(b): normalized variance reduction over 50 cycles at
/// N = 10⁵ for the topology suite. Values are geometric means over runs
/// (the paper plots on a log axis).
pub fn fig3b(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(10);
    let cycles = 50u32;
    let suite = topology_suite(n);
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (_, overlay) in &suite {
        let config = average_config(n, *overlay, cycles);
        let outcomes = run_many(&config, &seeds(seed, reps));
        let mut geo = Vec::with_capacity(cycles as usize + 1);
        for cycle in 0..=cycles as usize {
            let mean_log: f64 = outcomes
                .iter()
                .map(|o| {
                    let ratio = o.variance[cycle] / o.variance[0];
                    ratio.max(1e-300).ln()
                })
                .sum::<f64>()
                / outcomes.len() as f64;
            geo.push(mean_log.exp());
        }
        series.push(geo);
    }
    let rows = (0..=cycles as usize)
        .map(|cycle| {
            let mut row = vec![cycle as f64];
            row.extend(series.iter().map(|s| s[cycle]));
            row
        })
        .collect();
    let mut columns = vec!["cycle".to_string()];
    columns.extend(suite.into_iter().map(|(l, _)| l));
    FigureOutput {
        id: "fig3b",
        title: format!(
            "variance reduction (normalized to initial variance) over 50 cycles, N={n}, {reps} runs"
        ),
        columns,
        rows,
    }
}

/// Reproduces Figure 4(a): convergence factor vs Watts–Strogatz β.
pub fn fig4a(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(10);
    let k = 20.min(n - 1) & !1;
    let betas: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let mut rows = Vec::new();
    for &beta in &betas {
        let config = average_config(
            n,
            OverlaySpec::Static(TopologyKind::WattsStrogatz { k, beta }),
            20,
        );
        let outcomes = run_many(&config, &seeds(seed, reps));
        let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
        rows.push(vec![
            beta,
            epidemic_common::stats::mean(&factors),
            factors.iter().copied().fold(f64::INFINITY, f64::min),
            factors.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ]);
    }
    FigureOutput {
        id: "fig4a",
        title: format!("convergence factor vs Watts-Strogatz beta, N={n}, k={k}, {reps} runs"),
        columns: ["beta", "factor_mean", "factor_min", "factor_max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Reproduces Figure 4(b): convergence factor vs NEWSCAST view size c.
pub fn fig4b(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(10);
    let cs: Vec<usize> = [2usize, 3, 4, 5, 6, 8, 10, 15, 20, 25, 30, 35, 40, 45, 50]
        .into_iter()
        .filter(|&c| c < n / 2)
        .collect();
    let mut rows = Vec::new();
    for &c in &cs {
        let config = average_config(n, OverlaySpec::Newscast { c }, 20);
        let outcomes = run_many(&config, &seeds(seed, reps));
        let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
        rows.push(vec![
            c as f64,
            epidemic_common::stats::mean(&factors),
            factors.iter().copied().fold(f64::INFINITY, f64::min),
            factors.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ]);
    }
    FigureOutput {
        id: "fig4b",
        title: format!("convergence factor vs NEWSCAST view size c, N={n}, {reps} runs"),
        columns: ["c", "factor_mean", "factor_min", "factor_max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}
