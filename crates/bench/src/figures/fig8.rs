//! Figure 8: robustness through multiple concurrent COUNT instances.
//!
//! Each node gossips an instance map holding `t` concurrent COUNT
//! instances (t pinned leaders); at epoch end it orders its `t` estimates,
//! discards the ⌊t/3⌋ lowest and highest, and averages the rest
//! (Section 7.3). The sweep shows accuracy tightening rapidly with `t`
//! under (a) heavy churn and (b) 20% message loss.

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_common::stats;
use epidemic_sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic_sim::failure::{CommFailure, FailureModel};
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};

const T_GRID: [usize; 14] = [1, 2, 3, 4, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50];

fn multi_count_sweep(
    id: &'static str,
    title: String,
    n: usize,
    reps: usize,
    failure: FailureModel,
    comm: CommFailure,
    seed: u64,
) -> FigureOutput {
    let mut rows = Vec::new();
    for &t in &T_GRID {
        let config = ExperimentConfig {
            scenario: Scenario {
                n,
                overlay: OverlaySpec::Newscast { c: 30.min(n / 2) },
                values: ValueInit::Constant(0.0), // ignored by CountMap
                failure,
                comm,
                ..Scenario::default()
            },
            cycles: 30,
            aggregate: AggregateSetup::CountMap { leaders: t },
        };
        let outcomes = run_many(&config, &seeds(seed, reps));
        let estimates: Vec<f64> = outcomes
            .iter()
            .map(|o| o.mean_final_estimate())
            .filter(|v| v.is_finite())
            .collect();
        rows.push(vec![
            t as f64,
            stats::mean(&estimates),
            estimates.iter().copied().fold(f64::INFINITY, f64::min),
            estimates.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ]);
    }
    FigureOutput {
        id,
        title,
        columns: ["instances", "mean", "min", "max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Reproduces Figure 8(a): multi-instance COUNT under churn (1000 nodes
/// substituted per cycle at N = 10⁵, i.e. 1% per cycle).
pub fn fig8a(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    let per_cycle = ((n as f64) * 0.01).round().max(1.0) as usize;
    multi_count_sweep(
        "fig8a",
        format!(
            "multi-instance COUNT (trimmed mean of t instances) under churn \
             ({per_cycle} substitutions/cycle); N={n}, NEWSCAST c=30, {reps} runs"
        ),
        n,
        reps,
        FailureModel::Churn { per_cycle },
        CommFailure::NONE,
        seed,
    )
}

/// Reproduces Figure 8(b): multi-instance COUNT under 20% message loss.
pub fn fig8b(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    multi_count_sweep(
        "fig8b",
        format!(
            "multi-instance COUNT (trimmed mean of t instances) under 20% message loss; \
             N={n}, NEWSCAST c=30, {reps} runs"
        ),
        n,
        reps,
        FailureModel::None,
        CommFailure::messages(0.2),
        seed,
    )
}
