//! Section 4.5 cost analysis: exchanges per node per cycle.
//!
//! On a sufficiently random overlay, the number of exchanges a node takes
//! part in during one cycle is `1 + φ` with `φ ~ Poisson(1)`: exactly one
//! it initiates plus however many times it is contacted. This experiment
//! tallies participation counts over one cycle of a large network and
//! compares the histogram against the shifted-Poisson prediction.

use crate::{FigureOutput, Scale};
use epidemic_aggregation::rule::Rule;
use epidemic_common::rng::Xoshiro256;
use epidemic_sim::network::{CycleOptions, Network};
use epidemic_topology::CompleteSampler;

/// Reproduces the cost analysis. Columns: exchange count k, observed
/// fraction of nodes, and the `P(1 + Poisson(1) = k)` prediction.
pub fn costs(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let mut net = Network::new(n);
    net.add_scalar_field(Rule::Average, |_| 0.0);
    net.enable_tally();
    let sampler = CompleteSampler::new(n);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Average over several cycles for a smoother histogram.
    let cycles = 5;
    let mut counts = [0usize; 12];
    let mut total = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..cycles {
        net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
        for c in net.take_tally() {
            let c = c as usize;
            if c < counts.len() {
                counts[c] += 1;
            }
            total += 1;
            sum += c as f64;
            sum_sq += (c * c) as f64;
        }
    }
    let mean = sum / total as f64;
    let variance = sum_sq / total as f64 - mean * mean;
    let mut rows = Vec::new();
    for (k, &count) in counts.iter().enumerate() {
        let observed = count as f64 / total as f64;
        // P(1 + Poisson(1) = k) = e^-1 / (k-1)!.
        let predicted = if k == 0 {
            0.0
        } else {
            (-1.0f64).exp() / factorial(k - 1)
        };
        rows.push(vec![k as f64, observed, predicted]);
    }
    FigureOutput {
        id: "costs",
        title: format!(
            "exchanges per node per cycle, N={n}, complete overlay, {cycles} cycles; \
             observed mean {mean:.3} variance {variance:.3} (theory: 2.0, 1.0)"
        ),
        columns: ["exchanges", "observed", "poisson_prediction"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

fn factorial(k: usize) -> f64 {
    (1..=k).map(|i| i as f64).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
    }

    #[test]
    fn histogram_matches_shifted_poisson() {
        let fig = costs(Scale::new(0.2), 3);
        // k=0 never occurs; k=1 (no passive contacts) should be near 1/e.
        assert_eq!(fig.rows[0][1], 0.0);
        let observed_k1 = fig.rows[1][1];
        assert!(
            (observed_k1 - 0.3679).abs() < 0.02,
            "P(k=1) = {observed_k1}"
        );
        // Observed tracks prediction across the bulk.
        for row in &fig.rows[1..6] {
            assert!((row[1] - row[2]).abs() < 0.02, "row {row:?}");
        }
    }
}
