//! Ablations beyond the paper's figures.
//!
//! * [`ablation_pushpull`] — push-pull averaging vs the push-sum baseline
//!   of Kempe et al. (the paper's Section 8 comparison, quantified):
//!   variance-reduction curves under identical cycle budgets.
//! * [`ablation_sync`] — epidemic epoch synchronization (Section 4.3) on
//!   vs off in the event-driven simulator with drifting clocks: the epoch
//!   entry spread T_j stays bounded with the mechanism and widens without
//!   it.
//! * [`ablation_event`] — the event-driven engine run over the same
//!   scenario family Figures 4 and 7 use for the cycle engine (overlay
//!   sweep × message loss), checking that the practical protocol's
//!   accuracy survives asynchrony, delay, drift, and loss.
//! * [`ablation_membership`] — idealized vs gossiped NEWSCAST membership
//!   in the event engine under churn and message loss: how much accuracy
//!   the real partial views cost relative to uniform live-set sampling,
//!   and the view-exchange traffic the idealization hides.

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_aggregation::baseline::{PushSumShare, PushSumState};
use epidemic_aggregation::rule::Rule;
use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats::OnlineStats;
use epidemic_sim::event::{run_many as run_many_events, EventConfig, MembershipModel};
use epidemic_sim::failure::{CommFailure, FailureModel};
use epidemic_sim::network::{CycleOptions, Network};
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};
use epidemic_topology::{CompleteSampler, TopologyKind};

/// Compares push-pull and push-sum variance reduction on the same peak
/// workload. Columns: cycle, normalized variance for each protocol.
pub fn ablation_pushpull(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(10_000);
    let cycles = 20usize;
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // Push-pull over the cycle kernel.
    let mut net = Network::new(n);
    let field = net.add_scalar_field(Rule::Average, |i| if i == 0 { n as f64 } else { 0.0 });
    let sampler = CompleteSampler::new(n);
    let mut pushpull = vec![net.scalar_summary(field).variance];
    for _ in 0..cycles {
        net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
        pushpull.push(net.scalar_summary(field).variance);
    }

    // Push-sum: one push per node per cycle, random permutation order.
    let mut nodes: Vec<PushSumState> = (0..n)
        .map(|i| PushSumState::new(if i == 0 { n as f64 } else { 0.0 }))
        .collect();
    let estimate_variance = |nodes: &[PushSumState]| -> f64 {
        let stats: OnlineStats = nodes.iter().filter_map(PushSumState::estimate).collect();
        stats.variance()
    };
    let mut pushsum = vec![estimate_variance(&nodes)];
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..cycles {
        rng.shuffle(&mut order);
        for &i in &order {
            let i = i as usize;
            let share: PushSumShare = nodes[i].emit_half();
            let raw = rng.index(n - 1);
            let target = if raw >= i { raw + 1 } else { raw };
            nodes[target].absorb(share);
        }
        pushsum.push(estimate_variance(&nodes));
    }

    let rows = (0..=cycles)
        .map(|c| vec![c as f64, pushpull[c] / pushpull[0], pushsum[c] / pushsum[0]])
        .collect();
    let pp_factor = (pushpull[cycles] / pushpull[0]).powf(1.0 / cycles as f64);
    let ps_factor = (pushsum[cycles] / pushsum[0]).powf(1.0 / cycles as f64);
    FigureOutput {
        id: "ablation-pushpull",
        title: format!(
            "push-pull vs push-sum variance reduction, N={n}, complete overlay; \
             measured factors: push-pull {pp_factor:.3}, push-sum {ps_factor:.3}"
        ),
        columns: ["cycle", "pushpull_norm_var", "pushsum_norm_var"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Measures the epoch entry spread T_j with epoch synchronization on and
/// off, under ±2% clock drift. Columns: epoch, spread in ticks (on/off).
pub fn ablation_sync(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(300).min(1_000);
    let gamma = 10u32;
    let cycle_len = 1_000u64;
    let epochs_to_watch = 8u64;
    let duration = cycle_len * u64::from(gamma) * (epochs_to_watch + 4);
    let run_with = |sync: bool| {
        let node = NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(cycle_len)
            .timeout(200)
            .instance(InstanceSpec::AVERAGE)
            .epoch_sync(sync)
            .build()
            .expect("valid config");
        EventConfig {
            scenario: Scenario {
                n,
                values: ValueInit::Linear,
                ..Scenario::default()
            },
            node,
            delay: (10, 50),
            drift: 0.02,
            duration,
            ..EventConfig::default()
        }
        .run(seed)
    };
    let with_sync = run_with(true);
    let without_sync = run_with(false);
    let mut rows = Vec::new();
    for epoch in 1..=epochs_to_watch {
        let on = with_sync.epoch_spread(epoch);
        let off = without_sync.epoch_spread(epoch);
        if let (Some(on), Some(off)) = (on, off) {
            rows.push(vec![epoch as f64, on as f64, off as f64]);
        }
    }
    FigureOutput {
        id: "ablation-sync",
        title: format!(
            "epoch entry spread T_j (ticks) with/without epidemic epoch sync; \
             n={n}, gamma={gamma}, cycle={cycle_len} ticks, drift ±2%"
        ),
        columns: ["epoch", "spread_sync_on", "spread_sync_off"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Runs the event-driven engine over the overlay family of Figure 4 and
/// the message-loss sweep of Figure 7(b) — the same `Scenario` values the
/// cycle engine consumes — and reports the epoch-0 AVERAGE estimate error
/// plus the epoch-1 entry spread. Columns per overlay: relative error of
/// the mean reported estimate, entry spread in ticks.
pub fn ablation_event(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(10_000).min(20_000);
    let reps = scale.reps(10);
    let losses = [0.0f64, 0.1, 0.2, 0.4];
    let overlays: [(&str, OverlaySpec); 3] = [
        ("complete", OverlaySpec::Complete),
        (
            "random20",
            OverlaySpec::Static(TopologyKind::Random { k: 20.min(n - 1) }),
        ),
        ("newscast", OverlaySpec::Newscast { c: 30.min(n / 2) }),
    ];
    let node = NodeConfig::builder()
        .gamma(20)
        .cycle_length(1_000)
        .timeout(200)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .expect("valid config");
    let truth = 1.0; // peak of n over n nodes
    let mut rows = Vec::new();
    for &loss in &losses {
        let mut row = vec![loss];
        for (_, overlay) in overlays {
            let config = EventConfig {
                scenario: Scenario {
                    n,
                    overlay,
                    values: ValueInit::Peak { total: n as f64 },
                    comm: CommFailure::messages(loss),
                    ..Scenario::default()
                },
                node: node.clone(),
                delay: (10, 50),
                drift: 0.02,
                duration: 30_000,
                ..EventConfig::default()
            };
            let outcomes = run_many_events(&config, &seeds(seed, reps));
            let errors: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.mean_epoch_estimate(0))
                .map(|est| (est - truth).abs() / truth)
                .collect();
            let spreads: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.epoch_spread(1))
                .map(|s| s as f64)
                .collect();
            row.push(epidemic_common::stats::mean(&errors));
            row.push(epidemic_common::stats::mean(&spreads));
        }
        rows.push(row);
    }
    let mut columns = vec!["loss".to_string()];
    for (label, _) in overlays {
        columns.push(format!("{label}_err"));
        columns.push(format!("{label}_spread"));
    }
    FigureOutput {
        id: "ablation-event",
        title: format!(
            "event-driven engine on the Fig. 4/7 scenario family: epoch-0 AVERAGE \
             relative error and epoch-1 entry spread (ticks) vs message loss; \
             N={n}, gamma=20, delay 10-50 ticks, drift ±2%, {reps} runs"
        ),
        columns,
        rows,
    }
}

/// Compares the event engine's two NEWSCAST realizations — idealized
/// live-set sampling vs gossiped per-node views — on a churned, lossy
/// scenario. Columns: message loss, epoch-0 relative error under each
/// model, and the membership traffic (view messages per aggregation
/// message) that only the gossiped model pays.
pub fn ablation_membership(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(10_000).min(20_000);
    let reps = scale.reps(10);
    let losses = [0.0f64, 0.1, 0.2, 0.4];
    let churn = (n / 100).max(1);
    let node = NodeConfig::builder()
        .gamma(20)
        .cycle_length(1_000)
        .timeout(200)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .expect("valid config");
    // Uniform values rather than the peak: under churn the peak holder
    // crashes in ~20% of runs and the resulting estimate lottery would
    // drown the membership-model difference this ablation is after
    // (stale views, timeout exchanges, sampling skew). The peak × overlay
    // interaction is covered by `ablation_event`.
    let truth = 1.0;
    let mut rows = Vec::new();
    for &loss in &losses {
        let mut row = vec![loss];
        let mut overhead = 0.0;
        let mut byte_overhead = 0.0;
        for membership in [MembershipModel::Idealized, MembershipModel::Gossip] {
            let config = EventConfig {
                scenario: Scenario {
                    n,
                    overlay: OverlaySpec::Newscast { c: 30.min(n / 2) },
                    values: ValueInit::Uniform { lo: 0.0, hi: 2.0 },
                    failure: FailureModel::Churn { per_cycle: churn },
                    comm: CommFailure::messages(loss),
                    joiner_value: 1.0,
                    ..Scenario::default()
                },
                node: node.clone(),
                delay: (10, 50),
                drift: 0.02,
                duration: 30_000,
                membership,
                ..EventConfig::default()
            };
            let outcomes = run_many_events(&config, &seeds(seed, reps));
            let errors: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.mean_epoch_estimate(0))
                .map(|est| (est - truth).abs() / truth)
                .collect();
            row.push(epidemic_common::stats::mean(&errors));
            if membership == MembershipModel::Gossip {
                let ratios: Vec<f64> = outcomes
                    .iter()
                    .filter(|o| o.messages_sent > 0)
                    .map(|o| o.view_messages_sent as f64 / o.messages_sent as f64)
                    .collect();
                overhead = epidemic_common::stats::mean(&ratios);
                // The same overhead in wire bytes (codec-priced): what the
                // bandwidth model actually charges per aggregation message.
                let byte_ratios: Vec<f64> = outcomes
                    .iter()
                    .filter(|o| o.messages_sent > 0)
                    .map(|o| o.view_bytes_sent as f64 / o.messages_sent as f64)
                    .collect();
                byte_overhead = epidemic_common::stats::mean(&byte_ratios);
            }
        }
        row.push(overhead);
        row.push(byte_overhead);
        rows.push(row);
    }
    FigureOutput {
        id: "ablation-membership",
        title: format!(
            "idealized vs gossiped NEWSCAST membership in the event engine: \
             epoch-0 AVERAGE relative error (uniform values, truth 1.0) and \
             view-message overhead vs message loss; N={n}, c=30, churn \
             {churn}/cycle, gamma=20, delay 10-50 ticks, drift ±2%, {reps} runs"
        ),
        columns: [
            "loss",
            "idealized_err",
            "gossiped_err",
            "view_msgs_per_agg_msg",
            "view_bytes_per_agg_msg",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushpull_beats_pushsum() {
        let fig = ablation_pushpull(Scale::new(0.05), 5);
        let last = fig.rows.last().unwrap();
        assert!(
            last[1] < last[2],
            "push-pull should reduce variance faster: {last:?}"
        );
    }

    #[test]
    fn event_ablation_stays_accurate() {
        let fig = ablation_event(Scale::new(0.01), 11);
        assert_eq!(fig.rows.len(), 4);
        // Lossless row: every overlay's epoch estimate lands near truth
        // (at this smoke scale n=100, so a few percent of noise remains).
        let clean = &fig.rows[0];
        for err in [clean[1], clean[3], clean[5]] {
            assert!(err < 0.1, "lossless error {err} too high: {clean:?}");
        }
        // 40% loss degrades but does not destroy the estimate. The
        // NEWSCAST column (lossy[5]) gets a wider band: membership is now
        // gossiped for real, so at this smoke scale (n=100, 3 runs) the
        // view exchanges suffer the same 40% loss and the peak estimate
        // scatters well beyond the static overlays.
        let lossy = fig.rows.last().unwrap();
        for err in [lossy[1], lossy[3]] {
            assert!(err < 0.5, "lossy error {err} out of band: {lossy:?}");
        }
        assert!(
            lossy[5] < 1.0,
            "lossy newscast error {} out of band: {lossy:?}",
            lossy[5]
        );
    }

    #[test]
    fn membership_ablation_compares_models() {
        let fig = ablation_membership(Scale::new(0.01), 13);
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            // Both models stay in a sane error band (uniform values keep
            // the truth at 1.0 whatever churns), and the gossiped model
            // really pays membership traffic.
            assert!(row[1] < 0.25, "idealized error out of band: {row:?}");
            assert!(row[2] < 0.25, "gossiped error out of band: {row:?}");
            assert!(row[3] > 0.0, "no view traffic recorded: {row:?}");
        }
    }

    #[test]
    fn sync_bounds_spread() {
        let fig = ablation_sync(Scale::new(0.3), 9);
        assert!(!fig.rows.is_empty());
        // By the last watched epoch, the unsynchronized spread exceeds the
        // synchronized one.
        let last = fig.rows.last().unwrap();
        assert!(
            last[2] > last[1],
            "expected wider spread without sync: {last:?}"
        );
    }
}
