//! One function per reproduced figure.
//!
//! Conventions shared by all figures:
//!
//! * Experiments are deterministic: figure `f` at seed `s` always produces
//!   the same table. Repetition `i` uses seed `base + i`.
//! * Network sizes and repetition counts follow the paper at
//!   [`crate::Scale::FULL`] and shrink proportionally below.
//! * Output is a [`FigureOutput`][crate::FigureOutput] table whose columns
//!   mirror the axes/series of the original plot.

mod ablation;
mod costs;
mod fig2;
mod fig34;
mod fig5;
mod fig67;
mod fig8;

pub use ablation::{ablation_event, ablation_membership, ablation_pushpull, ablation_sync};
pub use costs::costs;
pub use fig2::fig2;
pub use fig34::{fig3a, fig3b, fig4a, fig4b};
pub use fig5::fig5;
pub use fig67::{fig6a, fig6b, fig7a, fig7b};
pub use fig8::{fig8a, fig8b};

use crate::{FigureOutput, Scale};

pub(crate) fn seeds(base: u64, reps: usize) -> Vec<u64> {
    (0..reps as u64).map(|i| base.wrapping_add(i)).collect()
}

/// All figure ids in presentation order.
pub const ALL: &[&str] = &[
    "fig2",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "costs",
    "ablation-pushpull",
    "ablation-sync",
    "ablation-event",
    "ablation-membership",
];

/// Runs a figure by id.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates ids first).
pub fn run(id: &str, scale: Scale, seed: u64) -> FigureOutput {
    match id {
        "fig2" => fig2(scale, seed),
        "fig3a" => fig3a(scale, seed),
        "fig3b" => fig3b(scale, seed),
        "fig4a" => fig4a(scale, seed),
        "fig4b" => fig4b(scale, seed),
        "fig5" => fig5(scale, seed),
        "fig6a" => fig6a(scale, seed),
        "fig6b" => fig6b(scale, seed),
        "fig7a" => fig7a(scale, seed),
        "fig7b" => fig7b(scale, seed),
        "fig8a" => fig8a(scale, seed),
        "fig8b" => fig8b(scale, seed),
        "costs" => costs(scale, seed),
        "ablation-pushpull" => ablation_pushpull(scale, seed),
        "ablation-sync" => ablation_sync(scale, seed),
        "ablation-event" => ablation_event(scale, seed),
        "ablation-membership" => ablation_membership(scale, seed),
        other => panic!("unknown figure id {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_dispatch() {
        // Smoke-run every figure at minimal scale; asserts shape only.
        let scale = Scale::new(0.002);
        for id in ALL {
            let fig = run(id, scale, 7);
            assert!(!fig.rows.is_empty(), "{id} produced no rows");
            for row in &fig.rows {
                assert_eq!(row.len(), fig.columns.len(), "{id} ragged row");
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_id_panics() {
        run("figX", Scale::FULL, 0);
    }
}
