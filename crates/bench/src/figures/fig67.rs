//! Figures 6 and 7: COUNT under node and communication failures.
//!
//! All four experiments run the COUNT protocol (single-leader peak
//! instance) over a NEWSCAST overlay with c = 30, as in Section 7:
//!
//! * Fig. 6(a): 50% of nodes crash suddenly at cycle x of a 30-cycle
//!   epoch; reported size vs x.
//! * Fig. 6(b): constant-size churn — k nodes substituted every cycle.
//! * Fig. 7(a): convergence factor vs link failure probability P_d, with
//!   the theoretical bound e^(P_d − 1).
//! * Fig. 7(b): reported size (per-run min/max over nodes) vs message loss.

use super::seeds;
use crate::{FigureOutput, Scale};
use epidemic_aggregation::theory;
use epidemic_common::stats;
use epidemic_sim::experiment::{run_many, AggregateSetup, ExperimentConfig};
use epidemic_sim::failure::{CommFailure, FailureModel};
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn count_config(n: usize) -> ExperimentConfig {
    ExperimentConfig {
        scenario: Scenario {
            n,
            overlay: OverlaySpec::Newscast { c: 30.min(n / 2) },
            values: ValueInit::Constant(0.0), // ignored by CountPeak
            ..Scenario::default()
        },
        cycles: 30,
        aggregate: AggregateSetup::CountPeak,
    }
}

/// Summary of per-run mean size estimates: finite mean/min/max plus the
/// number of runs whose estimate diverged to infinity (possible when every
/// holder of instance mass crashed).
fn estimate_stats(values: &[f64]) -> (f64, f64, f64, usize) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let infinite = values.len() - finite.len();
    if finite.is_empty() {
        return (f64::INFINITY, f64::INFINITY, f64::INFINITY, infinite);
    }
    (
        stats::mean(&finite),
        finite.iter().copied().fold(f64::INFINITY, f64::min),
        finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        infinite,
    )
}

/// Reproduces Figure 6(a): sudden death of 50% of the network at cycle x.
pub fn fig6a(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    let mut rows = Vec::new();
    for crash_cycle in 0..=20u32 {
        let mut config = count_config(n);
        config.scenario.failure = FailureModel::SuddenDeath {
            fraction: 0.5,
            at_cycle: crash_cycle,
        };
        let outcomes = run_many(&config, &seeds(seed, reps));
        let estimates: Vec<f64> = outcomes.iter().map(|o| o.mean_final_estimate()).collect();
        let (mean, min, max, infinite) = estimate_stats(&estimates);
        rows.push(vec![crash_cycle as f64, mean, min, max, infinite as f64]);
    }
    FigureOutput {
        id: "fig6a",
        title: format!(
            "COUNT size estimate when 50% of nodes crash at cycle x; N={n}, NEWSCAST c=30, \
             30-cycle epoch, {reps} runs (true value at epoch start: {n})"
        ),
        columns: ["crash_cycle", "mean", "min", "max", "infinite_runs"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Reproduces Figure 6(b): continuous churn at constant network size.
pub fn fig6b(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    // The paper sweeps 0..2500 substitutions per cycle at N = 1e5, i.e.
    // 0..2.5% of the network per cycle.
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 * 0.0025).collect();
    let mut rows = Vec::new();
    for &frac in &fractions {
        let per_cycle = (frac * n as f64).round() as usize;
        let mut config = count_config(n);
        config.scenario.failure = if per_cycle > 0 {
            FailureModel::Churn { per_cycle }
        } else {
            FailureModel::None
        };
        let outcomes = run_many(&config, &seeds(seed, reps));
        let estimates: Vec<f64> = outcomes.iter().map(|o| o.mean_final_estimate()).collect();
        let (mean, min, max, infinite) = estimate_stats(&estimates);
        rows.push(vec![per_cycle as f64, mean, min, max, infinite as f64]);
    }
    FigureOutput {
        id: "fig6b",
        title: format!(
            "COUNT size estimate under churn (k nodes substituted per cycle); N={n}, \
             NEWSCAST c=30, 30-cycle epoch, {reps} runs"
        ),
        columns: ["subs_per_cycle", "mean", "min", "max", "infinite_runs"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Reproduces Figure 7(a): convergence factor vs link failure probability,
/// against the bound ρ_d = e^(P_d − 1) of Eq. (5).
pub fn fig7a(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(20);
    let pds: Vec<f64> = (0..=9)
        .map(|i| i as f64 * 0.1)
        .chain(std::iter::once(0.95))
        .collect();
    let mut rows = Vec::new();
    for &p_d in &pds {
        let mut config = count_config(n);
        config.scenario.comm = CommFailure::links(p_d);
        config.cycles = 20;
        let outcomes = run_many(&config, &seeds(seed, reps));
        let factors: Vec<f64> = outcomes.iter().map(|o| o.convergence_factor(20)).collect();
        rows.push(vec![
            p_d,
            stats::mean(&factors),
            factors.iter().copied().fold(f64::INFINITY, f64::min),
            factors.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            theory::link_failure_rho_bound(p_d),
        ]);
    }
    FigureOutput {
        id: "fig7a",
        title: format!(
            "COUNT convergence factor vs link failure P_d; N={n}, NEWSCAST c=30, {reps} runs; \
             bound = e^(P_d - 1)"
        ),
        columns: ["pd", "factor_mean", "factor_min", "factor_max", "bound"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}

/// Reproduces Figure 7(b): reported network size vs message loss. Per run,
/// the minimum and maximum node estimates are recorded; the table reports
/// their across-run averages and extremes.
pub fn fig7b(scale: Scale, seed: u64) -> FigureOutput {
    let n = scale.n(100_000);
    let reps = scale.reps(50);
    let losses: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    let mut rows = Vec::new();
    for &loss in &losses {
        let mut config = count_config(n);
        config.scenario.comm = CommFailure::messages(loss);
        let outcomes = run_many(&config, &seeds(seed, reps));
        let mut run_mins = Vec::with_capacity(reps);
        let mut run_maxs = Vec::with_capacity(reps);
        for o in &outcomes {
            let finite: Vec<f64> = o
                .final_estimates
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if finite.is_empty() {
                continue;
            }
            run_mins.push(finite.iter().copied().fold(f64::INFINITY, f64::min));
            run_maxs.push(finite.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
        rows.push(vec![
            loss,
            stats::mean(&run_mins),
            stats::mean(&run_maxs),
            run_mins.iter().copied().fold(f64::INFINITY, f64::min),
            run_maxs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        ]);
    }
    FigureOutput {
        id: "fig7b",
        title: format!(
            "COUNT size estimates vs message loss; N={n}, NEWSCAST c=30, 30-cycle epoch, \
             {reps} runs; per-run min/max over nodes"
        ),
        columns: ["loss", "avg_min", "avg_max", "global_min", "global_max"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        rows,
    }
}
