//! Reproduction harness for the DSN 2004 evaluation.
//!
//! Every figure of the paper's evaluation maps to one function in
//! [`figures`], returning a [`FigureOutput`] table that the `repro` binary
//! prints and writes as CSV. The [`Scale`] knob shrinks network sizes and
//! repetition counts proportionally so the whole suite can run quickly;
//! `Scale::FULL` reproduces the paper's parameters (N = 10⁵, 50 runs).
//!
//! | id | paper figure | function |
//! |----|--------------|----------|
//! | `fig2` | Fig. 2 | [`figures::fig2`] |
//! | `fig3a` | Fig. 3(a) | [`figures::fig3a`] |
//! | `fig3b` | Fig. 3(b) | [`figures::fig3b`] |
//! | `fig4a` | Fig. 4(a) | [`figures::fig4a`] |
//! | `fig4b` | Fig. 4(b) | [`figures::fig4b`] |
//! | `fig5` | Fig. 5 | [`figures::fig5`] |
//! | `fig6a` | Fig. 6(a) | [`figures::fig6a`] |
//! | `fig6b` | Fig. 6(b) | [`figures::fig6b`] |
//! | `fig7a` | Fig. 7(a) | [`figures::fig7a`] |
//! | `fig7b` | Fig. 7(b) | [`figures::fig7b`] |
//! | `fig8a` | Fig. 8(a) | [`figures::fig8a`] |
//! | `fig8b` | Fig. 8(b) | [`figures::fig8b`] |
//! | `costs` | Sec. 4.5 | [`figures::costs`] |
//! | `ablation-pushpull` | — | [`figures::ablation_pushpull`] |
//! | `ablation-sync` | — | [`figures::ablation_sync`] |
//! | `ablation-event` | — | [`figures::ablation_event`] |

#![warn(missing_docs)]

pub mod demand;
pub mod figures;

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Scales experiment sizes relative to the paper's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(f64);

impl Scale {
    /// The paper's full parameters (N = 10⁵ etc.).
    pub const FULL: Scale = Scale(1.0);

    /// Creates a scale factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn new(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "scale must be in (0, 1]");
        Scale(factor)
    }

    /// Raw factor.
    pub fn factor(self) -> f64 {
        self.0
    }

    /// Scaled network size (at least 100 nodes).
    pub fn n(self, paper_n: usize) -> usize {
        ((paper_n as f64 * self.0) as usize).max(100)
    }

    /// Scaled repetition count (at least 3; shrinks with √scale so small
    /// scales keep statistical meaning).
    pub fn reps(self, paper_reps: usize) -> usize {
        ((paper_reps as f64 * self.0.sqrt()).round() as usize).max(3)
    }
}

/// One reproduced table/figure: a column header plus numeric rows.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Stable identifier (`fig2`, `fig7a`, ...).
    pub id: &'static str,
    /// Human-readable description, including the parameters actually used.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows, one value per column.
    pub rows: Vec<Vec<f64>>,
}

impl FigureOutput {
    /// Renders the table with aligned columns.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(12)).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format_value(*v)).collect())
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        for (i, col) in self.columns.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", col, width = widths[i]);
        }
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`. Returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        let mut body = String::new();
        let _ = writeln!(body, "# {}", self.title);
        let _ = writeln!(body, "{}", self.columns.join(","));
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v:e}")).collect();
            let _ = writeln!(body, "{}", line.join(","));
        }
        std::fs::write(&path, body)?;
        Ok(path)
    }
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.4e}")
    } else if (v - v.round()).abs() < 1e-9 && v.abs() < 1e9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_bounds() {
        assert_eq!(Scale::FULL.n(100_000), 100_000);
        assert_eq!(Scale::new(0.001).n(100_000), 100);
        assert_eq!(Scale::FULL.reps(50), 50);
        assert!(Scale::new(0.01).reps(50) >= 3);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn scale_rejects_zero() {
        Scale::new(0.0);
    }

    #[test]
    fn figure_output_renders() {
        let fig = FigureOutput {
            id: "demo",
            title: "demo figure".to_string(),
            columns: vec!["x".to_string(), "y".to_string()],
            rows: vec![vec![1.0, 0.5], vec![2.0, 1e-9]],
        };
        let table = fig.to_table();
        assert!(table.contains("demo figure"));
        assert!(table.contains("1.0000e-9"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let fig = FigureOutput {
            id: "csvtest",
            title: "t".to_string(),
            columns: vec!["a".to_string()],
            rows: vec![vec![3.5]],
        };
        let dir = std::env::temp_dir().join("epidemic-bench-test");
        let path = fig.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("3.5e0"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(f64::NAN), "nan");
        assert_eq!(format_value(f64::INFINITY), "inf");
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.25), "0.2500");
        assert_eq!(format_value(1.5e-7), "1.5000e-7");
    }
}
