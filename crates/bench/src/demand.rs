//! Closed-loop demand generation for the multi-tenant query plane.
//!
//! The `query_throughput` bench needs realistic multi-tenant load: a few
//! hot queries taking most of the traffic and a long tail of cold ones
//! (Zipf popularity), with arrivals clumping into bursts rather than a
//! steady drip (a Poisson process whose arrivals each carry a
//! Poisson-sized batch of submits). This module generates that schedule
//! deterministically — same seed, same demand, so A/B runs compare the
//! runtime and not the workload.
//!
//! The generator is *closed-loop* in the usual benchmarking sense: it
//! produces the next burst only when asked, so a driver that submits a
//! burst and waits for the responses before pulling the next one never
//! builds an unbounded backlog. Open-loop replay is the degenerate case
//! of pulling without waiting.

use epidemic_common::rng::Xoshiro256;

/// Demand-shape knobs for one generator.
#[derive(Debug, Clone, Copy)]
pub struct DemandConfig {
    /// Number of named queries (tenants) demand is spread over.
    pub queries: usize,
    /// Zipf skew exponent `s`: popularity of the rank-`k` query is
    /// proportional to `1 / k^s`. `0.0` is uniform; `~1.0` is the
    /// classic web-like skew.
    pub zipf_s: f64,
    /// Mean milliseconds between bursts (exponential inter-arrival, so
    /// arrivals form a Poisson process).
    pub mean_interarrival_ms: f64,
    /// Mean submits per burst (Poisson-distributed, minimum 1).
    pub mean_burst: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            queries: 8,
            zipf_s: 1.0,
            mean_interarrival_ms: 10.0,
            mean_burst: 4.0,
        }
    }
}

/// One burst of demand: `size` submits against one query, arriving
/// `gap_ms` after the previous burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Absolute arrival time in ms (sum of the gaps so far).
    pub at_ms: f64,
    /// Milliseconds since the previous burst.
    pub gap_ms: f64,
    /// Popularity rank of the targeted query: `0` is the hottest.
    pub query: usize,
    /// Number of submits in this burst (≥ 1).
    pub size: usize,
}

/// Deterministic Zipf-over-Poisson demand schedule.
#[derive(Debug, Clone)]
pub struct DemandGenerator {
    config: DemandConfig,
    /// Cumulative Zipf distribution over query ranks; last entry is 1.
    cdf: Vec<f64>,
    rng: Xoshiro256,
    clock_ms: f64,
}

impl DemandGenerator {
    /// Creates a generator; the whole schedule is a pure function of
    /// `(config, seed)`.
    ///
    /// # Panics
    ///
    /// Panics when `queries` is zero or a rate/mean knob is not a
    /// positive finite number.
    pub fn new(config: DemandConfig, seed: u64) -> Self {
        assert!(config.queries > 0, "demand needs at least one query");
        assert!(
            config.mean_interarrival_ms > 0.0 && config.mean_interarrival_ms.is_finite(),
            "mean_interarrival_ms must be positive and finite"
        );
        assert!(
            config.mean_burst > 0.0 && config.mean_burst.is_finite(),
            "mean_burst must be positive and finite"
        );
        assert!(
            config.zipf_s >= 0.0 && config.zipf_s.is_finite(),
            "zipf_s must be non-negative and finite"
        );
        let mut cdf = Vec::with_capacity(config.queries);
        let mut total = 0.0;
        for rank in 1..=config.queries {
            total += 1.0 / (rank as f64).powf(config.zipf_s);
            cdf.push(total);
        }
        for entry in &mut cdf {
            *entry /= total;
        }
        DemandGenerator {
            config,
            cdf,
            rng: Xoshiro256::seed_from_u64(seed),
            clock_ms: 0.0,
        }
    }

    /// The configured shape.
    pub fn config(&self) -> &DemandConfig {
        &self.config
    }

    /// Draws the next burst and advances the arrival clock.
    pub fn next_burst(&mut self) -> Burst {
        let gap_ms = self.next_exponential(self.config.mean_interarrival_ms);
        self.clock_ms += gap_ms;
        let query = self.next_zipf_rank();
        let size = self.next_poisson(self.config.mean_burst).max(1);
        Burst {
            at_ms: self.clock_ms,
            gap_ms,
            query,
            size,
        }
    }

    /// Zipf-distributed popularity rank in `0..queries` via inverse CDF.
    fn next_zipf_rank(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }

    /// Exponential variate with the given mean (inverse transform;
    /// `1 - u` keeps `ln` away from zero).
    fn next_exponential(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.rng.next_f64()).ln()
    }

    /// Poisson variate via Knuth's product-of-uniforms method — fine for
    /// the single-digit means bursts use.
    fn next_poisson(&mut self, mean: f64) -> usize {
        let floor = (-mean).exp();
        let mut k = 0usize;
        let mut product = 1.0;
        loop {
            product *= self.rng.next_f64();
            if product <= floor {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(config: DemandConfig, seed: u64, bursts: usize) -> Vec<Burst> {
        let mut generator = DemandGenerator::new(config, seed);
        (0..bursts).map(|_| generator.next_burst()).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = schedule(DemandConfig::default(), 7, 500);
        let b = schedule(DemandConfig::default(), 7, 500);
        assert_eq!(a, b);
        let c = schedule(DemandConfig::default(), 8, 500);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn zipf_popularity_is_rank_ordered() {
        let config = DemandConfig {
            queries: 6,
            zipf_s: 1.0,
            ..DemandConfig::default()
        };
        let mut hits = vec![0usize; config.queries];
        for burst in schedule(config, 42, 20_000) {
            hits[burst.query] += 1;
        }
        // Rank k's share is ∝ 1/k: each rank must be strictly hotter
        // than the next at 20k draws, and rank 0 near its 1/H_6 ≈ 0.41
        // share.
        for pair in hits.windows(2) {
            assert!(pair[0] > pair[1], "popularity not rank-ordered: {hits:?}");
        }
        let share = hits[0] as f64 / 20_000.0;
        assert!((share - 0.41).abs() < 0.03, "hot-query share {share}");
    }

    #[test]
    fn uniform_skew_spreads_demand_evenly() {
        let config = DemandConfig {
            queries: 4,
            zipf_s: 0.0,
            ..DemandConfig::default()
        };
        let mut hits = vec![0usize; config.queries];
        for burst in schedule(config, 3, 20_000) {
            hits[burst.query] += 1;
        }
        for &h in &hits {
            let share = h as f64 / 20_000.0;
            assert!(
                (share - 0.25).abs() < 0.02,
                "uneven uniform demand: {hits:?}"
            );
        }
    }

    #[test]
    fn interarrival_and_burst_means_match_config() {
        let config = DemandConfig {
            mean_interarrival_ms: 25.0,
            mean_burst: 4.0,
            ..DemandConfig::default()
        };
        let bursts = schedule(config, 11, 20_000);
        let mean_gap = bursts.iter().map(|b| b.gap_ms).sum::<f64>() / bursts.len() as f64;
        assert!((mean_gap - 25.0).abs() < 1.0, "mean gap {mean_gap}");
        let mean_size = bursts.iter().map(|b| b.size as f64).sum::<f64>() / bursts.len() as f64;
        // E[max(Poisson(4), 1)] is a hair above 4.
        assert!((mean_size - 4.0).abs() < 0.15, "mean burst {mean_size}");
        assert!(bursts.iter().all(|b| b.size >= 1));
        // The arrival clock is the running sum of the gaps.
        let mut clock = 0.0;
        for burst in &bursts {
            clock += burst.gap_ms;
            assert!((burst.at_ms - clock).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn rejects_zero_queries() {
        DemandGenerator::new(
            DemandConfig {
                queries: 0,
                ..DemandConfig::default()
            },
            0,
        );
    }
}
