//! Micro-benchmarks of the NEWSCAST membership substrate: view merges and
//! whole-overlay cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_common::rng::Xoshiro256;
use epidemic_newscast::{Descriptor, Overlay, View};
use std::hint::black_box;

fn bench_view_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_merge");
    for cap in [10usize, 20, 30, 50] {
        let mut view = View::new(cap);
        for i in 0..cap {
            view.insert(Descriptor::new(i as u32, i as u32));
        }
        let received: Vec<Descriptor> = (0..=cap)
            .map(|i| Descriptor::new((cap + i) as u32, (2 * i) as u32))
            .collect();
        group.throughput(Throughput::Elements(cap as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |bencher, _| {
            bencher.iter_batched(
                || view.clone(),
                |mut v| {
                    v.merge_with(black_box(&received), 9999);
                    v
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_overlay_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_cycle");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("c30", n), &n, |bencher, &n| {
            bencher.iter_batched(
                || {
                    let mut rng = Xoshiro256::seed_from_u64(7);
                    (Overlay::random_init(n, 30, &mut rng), rng)
                },
                |(mut overlay, mut rng)| {
                    overlay.run_cycle(1, &mut rng);
                    overlay
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_sample_distinct(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_distinct");
    // Sparse draw: one NEWSCAST view init (c=30 peers from n=100k).
    group.throughput(Throughput::Elements(30));
    group.bench_function("sparse_30_of_100k", |b| {
        let mut rng = Xoshiro256::seed_from_u64(11);
        b.iter(|| rng.sample_distinct(100_000, 30));
    });
    // Dense draw: a 50% crash-wave victim selection.
    group.throughput(Throughput::Elements(25_000));
    group.bench_function("dense_25k_of_50k", |b| {
        let mut rng = Xoshiro256::seed_from_u64(12);
        b.iter(|| rng.sample_distinct(50_000, 25_000));
    });
    // Whole-overlay bootstrap: n sparse draws back to back.
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("overlay_init_10k_c30", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(13);
            Overlay::random_init(10_000, 30, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_view_merge,
    bench_overlay_cycle,
    bench_sample_distinct
);
criterion_main!(benches);
