//! Micro-benchmarks of the exchange kernel: scalar merges, instance-map
//! merges, and full simulation cycles at several network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::rule::{Rule, UpdateRule};
use epidemic_aggregation::value::InstanceMap;
use epidemic_common::rng::Xoshiro256;
use epidemic_sim::network::{CycleOptions, Network};
use epidemic_topology::CompleteSampler;
use std::hint::black_box;

fn bench_scalar_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar_merge");
    for rule in [Rule::Average, Rule::Min, Rule::Max, Rule::GeometricMean] {
        group.bench_function(format!("{rule}"), |b| {
            let mut x = 1.0f64;
            b.iter(|| {
                x = rule.merge(black_box(x), black_box(3.25));
                black_box(x)
            });
        });
    }
    group.finish();
}

fn bench_map_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_map_merge");
    for t in [1usize, 10, 20, 50] {
        let a: InstanceMap = (0..t as u64).map(|l| (l, 0.5)).collect();
        let b_map: InstanceMap = (0..t as u64)
            .filter(|l| l % 2 == 0)
            .map(|l| (l, 0.25))
            .collect();
        group.throughput(Throughput::Elements(t as u64));
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bencher, _| {
            bencher.iter(|| InstanceMap::merge(black_box(&a), black_box(&b_map)));
        });
    }
    group.finish();
}

fn bench_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("average_peak", n), &n, |bencher, &n| {
            let sampler = CompleteSampler::new(n);
            bencher.iter_batched(
                || {
                    let mut net = Network::new(n);
                    net.add_scalar_field(Rule::Average, |i| if i == 0 { n as f64 } else { 0.0 });
                    (net, Xoshiro256::seed_from_u64(1))
                },
                |(mut net, mut rng)| {
                    net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
                    net
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    // COUNT with many concurrent instances: the exchange merges sparse
    // instance maps, the path where per-exchange allocations dominate.
    for n in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("count_map32", n), &n, |bencher, &n| {
            let sampler = CompleteSampler::new(n);
            let leaders: Vec<usize> = (0..32).map(|i| i * (n / 32)).collect();
            bencher.iter_batched(
                || {
                    let mut net = Network::new(n);
                    let f = net.add_map_field(&leaders);
                    let mut rng = Xoshiro256::seed_from_u64(1);
                    // Warm up so the maps are populated and merges touch
                    // real entries, not empty vectors.
                    for _ in 0..5 {
                        net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
                    }
                    (net, f, rng)
                },
                |(mut net, f, mut rng)| {
                    net.run_cycle(&sampler, CycleOptions::default(), &mut rng);
                    black_box(net.map_mass(f, 0));
                    net
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalar_merge, bench_map_merge, bench_cycle);
criterion_main!(benches);
