//! A/B benchmark: old event-queue design (key heap + HashMap payload side
//! table) vs the new inline-payload heap, same workload, same process.
//! Temporary instrumentation for the PR-2 BENCH_trajectory measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{InstanceSpec, Message, NodeConfig};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use epidemic_sim::event::EventConfig;
use epidemic_sim::failure::CommFailure;
use epidemic_sim::scenario::{Scenario, ValueInit};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

#[derive(Debug)]
enum EventKind {
    Wake(usize),
    Deliver(usize, Message),
}

/// The pre-PR-2 event loop, verbatim apart from dropping the epoch-entry
/// bookkeeping interfaces that did not change.
fn run_old(
    node_config: &NodeConfig,
    n: usize,
    message_loss: f64,
    drift: f64,
    duration: u64,
    seed: u64,
) -> usize {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut nodes: Vec<GossipNode> = (0..n)
        .map(|i| {
            GossipNode::founder(
                NodeId::new(i as u64),
                node_config.clone(),
                i as f64,
                seed ^ 0xE7E7,
            )
        })
        .collect();
    let drifts: Vec<f64> = (0..n)
        .map(|_| 1.0 + drift * (2.0 * rng.next_f64() - 1.0))
        .collect();
    let mut queue: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut payloads: HashMap<u64, EventKind> = HashMap::new();
    let mut seq: u64 = 0;
    let push = |queue: &mut BinaryHeap<Reverse<(u64, u64)>>,
                payloads: &mut HashMap<u64, EventKind>,
                seq: &mut u64,
                at: u64,
                kind: EventKind| {
        *seq += 1;
        payloads.insert(*seq, kind);
        queue.push(Reverse((at, *seq)));
    };
    let to_local = |global: u64, node: usize| -> u64 { (global as f64 * drifts[node]) as u64 };
    let to_global =
        |local: u64, node: usize| -> u64 { (local as f64 / drifts[node]).ceil() as u64 };
    for (i, node) in nodes.iter().enumerate() {
        let at = to_global(node.next_deadline(), i);
        push(&mut queue, &mut payloads, &mut seq, at, EventKind::Wake(i));
    }
    let mut messages_sent = 0usize;
    let mut epoch_seen: Vec<u64> = nodes.iter().map(GossipNode::epoch).collect();
    let mut entries: HashMap<u64, (u64, u64)> = HashMap::new();
    entries.insert(0, (0, 0));
    while let Some(Reverse((at, id))) = queue.pop() {
        if at > duration {
            break;
        }
        let kind = payloads.remove(&id).expect("event payload");
        let (node_idx, outbound) = match kind {
            EventKind::Wake(i) => {
                let local_now = to_local(at, i);
                let peer = {
                    let raw = rng.index(n - 1);
                    let p = if raw >= i { raw + 1 } else { raw };
                    Some(NodeId::new(p as u64))
                };
                let out = nodes[i].poll(local_now, peer);
                (i, out)
            }
            EventKind::Deliver(i, msg) => {
                let local_now = to_local(at, i);
                let out = nodes[i].handle(&msg, local_now);
                (i, out)
            }
        };
        if let Some(out) = outbound {
            messages_sent += 1;
            if message_loss > 0.0 && rng.next_bool(message_loss) {
                // lost
            } else {
                let delay = rng.range_u64(10, 50);
                let to = out.to.index();
                push(
                    &mut queue,
                    &mut payloads,
                    &mut seq,
                    at + delay,
                    EventKind::Deliver(to, out.message),
                );
            }
        }
        let epoch_now = nodes[node_idx].epoch();
        if epoch_now != epoch_seen[node_idx] {
            epoch_seen[node_idx] = epoch_now;
            let entry = entries.entry(epoch_now).or_insert((at, at));
            entry.0 = entry.0.min(at);
            entry.1 = entry.1.max(at);
        }
        let next = to_global(nodes[node_idx].next_deadline(), node_idx);
        push(
            &mut queue,
            &mut payloads,
            &mut seq,
            next.max(at + 1),
            EventKind::Wake(node_idx),
        );
    }
    messages_sent
}

fn bench_ab(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_ab");
    group.sample_size(10);
    for n in [64usize, 512] {
        let node = NodeConfig::builder()
            .gamma(15)
            .cycle_length(1_000)
            .timeout(200)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap();
        group.throughput(Throughput::Elements(40 * n as u64));
        group.bench_with_input(BenchmarkId::new("old_side_table", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_old(&node, n, 0.05, 0.02, 40_000, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("new_inline_heap", n), &n, |b, &n| {
            let config = EventConfig {
                scenario: Scenario {
                    n,
                    values: ValueInit::Linear,
                    comm: CommFailure::messages(0.05),
                    ..Scenario::default()
                },
                node: node.clone(),
                delay: (10, 50),
                drift: 0.02,
                duration: 40_000,
                ..EventConfig::default()
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ab);
criterion_main!(benches);
