//! Micro-benchmarks of topology generation at evaluation sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_common::rng::Xoshiro256;
use epidemic_topology::generate;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("random_k20", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Xoshiro256::seed_from_u64(1);
                generate::random_k_out(n, 20, &mut rng).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("ws_beta25", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Xoshiro256::seed_from_u64(1);
                generate::watts_strogatz(n, 20, 0.25, &mut rng).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("barabasi_m10", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Xoshiro256::seed_from_u64(1);
                generate::barabasi_albert(n, 10, &mut rng).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
