//! End-to-end throughput of the multi-tenant query plane at n = 256.
//!
//! A single mux cluster hosts 8 named AVERAGE queries; demand comes from
//! the deterministic closed-loop generator in `epidemic_bench::demand`
//! (Zipf popularity over the tenants, Poisson-sized bursts). Two legs
//! submit the *same* schedule:
//!
//! - `seam`: through the in-process `Cluster::submit_query` operator
//!   seam, round-robining over the vnodes — the cost of the plane
//!   itself (admission check, value staging) with no wire in the way.
//! - `wire`: through the UDP RPC listener as a real client — encode,
//!   send, block for the response, decode. Closed loop: the next submit
//!   is not issued until the previous response arrived, so this measures
//!   request round-trip capacity, not how fast a socket can be flooded.
//!
//! Each leg also prints (once) the cluster-wide query-plane wire
//! overhead: query bytes per aggregation byte and per-tenant query
//! bytes — the cost the catalog gossip + per-query epochs add to the
//! baseline protocol.
//!
//! Results are recorded in BENCH_trajectory.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::{AggregateKind, InstanceSpec, NodeConfig};
use epidemic_bench::demand::{DemandConfig, DemandGenerator};
use epidemic_net::cluster::Cluster;
use epidemic_net::codec::{decode_rpc_response, encode_rpc_request};
use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
use epidemic_query::{QueryDescriptor, QueryError, QueryPlaneConfig, RpcRequest, RpcStatus};
use std::net::UdpSocket;
use std::time::{Duration, Instant};

const N: usize = 256;
const QUERIES: usize = 8;
/// Submits measured per criterion iteration.
const BATCH: usize = 256;
const CYCLE_MS: u64 = 20;

fn tenant_name(rank: usize) -> String {
    format!("bench.q{rank}")
}

/// Spawns the cluster, installs the 8 tenants at vnode 0, and blocks
/// until catalog gossip has delivered the last-installed tenant to the
/// farthest vnode (so the measured loop never races the rollout).
fn spawn_query_cluster(seed: u64) -> MuxCluster {
    let node_config = NodeConfig::builder()
        .gamma(8)
        .cycle_length(CYCLE_MS)
        .timeout(CYCLE_MS / 2)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap();
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(N, node_config)
            .with_workers(4)
            .with_seed(seed)
            .with_query_config(QueryPlaneConfig {
                gossip_period: CYCLE_MS,
                ..QueryPlaneConfig::default()
            })
            .with_rpc_addr("127.0.0.1:0".parse().unwrap()),
        |i| i as f64,
    )
    .expect("spawn cluster");
    for rank in 0..QUERIES {
        cluster
            .install_query(
                0,
                QueryDescriptor::new(tenant_name(rank), AggregateKind::Average)
                    .with_gamma(8)
                    .with_cycle_length(CYCLE_MS)
                    .with_default_value(1.0),
            )
            .expect("install tenant");
    }
    // The measured loop round-robins over every vnode, so block until
    // catalog gossip has delivered every tenant everywhere.
    let names: Vec<String> = (0..QUERIES).map(tenant_name).collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    'rollout: loop {
        let mut missing = 0usize;
        for node in 0..N {
            for name in &names {
                if matches!(
                    cluster.query_estimate(node, name),
                    Err(QueryError::UnknownQuery)
                ) {
                    missing += 1;
                }
            }
        }
        if missing == 0 {
            break 'rollout;
        }
        assert!(
            Instant::now() < deadline,
            "tenant rollout stalled: {missing} (node, tenant) pairs still unknown"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    cluster
}

/// Pulls bursts until `BATCH` submits are scheduled; returns
/// `(query rank, value)` pairs in arrival order.
fn next_batch(demand: &mut DemandGenerator) -> Vec<(usize, f64)> {
    let mut batch = Vec::with_capacity(BATCH + 16);
    while batch.len() < BATCH {
        let burst = demand.next_burst();
        for s in 0..burst.size {
            batch.push((burst.query, (s + 1) as f64));
        }
    }
    batch.truncate(BATCH);
    batch
}

fn print_overhead(label: &str, cluster: &MuxCluster) {
    let totals = cluster.total_datagram_counts();
    eprintln!(
        "{label}/{N}: {} query datagrams / {} bytes vs {} aggregation bytes \
         | query byte overhead {:.3}, {:.1} query B per tenant \
         | {} rpc requests, {} rejects",
        totals.query_sent,
        totals.query_bytes_sent,
        totals.aggregation_bytes_sent,
        totals.query_byte_overhead(),
        totals.query_bytes_sent as f64 / QUERIES as f64,
        cluster.registry().counter_value("rpc.requests"),
        totals.rpc_rejects,
    );
}

fn bench_query_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("query/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));

    // Leg 1: the operator seam — plane cost with no wire.
    {
        let cluster = spawn_query_cluster(1);
        let mut demand = DemandGenerator::new(
            DemandConfig {
                queries: QUERIES,
                ..DemandConfig::default()
            },
            1,
        );
        let mut node = 0usize;
        group.bench_with_input(BenchmarkId::new("seam", N), &N, |b, _| {
            b.iter(|| {
                for (rank, value) in next_batch(&mut demand) {
                    node = (node + 1) % N;
                    cluster
                        .submit_query(node, &tenant_name(rank), value)
                        .expect("seam submit");
                }
            });
        });
        print_overhead("seam", &cluster);
        cluster.shutdown();
    }

    // Leg 2: over the wire, closed loop — one UDP client round-trip per
    // submit through whichever vnode the listener's round-robin picks.
    {
        let cluster = spawn_query_cluster(2);
        let rpc_addr = cluster.rpc_addr().expect("rpc listener bound");
        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        client
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("set timeout");
        let mut demand = DemandGenerator::new(
            DemandConfig {
                queries: QUERIES,
                ..DemandConfig::default()
            },
            2,
        );
        let mut next_id = 0u64;
        group.bench_with_input(BenchmarkId::new("wire", N), &N, |b, _| {
            b.iter(|| {
                for (rank, value) in next_batch(&mut demand) {
                    next_id += 1;
                    let frame = encode_rpc_request(&RpcRequest::Submit {
                        id: next_id,
                        name: tenant_name(rank),
                        value,
                    });
                    let mut buf = [0u8; 64];
                    // Closed loop: block for the matching response
                    // before the next submit (UDP: retry on timeout).
                    'submit: for _ in 0..10 {
                        client.send_to(&frame, rpc_addr).expect("send rpc");
                        while let Ok((len, _)) = client.recv_from(&mut buf) {
                            let response =
                                decode_rpc_response(&buf[..len]).expect("decodable response");
                            if response.id == next_id {
                                assert_eq!(response.status, RpcStatus::Ok, "wire submit rejected");
                                break 'submit;
                            }
                        }
                    }
                }
            });
        });
        print_overhead("wire", &cluster);
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
