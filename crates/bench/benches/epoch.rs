//! End-to-end benchmark: one full 30-cycle COUNT epoch over NEWSCAST —
//! the workload behind every robustness figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_sim::experiment::{AggregateSetup, ExperimentConfig, OverlaySpec, ValueInit};

fn bench_full_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_epoch");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64 * 30));
        group.bench_with_input(BenchmarkId::new("count_newscast", n), &n, |b, &n| {
            let config = ExperimentConfig {
                n,
                overlay: OverlaySpec::Newscast { c: 30 },
                cycles: 30,
                values: ValueInit::Constant(0.0),
                aggregate: AggregateSetup::CountPeak,
                ..ExperimentConfig::default()
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("average_complete", n), &n, |b, &n| {
            let config = ExperimentConfig {
                n,
                overlay: OverlaySpec::Complete,
                cycles: 30,
                values: ValueInit::Peak { total: n as f64 },
                aggregate: AggregateSetup::Average,
                ..ExperimentConfig::default()
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_epoch);
criterion_main!(benches);
