//! End-to-end benchmarks: one full 30-cycle COUNT epoch over NEWSCAST —
//! the workload behind every robustness figure — plus the event-driven
//! engine's queue-bound inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_sim::event::EventConfig;
use epidemic_sim::experiment::{AggregateSetup, ExperimentConfig};
use epidemic_sim::failure::CommFailure;
use epidemic_sim::scenario::{OverlaySpec, Scenario, ValueInit};

fn bench_full_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_epoch");
    group.sample_size(10);
    for n in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64 * 30));
        group.bench_with_input(BenchmarkId::new("count_newscast", n), &n, |b, &n| {
            let config = ExperimentConfig {
                scenario: Scenario {
                    n,
                    overlay: OverlaySpec::Newscast { c: 30 },
                    values: ValueInit::Constant(0.0),
                    ..Scenario::default()
                },
                cycles: 30,
                aggregate: AggregateSetup::CountPeak,
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("average_complete", n), &n, |b, &n| {
            let config = ExperimentConfig {
                scenario: Scenario {
                    n,
                    overlay: OverlaySpec::Complete,
                    values: ValueInit::Peak { total: n as f64 },
                    ..Scenario::default()
                },
                cycles: 30,
                aggregate: AggregateSetup::Average,
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
    }
    group.finish();
}

fn bench_event_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_epoch");
    group.sample_size(10);
    for n in [64usize, 512] {
        // ~40 cycles of gamma=15 epochs: the hottest loop in the repo is
        // the event queue push/pop under message delay, loss, and drift.
        let node = NodeConfig::builder()
            .gamma(15)
            .cycle_length(1_000)
            .timeout(200)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap();
        group.throughput(Throughput::Elements(40 * n as u64));
        group.bench_with_input(BenchmarkId::new("complete_lossy", n), &n, |b, &n| {
            let config = EventConfig {
                scenario: Scenario {
                    n,
                    values: ValueInit::Linear,
                    comm: CommFailure::messages(0.05),
                    ..Scenario::default()
                },
                node: node.clone(),
                delay: (10, 50),
                drift: 0.02,
                duration: 40_000,
                ..EventConfig::default()
            };
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.run(seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_epoch, bench_event_epoch);
criterion_main!(benches);
