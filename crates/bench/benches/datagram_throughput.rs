//! Runtimes head to head through the unified `Cluster` seam:
//! thread-per-node vs multiplexed, and static vs gossiped membership.
//!
//! Each iteration spawns a full localhost cluster, waits until every node
//! has completed its first epoch (gamma cycles of real push-pull over
//! real datagrams), and tears it down. The measured quantity is thus
//! end-to-end wall clock per epoch wave — dominated by protocol cadence,
//! socket I/O, and scheduler pressure, which is exactly the cost model
//! the mux runtime changes: `threads` burns one OS thread + one socket
//! per node, `mux` a fixed `4 + 2` threads and one socket total.
//!
//! `mux_gossip` runs the same epoch wave with NO static peer table:
//! NEWSCAST membership bootstraps from vnode 0 and serves
//! `GETNEIGHBOR()` from live views, so the delta against `mux` prices
//! gossiped membership (the wire-byte overhead is printed once per run
//! from the per-plane traffic counters).
//!
//! Results are recorded in BENCH_trajectory.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_net::cluster::Cluster;
use epidemic_net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
use epidemic_net::runtime::{ClusterConfig, ThreadCluster};
use std::time::{Duration, Instant};

const CYCLE_MS: u64 = 10;
const GAMMA: u32 = 4;

fn node_config() -> NodeConfig {
    NodeConfig::builder()
        .gamma(GAMMA)
        .cycle_length(CYCLE_MS)
        .timeout(CYCLE_MS / 2)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

/// Spawns `config`, waits until every one of the `n` nodes has produced
/// at least one epoch report (its first full epoch) or a hard cap
/// passes, and tears down. Returns how many nodes completed and the
/// cluster-wide traffic totals.
fn run_epoch_wave<C: Cluster>(
    config: C::Config,
    n: usize,
) -> (usize, epidemic_net::cluster::TrafficCounts) {
    let cluster = C::spawn_cluster(config, &|i| i as f64).expect("spawn cluster");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut done = vec![false; n];
    let completed = loop {
        std::thread::sleep(Duration::from_millis(2));
        for (i, flag) in done.iter_mut().enumerate() {
            if !*flag && !cluster.take_reports(i).is_empty() {
                *flag = true;
            }
        }
        let completed = done.iter().filter(|&&d| d).count();
        if completed >= n || Instant::now() >= deadline {
            break completed;
        }
    };
    let totals = cluster.total_datagram_counts();
    cluster.shutdown();
    (completed, totals)
}

fn thread_config(n: usize, seed: u64) -> ClusterConfig {
    ClusterConfig::loopback(n, node_config())
        .expect("bind cluster")
        .with_seed(seed)
}

fn mux_config(n: usize, seed: u64, gossip: bool) -> MuxClusterConfig {
    let mut config = MuxClusterConfig::new(n, node_config())
        .with_workers(4)
        .with_seed(seed);
    if gossip {
        config = config.with_directory(DirectorySpec::Gossip(
            // Membership gossips at the aggregation cadence.
            GossipDirectoryConfig::new(20, CYCLE_MS).with_introducer_node(0),
        ));
    }
    config
}

fn bench_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/datagram_throughput");
    group.sample_size(10);
    for n in [64usize, 256] {
        // One "element" = one node's completed epoch (gamma cycles).
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_epoch_wave::<ThreadCluster>(thread_config(n, seed), n).0
            });
        });
        group.bench_with_input(BenchmarkId::new("mux", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_epoch_wave::<MuxCluster>(mux_config(n, seed, false), n).0
            });
        });
    }
    // Static vs gossiped membership at n = 256: same epoch wave, the
    // directory is the only difference.
    let n = 256usize;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("mux_gossip", n), &n, |b, &n| {
        let mut seed = 0u64;
        let mut printed = false;
        b.iter(|| {
            seed += 1;
            let (completed, totals) = run_epoch_wave::<MuxCluster>(mux_config(n, seed, true), n);
            if !printed {
                printed = true;
                eprintln!(
                    "mux_gossip/{n}: membership {} msgs / {} bytes vs aggregation \
                     {} msgs / {} bytes (byte overhead {:.3})",
                    totals.membership_sent,
                    totals.membership_bytes_sent,
                    totals.aggregation_sent,
                    totals.aggregation_bytes_sent,
                    totals.membership_byte_overhead(),
                );
            }
            completed
        });
    });
    group.finish();
}

criterion_group!(benches, bench_runtimes);
criterion_main!(benches);
