//! Thread-per-node vs multiplexed UDP runtime, head to head.
//!
//! Each iteration spawns a full localhost cluster, waits until every node
//! has completed its first epoch (gamma cycles of real push-pull over
//! real datagrams), and tears it down. The measured quantity is thus
//! end-to-end wall clock per epoch wave — dominated by protocol cadence,
//! socket I/O, and scheduler pressure, which is exactly the cost model
//! the mux runtime changes: `threads` burns one OS thread + one socket
//! per node, `mux` a fixed `4 + 2` threads and one socket total.
//!
//! Results are recorded in BENCH_trajectory.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
use epidemic_net::runtime::{ClusterConfig, UdpNode};
use std::time::{Duration, Instant};

const CYCLE_MS: u64 = 10;
const GAMMA: u32 = 4;

fn node_config() -> NodeConfig {
    NodeConfig::builder()
        .gamma(GAMMA)
        .cycle_length(CYCLE_MS)
        .timeout(CYCLE_MS / 2)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

/// Polls `harvest` every few milliseconds until every one of the `n`
/// nodes has produced at least one epoch report (its first full epoch),
/// or a hard cap passes. `harvest` marks completed node indices in the
/// flag slice. Returns how many nodes completed.
fn wait_for_epoch_wave(n: usize, mut harvest: impl FnMut(&mut [bool])) -> usize {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut done = vec![false; n];
    loop {
        std::thread::sleep(Duration::from_millis(2));
        harvest(&mut done);
        let completed = done.iter().filter(|&&d| d).count();
        if completed >= n || Instant::now() >= deadline {
            return completed;
        }
    }
}

fn run_threads(n: usize, seed: u64) -> usize {
    let cluster = ClusterConfig::loopback(n, node_config())
        .expect("bind cluster")
        .with_seed(seed);
    let nodes: Vec<UdpNode> = (0..n)
        .map(|i| UdpNode::spawn(cluster.node(i, i as f64)).expect("spawn node"))
        .collect();
    let seen = wait_for_epoch_wave(n, |done| {
        for (i, node) in nodes.iter().enumerate() {
            if !done[i] && !node.take_reports().is_empty() {
                done[i] = true;
            }
        }
    });
    for node in nodes {
        node.shutdown();
    }
    seen
}

fn run_mux(n: usize, seed: u64) -> usize {
    let cluster = MuxCluster::spawn(
        MuxClusterConfig::new(n, node_config())
            .with_workers(4)
            .with_seed(seed),
        |i| i as f64,
    )
    .expect("spawn cluster");
    let seen = wait_for_epoch_wave(n, |done| {
        for (i, reports) in cluster.take_all_reports().iter().enumerate() {
            if !reports.is_empty() {
                done[i] = true;
            }
        }
    });
    cluster.shutdown();
    seen
}

fn bench_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/datagram_throughput");
    group.sample_size(10);
    for n in [64usize, 256] {
        // One "element" = one node's completed epoch (gamma cycles).
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_threads(n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("mux", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_mux(n, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtimes);
criterion_main!(benches);
