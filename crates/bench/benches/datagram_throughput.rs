//! Runtimes head to head through the unified `Cluster` seam:
//! thread-per-node vs multiplexed — and the mux runtime's I/O grid:
//! reader-socket counts × syscall backends.
//!
//! Each iteration spawns a full localhost cluster, waits until every node
//! has completed its first epoch (gamma cycles of real push-pull over
//! real datagrams), and tears it down. The measured quantity is thus
//! end-to-end wall clock per epoch wave — dominated by protocol cadence,
//! socket I/O, and scheduler pressure, which is exactly the cost model
//! the reader-socket set and `recvmmsg`/`sendmmsg` batching change.
//!
//! The sweep: `mux_r{readers}_{io}` for readers ∈ {1, 2, 4} × io ∈
//! {batched, portable} at n ∈ {256, 1024, 4096}. `mux_r1_portable` is
//! the pre-batching baseline (one socket, one syscall per datagram);
//! `threads` remains the thread-per-node reference. Alongside wall
//! clock, each config prints its **syscalls-per-datagram** once — the
//! machine-independent figure the batched backend exists to shrink
//! (wall-clock deltas also depend on how many cores the host gives the
//! reader/worker threads).
//!
//! `mux_gossip` runs the same epoch wave with NO static peer table:
//! NEWSCAST membership bootstraps from vnode 0 and serves
//! `GETNEIGHBOR()` from live views, so the delta against the static mux
//! prices gossiped membership. `mux_gossip_full` is the pre-delta
//! baseline (every exchange ships the full view, no piggybacking
//! savings); `mux_gossip` gossips view *deltas* and piggybacks
//! membership trailers on aggregation datagrams. Each prints a
//! **bytes-per-converged-epoch** line — membership and aggregation wire
//! bytes divided by the nodes that completed the epoch wave, plus their
//! ratio (the headline number delta gossip exists to shrink) and the
//! mean absolute estimate error (the fidelity gate: cheaper membership
//! must not cost convergence).
//!
//! Results are recorded in BENCH_trajectory.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epidemic_aggregation::{InstanceSpec, NodeConfig};
use epidemic_net::batch::IoBackend;
use epidemic_net::cluster::Cluster;
use epidemic_net::directory::{DirectorySpec, GossipDirectoryConfig};
use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
use epidemic_net::runtime::{ClusterConfig, ThreadCluster};
use std::time::{Duration, Instant};

const CYCLE_MS: u64 = 10;
const GAMMA: u32 = 4;

fn node_config() -> NodeConfig {
    NodeConfig::builder()
        .gamma(GAMMA)
        .cycle_length(CYCLE_MS)
        .timeout(CYCLE_MS / 2)
        .instance(InstanceSpec::AVERAGE)
        .build()
        .unwrap()
}

/// Spawns `config`, waits until every one of the `n` nodes has produced
/// at least one epoch report (its first full epoch) or a hard cap
/// passes, and tears down. Returns how many nodes completed and the
/// cluster-wide traffic totals.
fn run_epoch_wave<C: Cluster>(
    config: C::Config,
    n: usize,
) -> (usize, epidemic_net::cluster::TrafficCounts) {
    let cluster = C::spawn_cluster(config, &|i| i as f64).expect("spawn cluster");
    let completed = wait_for_wave(&cluster, n).0;
    let totals = cluster.total_datagram_counts();
    cluster.shutdown();
    (completed, totals)
}

/// The mux-specific wave runner: additionally snapshots the runtime's
/// syscall counters so each config can report syscalls-per-datagram.
fn run_mux_epoch_wave(
    config: MuxClusterConfig,
    n: usize,
) -> (
    usize,
    epidemic_net::cluster::TrafficCounts,
    epidemic_net::mux::SyscallCounts,
) {
    let cluster = MuxCluster::spawn(config, |i| i as f64).expect("spawn cluster");
    let completed = wait_for_wave(&cluster, n).0;
    let totals = cluster.total_datagram_counts();
    let syscalls = cluster.syscall_counts();
    cluster.shutdown();
    (completed, totals, syscalls)
}

/// How deep the gossip wave runs: waiting for several epochs per node
/// (instead of the first) lets the one-time bootstrap traffic — joins,
/// introduces, the initial full-view fills — amortize, so the
/// bytes-per-converged-epoch column prices the steady state the delta +
/// piggyback path targets, not the cold start. (At a 4-epoch wave the
/// join/introduce bootstrap is still ~40% of the dedicated membership
/// messages; at 8 it fades into the noise.)
const GOSSIP_EPOCHS: usize = 8;

/// The gossip wave runner: waits for [`GOSSIP_EPOCHS`] epoch reports per
/// node, then reports (total converged epochs, nodes that finished all
/// of them, traffic totals, mean absolute error of each node's latest
/// estimate — the fidelity gate for membership-cost optimizations).
fn run_gossip_epoch_wave(
    config: MuxClusterConfig,
    n: usize,
) -> (usize, usize, epidemic_net::cluster::TrafficCounts, f64) {
    let cluster = MuxCluster::spawn(config, |i| i as f64).expect("spawn cluster");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut epochs = vec![0usize; n];
    let mut latest = vec![f64::NAN; n];
    loop {
        std::thread::sleep(Duration::from_millis(2));
        for (i, count) in epochs.iter_mut().enumerate() {
            for report in cluster.take_reports(i) {
                *count += 1;
                if let Some(est) = report.scalar(0) {
                    latest[i] = est;
                }
            }
        }
        let done = epochs.iter().filter(|&&e| e >= GOSSIP_EPOCHS).count();
        if done >= n || Instant::now() >= deadline {
            break;
        }
    }
    let totals = cluster.total_datagram_counts();
    cluster.shutdown();
    let total_epochs = epochs.iter().map(|&e| e.min(GOSSIP_EPOCHS)).sum();
    let nodes_done = epochs.iter().filter(|&&e| e >= GOSSIP_EPOCHS).count();
    let truth = (n as f64 - 1.0) / 2.0;
    let estimates: Vec<f64> = latest.iter().copied().filter(|e| e.is_finite()).collect();
    let mean_abs_error = if estimates.is_empty() {
        f64::NAN
    } else {
        estimates.iter().map(|e| (e - truth).abs()).sum::<f64>() / estimates.len() as f64
    };
    (total_epochs, nodes_done, totals, mean_abs_error)
}

fn wait_for_wave<C: Cluster>(cluster: &C, n: usize) -> (usize, Vec<f64>) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut done = vec![false; n];
    let mut estimates = Vec::new();
    loop {
        std::thread::sleep(Duration::from_millis(2));
        for (i, flag) in done.iter_mut().enumerate() {
            if *flag {
                continue;
            }
            let reports = cluster.take_reports(i);
            if let Some(r) = reports.first() {
                *flag = true;
                if let Some(est) = r.scalar(0) {
                    estimates.push(est);
                }
            }
        }
        let completed = done.iter().filter(|&&d| d).count();
        if completed >= n || Instant::now() >= deadline {
            break (completed, estimates);
        }
    }
}

fn thread_config(n: usize, seed: u64) -> ClusterConfig {
    ClusterConfig::loopback(n, node_config())
        .expect("bind cluster")
        .with_seed(seed)
}

fn mux_config(n: usize, seed: u64, readers: usize, io: IoBackend) -> MuxClusterConfig {
    MuxClusterConfig::new(n, node_config())
        .with_workers(4)
        .with_readers(readers)
        .with_io(io)
        .with_seed(seed)
}

fn gossip_config(n: usize, seed: u64, full_views: bool) -> MuxClusterConfig {
    // The full-view baseline reproduces PR 5: no piggybacking, so the
    // dedicated membership plane must gossip at the aggregation cadence
    // to keep views fresh. The delta leg slows the dedicated plane to
    // once per two aggregation epochs (piggybacked trailers carry fresh
    // descriptors in between) and sizes the delta-knowledge LRU to the
    // overlay so deltas stay deltas — the fidelity gate (mean estimate
    // error) checks that nothing was lost.
    let mut gossip = if full_views {
        GossipDirectoryConfig::new(20, CYCLE_MS).with_full_views()
    } else {
        GossipDirectoryConfig::new(20, 2 * CYCLE_MS * GAMMA as u64).with_knowledge_peers(n)
    };
    gossip = gossip.with_introducer_node(0);
    mux_config(n, seed, 1, IoBackend::auto()).with_directory(DirectorySpec::Gossip(gossip))
}

fn io_label(io: IoBackend) -> &'static str {
    match io {
        IoBackend::Batched => "batched",
        IoBackend::Portable => "portable",
    }
}

fn bench_runtimes(c: &mut Criterion) {
    let mut group = c.benchmark_group("net/datagram_throughput");
    group.sample_size(10);
    for n in [64usize, 256] {
        // One "element" = one node's completed epoch (gamma cycles).
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("threads", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_epoch_wave::<ThreadCluster>(thread_config(n, seed), n).0
            });
        });
    }

    // The I/O grid: readers × backend × scale. On non-Linux hosts the
    // batched column is skipped (it would silently run the portable
    // path and mislabel the numbers).
    for n in [256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        for readers in [1usize, 2, 4] {
            for io in [IoBackend::Batched, IoBackend::Portable] {
                if io == IoBackend::Batched && !io.is_batched() {
                    continue;
                }
                let label = format!("mux_r{readers}_{}", io_label(io));
                group.bench_with_input(BenchmarkId::new(&label, n), &n, |b, &n| {
                    let mut seed = 0u64;
                    let mut printed = false;
                    b.iter(|| {
                        seed += 1;
                        let (completed, totals, syscalls) =
                            run_mux_epoch_wave(mux_config(n, seed, readers, io), n);
                        if !printed {
                            printed = true;
                            let datagrams = totals.sent() + totals.received();
                            eprintln!(
                                "{label}/{n}: {} recv + {} send syscalls for {datagrams} \
                                 datagrams = {:.3} syscalls/datagram \
                                 ({completed}/{n} nodes completed, {} send errors)",
                                syscalls.recv_calls,
                                syscalls.send_calls,
                                (syscalls.recv_calls + syscalls.send_calls) as f64
                                    / datagrams.max(1) as f64,
                                totals.send_errors,
                            );
                        }
                        completed
                    });
                });
            }
        }
    }

    // Telemetry overhead A/B at n = 1024: the identical epoch wave, the
    // only difference is whether the metrics registry is live (the
    // default — every counter/gauge/histogram handle hits a real atomic)
    // or disconnected via `without_telemetry()` (every handle is a
    // no-op). The telemetry plane's budget is ≤2% wall clock; the pair
    // is measured here so regressions show up as a widening gap, not as
    // an unexplained slowdown of the instrumented default.
    let n = 1024usize;
    group.throughput(Throughput::Elements(n as u64));
    for (label, telemetry) in [("mux_telemetry_on", true), ("mux_telemetry_off", false)] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut config = mux_config(n, seed, 1, IoBackend::auto());
                if !telemetry {
                    config = config.without_telemetry();
                }
                run_mux_epoch_wave(config, n).0
            });
        });
    }

    // Static vs gossiped membership at n = 256: same epoch wave, the
    // directory is the only difference. `mux_gossip` is the delta +
    // piggyback path; `mux_gossip_full` the pre-delta full-view baseline.
    let n = 256usize;
    group.throughput(Throughput::Elements(n as u64));
    for (label, full_views) in [("mux_gossip", false), ("mux_gossip_full", true)] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
            let mut seed = 0u64;
            let mut printed = false;
            b.iter(|| {
                seed += 1;
                let (total_epochs, nodes_done, totals, err) =
                    run_gossip_epoch_wave(gossip_config(n, seed, full_views), n);
                if !printed {
                    printed = true;
                    let per_epoch = |bytes: u64| bytes as f64 / total_epochs.max(1) as f64;
                    eprintln!(
                        "{label}/{n}: membership {} msgs / {} bytes vs aggregation \
                         {} msgs / {} bytes | per converged epoch: {:.1} membership B, \
                         {:.1} aggregation B, ratio {:.3} | mean |err| {err:.3} \
                         ({total_epochs} epochs, {nodes_done}/{n} nodes finished \
                         {GOSSIP_EPOCHS}, {} join retries)",
                        totals.membership_sent,
                        totals.membership_bytes_sent,
                        totals.aggregation_sent,
                        totals.aggregation_bytes_sent,
                        per_epoch(totals.membership_bytes_sent),
                        per_epoch(totals.aggregation_bytes_sent),
                        totals.membership_byte_overhead(),
                        totals.join_retries,
                    );
                }
                total_epochs
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtimes);
criterion_main!(benches);
