//! Registry concurrency and histogram bucket-boundary properties.

use epidemic_telemetry::{bucket_bounds, bucket_index, Registry};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Eight writer threads hammer one counter, one gauge, and one histogram
/// while a reader snapshots continuously: counter reads must be
/// monotone, gauge reads must never tear (every read is a value some
/// thread actually wrote), and the final totals must be exact.
#[test]
fn registry_is_consistent_under_8_thread_hammering() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let registry = Registry::new();
    let counter = registry.counter("hammer.counter");
    let gauge = registry.gauge("hammer.gauge");
    let histogram = registry.histogram("hammer.histogram");
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let counter = counter.clone();
        let gauge = gauge.clone();
        let histogram = histogram.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last = 0u64;
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let now = counter.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
                let g = gauge.get();
                assert!(
                    g == 0.0 || (1.0..=f64::from(u32::MAX)).contains(&g),
                    "torn gauge read: {g}"
                );
                // The histogram count is derived from its buckets, so a
                // snapshot can never disagree with itself.
                let count = histogram.count();
                assert_eq!(count, histogram.bucket_counts().iter().sum::<u64>());
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let histogram = histogram.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.set((t * PER_THREAD + i + 1) as f64);
                    histogram.record(i % 1024);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader never snapshotted");

    assert_eq!(counter.get(), THREADS * PER_THREAD);
    assert_eq!(histogram.count(), THREADS * PER_THREAD);
    let per_thread_sum: u64 = (0..PER_THREAD).map(|i| i % 1024).sum();
    assert_eq!(histogram.sum(), THREADS * per_thread_sum);
    // Registering the same series again sees the same cells.
    assert_eq!(
        registry.counter_value("hammer.counter"),
        THREADS * PER_THREAD
    );
}

proptest! {
    /// Every u64 lands in exactly one bucket, and that bucket's bounds
    /// contain it.
    #[test]
    fn histogram_bucket_bounds_contain_their_values(value in any::<u64>()) {
        let idx = bucket_index(value);
        prop_assert!(idx < 65);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= value && value <= hi, "{value} outside [{lo}, {hi}]");
        // Boundaries are exclusive between adjacent buckets.
        if lo > 0 {
            prop_assert_eq!(bucket_index(lo - 1), idx - 1);
        }
        if hi < u64::MAX {
            prop_assert_eq!(bucket_index(hi + 1), idx + 1);
        }
    }

    /// Recording any sample set yields count == Σ buckets and an exact sum.
    #[test]
    fn histogram_totals_match_recorded_samples(values in prop::collection::vec(any::<u32>(), 1..64)) {
        let registry = Registry::new();
        let histogram = registry.histogram("prop.histogram");
        let mut expected_sum = 0u64;
        for &v in &values {
            histogram.record(u64::from(v));
            expected_sum += u64::from(v);
        }
        prop_assert_eq!(histogram.count(), values.len() as u64);
        prop_assert_eq!(histogram.sum(), expected_sum);
        let counts = histogram.bucket_counts();
        for &v in &values {
            prop_assert!(counts[bucket_index(u64::from(v))] > 0);
        }
    }
}
