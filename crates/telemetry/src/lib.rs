//! Unified telemetry plane for the epidemic aggregation workspace.
//!
//! Every engine in the workspace — the event-driven simulator, the
//! thread-per-node UDP runtime, and the multiplexed runtime — used to
//! expose observability through ad-hoc structs with divergent shapes.
//! This crate is the one seam they all report through:
//!
//! * [`registry`] — a dependency-free, lock-free **metrics registry**:
//!   atomic [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s
//!   behind typed handles, registered under a dotted series namespace
//!   (`agg.exchanges`, `membership.delta_bytes`, `timer.fire_lag_us`,
//!   `epoch.variance_reduction_rho`, …) with optional labels, rendered
//!   as Prometheus text exposition.
//! * [`trace`] — **protocol event tracing**: a bounded per-(v)node ring
//!   buffer of structured [`TraceEvent`]s (exchange init / complete /
//!   timeout, view merge, join retry, epoch transition, piggyback emit)
//!   recorded from the sans-io node cores, so the sim and both wire
//!   runtimes are instrumented once; exported as JSONL for post-mortem
//!   analysis of any failed run.
//! * [`http`] — a hand-rolled (std-only) Prometheus-text `/metrics`
//!   HTTP endpoint ([`MetricsServer`]) plus a snapshot writer
//!   ([`write_snapshot`]) for engines without a listening socket.
//! * [`ViewHealth`] — the engine-independent membership health snapshot
//!   (mean view fill, dead-entry fraction), shared by the sim's
//!   population summaries and the wire `GossipDirectory`.
//!
//! The registry's hot path is wait-free (`Relaxed` atomics); the only
//! lock is taken at handle registration. A [`Registry::disabled`]
//! registry (and a capacity-0 [`TraceRing`]) compiles every record call
//! down to one branch — the "stub" leg of the overhead benchmark.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod registry;
pub mod trace;

pub use http::{write_snapshot, MetricsServer};
pub use registry::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, Registry};
pub use trace::{write_jsonl, TraceEvent, TraceKind, TraceRing};

/// Health snapshot of a population of NEWSCAST partial views: how full
/// they are and how many entries still point at peers believed gone
/// (the self-healing signal of the paper's Section 4.4).
///
/// Engine-independent: the simulator summarizes the whole population
/// against ground-truth liveness, the wire `GossipDirectory` summarizes
/// its own view against descriptor-age staleness.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViewHealth {
    /// Number of views summarized (live nodes).
    pub views: usize,
    /// Mean view fill (entries per view).
    pub mean_size: f64,
    /// Fraction of descriptors whose target is no longer alive (or, on
    /// the wire, stale beyond the freshness horizon). Decays toward
    /// zero after a crash wave as fresh descriptors displace stale ones.
    pub dead_entry_fraction: f64,
}
