//! Protocol event tracing: bounded per-node ring buffers of structured
//! events with JSONL export.
//!
//! The sans-io node cores ([`GossipNode`], the NEWSCAST membership node,
//! the gossip directory) record [`TraceEvent`]s into a [`TraceRing`]
//! they own, so every embedding — event simulator, thread-per-node
//! runtime, multiplexed runtime — is instrumented once and produces the
//! *same* trace for the same protocol execution. Events carry logical
//! protocol coordinates (epoch, cycle, peer), never wall-clock time, so
//! same-seed runs of different engines are byte-comparable (the
//! sim-vs-mux conformance test relies on this).
//!
//! [`GossipNode`]: https://docs.rs/epidemic-aggregation

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// What happened. The discriminant names double as the JSONL `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceKind {
    /// An aggregation exchange was initiated toward `peer`.
    ExchangeInit,
    /// An exchange finished: `detail` 0 = initiator, reply unusable;
    /// 1 = initiator, states merged; 2 = passive side, states merged.
    ExchangeComplete,
    /// A pending exchange expired unanswered (crash masking).
    ExchangeTimeout,
    /// The node entered a new epoch (`detail` 1 = γ cycles completed
    /// naturally, 0 = epidemic jump/activation).
    EpochTransition,
    /// A membership view merge absorbed `detail` descriptors from `peer`.
    ViewMerge,
    /// A bootstrap `Join` was re-sent (`detail` = attempt number).
    JoinRetry,
    /// `detail` descriptors were piggybacked onto a datagram to `peer`.
    PiggybackEmit,
}

impl TraceKind {
    /// Stable snake_case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::ExchangeInit => "exchange_init",
            TraceKind::ExchangeComplete => "exchange_complete",
            TraceKind::ExchangeTimeout => "exchange_timeout",
            TraceKind::EpochTransition => "epoch_transition",
            TraceKind::ViewMerge => "view_merge",
            TraceKind::JoinRetry => "join_retry",
            TraceKind::PiggybackEmit => "piggyback_emit",
        }
    }
}

/// One structured protocol event, in logical coordinates only — no
/// wall-clock timestamps, so traces from different engines running the
/// same seed compare byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The node this event happened on.
    pub node: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// The node's epoch when the event fired.
    pub epoch: u64,
    /// Cycles completed in that epoch when the event fired.
    pub cycle: u64,
    /// The peer involved, if any.
    pub peer: Option<u64>,
    /// Kind-specific detail (see [`TraceKind`]).
    pub detail: u64,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"node\":{},\"kind\":\"{}\",\"epoch\":{},\"cycle\":{},\"peer\":",
            self.node,
            self.kind.as_str(),
            self.epoch,
            self.cycle
        );
        match self.peer {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"detail\":{}}}", self.detail);
        out
    }
}

/// Bounded ring buffer of [`TraceEvent`]s. Capacity 0 (the default)
/// disables recording entirely — one branch per `record` call. When
/// full, the oldest event is dropped and counted, so a post-mortem
/// export states how much history it lost.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding up to `capacity` events (0 = disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceRing {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A disabled ring (capacity 0).
    pub fn disabled() -> Self {
        TraceRing::default()
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Re-sizes the ring; shrinking drops the oldest events.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Records one event (dropping the oldest when full).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

/// Writes events as JSON Lines to `path` (one object per line,
/// overwriting any existing file).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_jsonl<'a, I>(path: &Path, events: I) -> io::Result<()>
where
    I: IntoIterator<Item = &'a TraceEvent>,
{
    let mut file = io::BufWriter::new(std::fs::File::create(path)?);
    for event in events {
        file.write_all(event.to_json().as_bytes())?;
        file.write_all(b"\n")?;
    }
    file.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(node: u64, detail: u64) -> TraceEvent {
        TraceEvent {
            node,
            kind: TraceKind::ExchangeInit,
            epoch: 1,
            cycle: 2,
            peer: Some(9),
            detail,
        }
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        ring.record(ev(0, 0));
        assert!(ring.is_empty());
        assert!(!ring.is_enabled());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let mut ring = TraceRing::with_capacity(2);
        ring.record(ev(0, 0));
        ring.record(ev(0, 1));
        ring.record(ev(0, 2));
        assert_eq!(ring.dropped(), 1);
        let drained = ring.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].detail, 1);
        assert_eq!(drained[1].detail, 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let e = TraceEvent {
            node: 3,
            kind: TraceKind::EpochTransition,
            epoch: 4,
            cycle: 0,
            peer: None,
            detail: 1,
        };
        assert_eq!(
            e.to_json(),
            r#"{"node":3,"kind":"epoch_transition","epoch":4,"cycle":0,"peer":null,"detail":1}"#
        );
        assert_eq!(
            ev(1, 7).to_json(),
            r#"{"node":1,"kind":"exchange_init","epoch":1,"cycle":2,"peer":9,"detail":7}"#
        );
    }

    #[test]
    fn jsonl_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("epidemic-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_jsonl(&path, [ev(0, 0), ev(1, 1)].iter()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }
}
