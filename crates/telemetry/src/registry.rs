//! Lock-free metrics registry with Prometheus text exposition.
//!
//! A [`Registry`] hands out typed handles — [`Counter`], [`Gauge`],
//! [`Histogram`] — registered under a dotted series name plus optional
//! `(key, value)` labels. Recording through a handle is wait-free
//! (`Relaxed` atomic operations only); the registry's `Mutex` is taken
//! exclusively at registration and when enumerating series for a
//! snapshot or render. Handles are cheap to clone and share freely
//! across threads.
//!
//! A disabled registry ([`Registry::disabled`]) hands out disconnected
//! handles whose record operations are a single branch — the stub leg
//! of the telemetry-overhead A/B benchmark.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero plus one per power of two
/// (`[2^(i-1), 2^i)` for `i` in `1..=64`).
pub const BUCKETS: usize = 65;

/// The log₂ bucket a recorded value lands in: bucket 0 holds exactly 0,
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(low, high)` value bounds of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// Monotone event counter. Disconnected (default / from a disabled
/// registry) handles ignore all updates and read zero.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins floating-point gauge (stored as `f64` bits in an
/// atomic, so reads never tear).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.cell {
            cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disconnected or never set).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram of `u64` samples (latencies in µs, sizes in
/// bytes, …). The observation count is derived from the buckets at read
/// time, so a snapshot's `count` always equals the sum of its buckets —
/// no torn count/bucket pairs under concurrent recording.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        match &self.core {
            Some(core) => std::array::from_fn(|i| core.buckets[i].load(Ordering::Relaxed)),
            None => [0; BUCKETS],
        }
    }

    /// Total observations (sum of the buckets).
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Series {
    name: String,
    labels: Vec<(String, String)>,
    kind: Kind,
}

#[derive(Debug, Default)]
struct Inner {
    series: Mutex<Vec<Series>>,
}

/// A namespace of metric series. Clones share the same underlying store.
///
/// # Examples
///
/// ```
/// use epidemic_telemetry::Registry;
///
/// let registry = Registry::new();
/// let exchanges = registry.counter("agg.exchanges");
/// exchanges.add(3);
/// assert_eq!(registry.counter_value("agg.exchanges"), 3);
/// assert!(registry.render_prometheus().contains("agg_exchanges 3"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle it hands out is disconnected
    /// and records nothing (one branch per operation). This is the stub
    /// leg of the overhead benchmark.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or retrieves) the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or retrieves) the counter `name` with `labels`.
    /// Repeated registration of the same `(name, labels)` returns a
    /// handle to the same cell.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.register(
            name,
            labels,
            |kind| match kind {
                Some(Kind::Counter(c)) => Some(Arc::clone(c)),
                Some(_) => None,
                None => Some(Arc::new(AtomicU64::new(0))),
            },
            Kind::Counter,
        );
        Counter { cell }
    }

    /// Registers (or retrieves) the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or retrieves) the gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.register(
            name,
            labels,
            |kind| match kind {
                Some(Kind::Gauge(c)) => Some(Arc::clone(c)),
                Some(_) => None,
                None => Some(Arc::new(AtomicU64::new(0))),
            },
            Kind::Gauge,
        );
        Gauge { cell }
    }

    /// Registers (or retrieves) the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Registers (or retrieves) the histogram `name` with `labels`.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let core = self.register(
            name,
            labels,
            |kind| match kind {
                Some(Kind::Histogram(c)) => Some(Arc::clone(c)),
                Some(_) => None,
                None => Some(Arc::new(HistogramCore::new())),
            },
            Kind::Histogram,
        );
        Histogram { core }
    }

    /// Looks up or creates a series cell. Returns `None` (a disconnected
    /// handle) when the registry is disabled or `name` already exists
    /// with a different metric kind.
    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        reuse_or_new: impl Fn(Option<&Kind>) -> Option<Arc<T>>,
        wrap: impl Fn(Arc<T>) -> Kind,
    ) -> Option<Arc<T>> {
        let inner = self.inner.as_ref()?;
        let mut series = inner.series.lock().unwrap();
        if let Some(existing) = series
            .iter()
            .find(|s| s.name == name && labels_match(&s.labels, labels))
        {
            return reuse_or_new(Some(&existing.kind));
        }
        let cell = reuse_or_new(None)?;
        series.push(Series {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind: wrap(Arc::clone(&cell)),
        });
        Some(cell)
    }

    /// Sum of every counter registered under `name` (across labels);
    /// 0 when absent. The compatibility accessor the runtimes use to
    /// keep their legacy count structs' shapes.
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let series = inner.series.lock().unwrap();
        series
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.kind {
                Kind::Counter(c) => c.load(Ordering::Relaxed),
                _ => 0,
            })
            .sum()
    }

    /// Value of the first gauge registered under `name`, or `None`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let series = inner.series.lock().unwrap();
        series.iter().find_map(|s| match (&s.kind, s.name == name) {
            (Kind::Gauge(c), true) => Some(f64::from_bits(c.load(Ordering::Relaxed))),
            _ => None,
        })
    }

    /// Renders every series as Prometheus text exposition (format
    /// 0.0.4). Dots and dashes in series names become underscores
    /// (`agg.exchanges` → `agg_exchanges`); histograms render as
    /// cumulative `_bucket{le=…}` lines plus `_sum` / `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let Some(inner) = &self.inner else { return out };
        let series = inner.series.lock().unwrap();
        let mut order: Vec<usize> = (0..series.len()).collect();
        order.sort_by(|&a, &b| {
            (&series[a].name, &series[a].labels).cmp(&(&series[b].name, &series[b].labels))
        });
        let mut last_name: Option<&str> = None;
        for idx in order {
            let s = &series[idx];
            let name = sanitize(&s.name);
            if last_name != Some(s.name.as_str()) {
                let kind = match s.kind {
                    Kind::Counter(_) => "counter",
                    Kind::Gauge(_) => "gauge",
                    Kind::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_name = Some(s.name.as_str());
            }
            match &s.kind {
                Kind::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(&s.labels, &[]),
                        c.load(Ordering::Relaxed)
                    );
                }
                Kind::Gauge(c) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(&s.labels, &[]),
                        f64::from_bits(c.load(Ordering::Relaxed))
                    );
                }
                Kind::Histogram(core) => {
                    let counts: Vec<u64> = core
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let top = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
                    let mut cumulative = 0u64;
                    for (i, &c) in counts.iter().enumerate().take(top + 1) {
                        cumulative += c;
                        let le = bucket_bounds(i).1.to_string();
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cumulative}",
                            render_labels(&s.labels, &[("le", &le)]),
                        );
                    }
                    let total: u64 = counts.iter().sum();
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {total}",
                        render_labels(&s.labels, &[("le", "+Inf")]),
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(&s.labels, &[]),
                        core.sum.load(Ordering::Relaxed)
                    );
                    let _ = writeln!(out, "{name}_count{} {total}", render_labels(&s.labels, &[]));
                }
            }
        }
        out
    }
}

fn labels_match(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let registry = Registry::new();
        let c = registry.counter("agg.exchanges");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same cell.
        assert_eq!(registry.counter("agg.exchanges").get(), 5);
        assert_eq!(registry.counter_value("agg.exchanges"), 5);
        let g = registry.gauge("epoch.variance_reduction_rho");
        g.set(0.3033);
        assert_eq!(
            registry.gauge_value("epoch.variance_reduction_rho"),
            Some(0.3033)
        );
    }

    #[test]
    fn labeled_series_are_distinct_and_summed() {
        let registry = Registry::new();
        registry
            .counter_with("io.recv_calls", &[("backend", "batched")])
            .add(7);
        registry
            .counter_with("io.recv_calls", &[("backend", "portable")])
            .add(2);
        assert_eq!(registry.counter_value("io.recv_calls"), 9);
        let text = registry.render_prometheus();
        assert!(
            text.contains("io_recv_calls{backend=\"batched\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("io_recv_calls{backend=\"portable\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let registry = Registry::disabled();
        let c = registry.counter("x");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = registry.histogram("y");
        h.record(3);
        assert_eq!(h.count(), 0);
        assert!(registry.render_prometheus().is_empty());
        assert!(!registry.is_enabled());
    }

    #[test]
    fn kind_collision_yields_disconnected_handle() {
        let registry = Registry::new();
        registry.counter("same.name").inc();
        let g = registry.gauge("same.name");
        g.set(5.0);
        assert_eq!(g.get(), 0.0, "collision must not alias the counter cell");
        assert_eq!(registry.counter_value("same.name"), 1);
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let registry = Registry::new();
        let h = registry.histogram("timer.fire_lag_us");
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(3);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 7);
        let text = registry.render_prometheus();
        assert!(
            text.contains("# TYPE timer_fire_lag_us histogram"),
            "{text}"
        );
        assert!(
            text.contains("timer_fire_lag_us_bucket{le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("timer_fire_lag_us_bucket{le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("timer_fire_lag_us_bucket{le=\"3\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("timer_fire_lag_us_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("timer_fire_lag_us_sum 7"), "{text}");
        assert!(text.contains("timer_fire_lag_us_count 4"), "{text}");
    }
}
