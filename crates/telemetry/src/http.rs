//! Hand-rolled `/metrics` HTTP endpoint and snapshot writer.
//!
//! The build is offline (no HTTP crates), so [`MetricsServer`] is a
//! minimal std-only HTTP/1.1 responder: one background thread, a
//! non-blocking accept loop polled every few milliseconds, and a
//! Prometheus text response rendered fresh from the [`Registry`] per
//! request. Engines without a listening socket (the simulator) use
//! [`write_snapshot`] on a cadence instead.

use crate::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Writes the registry's Prometheus text rendering to `path`,
/// overwriting the previous snapshot.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_snapshot(path: &Path, registry: &Registry) -> io::Result<()> {
    std::fs::write(path, registry.render_prometheus())
}

/// A background `/metrics` endpoint serving one [`Registry`].
///
/// Bind with port 0 for an ephemeral port and read it back with
/// [`MetricsServer::addr`]. Dropping the server stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and starts serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: SocketAddr, registry: Registry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || serve(listener, registry, thread_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: TcpListener, registry: Registry, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One request per connection, served inline: the scrape
                // cadence is seconds, not thousands per second.
                let _ = respond(stream, &registry);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn respond(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head; the request line is all we
    // look at, and scrapers send no body.
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = head.split(|&b| b == b'\r').next().unwrap_or(b"");
    let not_found =
        !(request_line.starts_with(b"GET /metrics") || request_line.starts_with(b"GET / "));
    let (status, body) = if not_found {
        ("404 Not Found", String::from("not found; try /metrics\n"))
    } else {
        ("200 OK", registry.render_prometheus())
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_registry_as_prometheus_text() {
        let registry = Registry::new();
        registry.counter("agg.exchanges").add(12);
        let server = MetricsServer::bind("127.0.0.1:0".parse().unwrap(), registry.clone()).unwrap();
        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("agg_exchanges 12"), "{response}");
        // Scrapes see live values, not a bind-time snapshot.
        registry.counter("agg.exchanges").add(1);
        assert!(get(server.addr(), "/metrics").contains("agg_exchanges 13"));
        assert!(get(server.addr(), "/other").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn snapshot_writer_overwrites() {
        let registry = Registry::new();
        registry.gauge("epoch.variance_reduction_rho").set(0.25);
        let dir = std::env::temp_dir().join("epidemic-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.prom");
        write_snapshot(&path, &registry).unwrap();
        registry.gauge("epoch.variance_reduction_rho").set(0.5);
        write_snapshot(&path, &registry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("epoch_variance_reduction_rho 0.5"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
