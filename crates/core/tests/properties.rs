//! Property-based tests of the sans-io protocol node: arbitrary message
//! sequences never panic, never violate epoch monotonicity, and never
//! push scalar estimates outside the envelope of everything observed.

use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::value::InstanceMap;
use epidemic_aggregation::{InstanceSpec, InstanceState, Message, NodeConfig};
use epidemic_common::NodeId;
use proptest::prelude::*;

fn config() -> NodeConfig {
    NodeConfig::builder()
        .gamma(5)
        .cycle_length(100)
        .timeout(30)
        .instance(InstanceSpec::AVERAGE)
        .instance(InstanceSpec::count(4.0))
        .build()
        .unwrap()
}

#[derive(Debug, Clone)]
enum Action {
    Poll {
        dt: u64,
        peer: u64,
    },
    Request {
        from: u64,
        epoch: u64,
        scalar: f64,
        leader: Option<u64>,
    },
    Reply {
        from: u64,
        epoch: u64,
        scalar: f64,
    },
    Notice {
        from: u64,
        epoch: u64,
    },
    Refuse {
        from: u64,
        epoch: u64,
    },
    Garbage {
        from: u64,
        epoch: u64,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..200, 0u64..8).prop_map(|(dt, peer)| Action::Poll { dt, peer }),
        (
            0u64..8,
            0u64..6,
            -100.0f64..100.0,
            prop::option::of(0u64..8)
        )
            .prop_map(|(from, epoch, scalar, leader)| Action::Request {
                from,
                epoch,
                scalar,
                leader
            }),
        (0u64..8, 0u64..6, -100.0f64..100.0).prop_map(|(from, epoch, scalar)| Action::Reply {
            from,
            epoch,
            scalar
        }),
        (0u64..8, 0u64..6).prop_map(|(from, epoch)| Action::Notice { from, epoch }),
        (0u64..8, 0u64..6).prop_map(|(from, epoch)| Action::Refuse { from, epoch }),
        (0u64..8, 0u64..6).prop_map(|(from, epoch)| Action::Garbage { from, epoch }),
    ]
}

fn states(scalar: f64, leader: Option<u64>) -> Vec<InstanceState> {
    let map = match leader {
        Some(l) => InstanceMap::leader(l),
        None => InstanceMap::new(),
    };
    vec![InstanceState::Scalar(scalar), InstanceState::Map(map)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn node_survives_arbitrary_message_sequences(
        actions in prop::collection::vec(action_strategy(), 1..60),
        local_value in -50.0f64..50.0,
    ) {
        let mut node = GossipNode::founder(NodeId::new(0), config(), local_value, 1);
        let mut now = 0u64;
        let mut last_epoch = node.epoch();
        for action in actions {
            match action {
                Action::Poll { dt, peer } => {
                    now += dt;
                    node.poll(now, Some(NodeId::new(peer)));
                }
                Action::Request { from, epoch, scalar, leader } => {
                    node.handle(
                        &Message::request(NodeId::new(from), epoch, states(scalar, leader)),
                        now,
                    );
                }
                Action::Reply { from, epoch, scalar } => {
                    node.handle(
                        &Message::reply(NodeId::new(from), epoch, states(scalar, None)),
                        now,
                    );
                }
                Action::Notice { from, epoch } => {
                    node.handle(&Message::epoch_notice(NodeId::new(from), epoch), now);
                }
                Action::Refuse { from, epoch } => {
                    node.handle(&Message::refuse(NodeId::new(from), epoch), now);
                }
                Action::Garbage { from, epoch } => {
                    // Shape-mismatched payloads must be rejected, not merged.
                    node.handle(
                        &Message::request(
                            NodeId::new(from),
                            epoch,
                            vec![InstanceState::Map(InstanceMap::new())],
                        ),
                        now,
                    );
                }
            }
            // Epoch only ever moves forward.
            prop_assert!(node.epoch() >= last_epoch, "epoch went backwards");
            last_epoch = node.epoch();
            // Scalar estimate remains within the envelope of its own local
            // value and everything any peer could have sent (|x| <= 100).
            if let Some(est) = node.scalar_estimate(0) {
                prop_assert!(est.abs() <= 100.0 + 1e-9, "estimate escaped: {}", est);
            }
        }
        // Reports, if any, are well-formed.
        for report in node.take_reports() {
            prop_assert_eq!(report.states.len(), 2);
            prop_assert!(report.cycles_run > 0);
        }
    }

    #[test]
    fn two_nodes_always_agree_after_clean_exchange(
        a_value in -100.0f64..100.0,
        b_value in -100.0f64..100.0,
        seed in 0u64..1000,
    ) {
        let cfg = NodeConfig::builder()
            .gamma(50)
            .cycle_length(100)
            .timeout(30)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap();
        let mut a = GossipNode::founder(NodeId::new(0), cfg.clone(), a_value, seed);
        let mut b = GossipNode::founder(NodeId::new(1), cfg, b_value, seed + 1);
        let mut t = 0u64;
        let out = loop {
            t += 1;
            if let Some(out) = a.poll(t, Some(NodeId::new(1))) {
                break out;
            }
            prop_assert!(t < 10_000);
        };
        let reply = b.handle(&out.message, t).expect("reply");
        a.handle(&reply.message, t);
        let expect = (a_value + b_value) / 2.0;
        prop_assert_eq!(a.scalar_estimate(0), Some(expect));
        prop_assert_eq!(b.scalar_estimate(0), Some(expect));
    }
}
