//! Protocol instances: what a node gossips about within one epoch.
//!
//! The paper composes aggregates out of concurrent averaging instances
//! (Section 5): VARIANCE runs one instance over the values and one over
//! their squares, SUM runs an AVERAGE instance next to a COUNT instance,
//! and so on. [`InstanceSpec`] describes one such instance; every exchange
//! merges the corresponding [`InstanceState`]s of the two peers.

use crate::rule::{Rule, UpdateRule};
use crate::value::InstanceMap;

/// How a scalar instance is initialized from the node's local value at the
/// start of each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitPolicy {
    /// Start from the local value itself (AVERAGE, MIN, MAX, GEOMETRICMEAN).
    LocalValue,
    /// Start from the square of the local value (the second moment used by
    /// VARIANCE).
    SquaredLocalValue,
    /// Start from a constant, independent of the local value.
    Constant(f64),
}

impl InitPolicy {
    /// Computes the initial estimate from the node's current local value.
    pub fn initial(self, local_value: f64) -> f64 {
        match self {
            InitPolicy::LocalValue => local_value,
            InitPolicy::SquaredLocalValue => local_value * local_value,
            InitPolicy::Constant(c) => c,
        }
    }
}

/// How a node decides whether to lead a COUNT instance in a new epoch
/// (paper Section 5, COUNT: `P_lead = C / N̂`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeaderPolicy {
    /// Lead with probability `concurrency / N̂`, where `N̂` is the size
    /// estimate from the previous epoch (or the configured initial guess).
    /// Yields approximately `Poisson(concurrency)` leaders per epoch.
    Probability {
        /// Desired expected number of concurrent instances, `C`.
        concurrency: f64,
    },
    /// Always lead (used for single-leader experiments and tests).
    Always,
    /// Never lead (pure follower; leaders are designated externally).
    Never,
}

impl LeaderPolicy {
    /// Leader probability given the current network-size estimate.
    pub fn probability(self, size_estimate: f64) -> f64 {
        match self {
            LeaderPolicy::Probability { concurrency } => {
                if size_estimate > 0.0 {
                    (concurrency / size_estimate).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            }
            LeaderPolicy::Always => 1.0,
            LeaderPolicy::Never => 0.0,
        }
    }
}

/// Specification of one gossip instance running within an epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceSpec {
    /// A scalar estimate merged with `rule`, initialized by `init`.
    Scalar {
        /// Update rule applied at every exchange.
        rule: Rule,
        /// Epoch initialization policy.
        init: InitPolicy,
    },
    /// A COUNT instance map (multi-leader network size estimation).
    CountMap {
        /// Leader election policy applied at every epoch start.
        leader: LeaderPolicy,
    },
}

impl InstanceSpec {
    /// Convenience spec: plain averaging of local values.
    pub const AVERAGE: InstanceSpec = InstanceSpec::Scalar {
        rule: Rule::Average,
        init: InitPolicy::LocalValue,
    };

    /// Convenience spec: averaging of squared local values (for VARIANCE).
    pub const MEAN_OF_SQUARES: InstanceSpec = InstanceSpec::Scalar {
        rule: Rule::Average,
        init: InitPolicy::SquaredLocalValue,
    };

    /// Convenience spec: global minimum.
    pub const MIN: InstanceSpec = InstanceSpec::Scalar {
        rule: Rule::Min,
        init: InitPolicy::LocalValue,
    };

    /// Convenience spec: global maximum.
    pub const MAX: InstanceSpec = InstanceSpec::Scalar {
        rule: Rule::Max,
        init: InitPolicy::LocalValue,
    };

    /// Convenience spec: geometric mean of local values (for PRODUCT).
    pub const GEOMETRIC_MEAN: InstanceSpec = InstanceSpec::Scalar {
        rule: Rule::GeometricMean,
        init: InitPolicy::LocalValue,
    };

    /// Convenience spec: COUNT with the given expected instance count.
    pub const fn count(concurrency: f64) -> InstanceSpec {
        InstanceSpec::CountMap {
            leader: LeaderPolicy::Probability { concurrency },
        }
    }

    /// Builds the epoch-start state for this instance.
    ///
    /// `is_leader` is only consulted for [`InstanceSpec::CountMap`]; the
    /// node id becomes the instance identifier when leading.
    pub fn init_state(&self, local_value: f64, node_id: u64, is_leader: bool) -> InstanceState {
        match self {
            InstanceSpec::Scalar { init, .. } => InstanceState::Scalar(init.initial(local_value)),
            InstanceSpec::CountMap { .. } => {
                if is_leader {
                    InstanceState::Map(InstanceMap::leader(node_id))
                } else {
                    InstanceState::Map(InstanceMap::new())
                }
            }
        }
    }

    /// Merges the two exchanged states; both peers install the result.
    ///
    /// # Panics
    ///
    /// Panics if the states' shapes do not match the spec (scalar vs map) —
    /// that indicates a protocol bug, not a runtime condition.
    pub fn merge(&self, a: &InstanceState, b: &InstanceState) -> InstanceState {
        match (self, a, b) {
            (
                InstanceSpec::Scalar { rule, .. },
                InstanceState::Scalar(x),
                InstanceState::Scalar(y),
            ) => InstanceState::Scalar(rule.merge(*x, *y)),
            (InstanceSpec::CountMap { .. }, InstanceState::Map(x), InstanceState::Map(y)) => {
                InstanceState::Map(InstanceMap::merge(x, y))
            }
            _ => panic!("instance state shape mismatch for spec {self:?}"),
        }
    }
}

/// Runtime state of one instance at one node.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceState {
    /// Scalar estimate.
    Scalar(f64),
    /// COUNT instance map.
    Map(InstanceMap),
}

impl InstanceState {
    /// The scalar estimate, or `None` for a map state.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            InstanceState::Scalar(v) => Some(*v),
            InstanceState::Map(_) => None,
        }
    }

    /// The instance map, or `None` for a scalar state.
    pub fn as_map(&self) -> Option<&InstanceMap> {
        match self {
            InstanceState::Scalar(_) => None,
            InstanceState::Map(m) => Some(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_policies() {
        assert_eq!(InitPolicy::LocalValue.initial(3.0), 3.0);
        assert_eq!(InitPolicy::SquaredLocalValue.initial(3.0), 9.0);
        assert_eq!(InitPolicy::Constant(7.5).initial(3.0), 7.5);
    }

    #[test]
    fn leader_probabilities() {
        let p = LeaderPolicy::Probability { concurrency: 10.0 };
        assert!((p.probability(1000.0) - 0.01).abs() < 1e-12);
        assert_eq!(p.probability(5.0), 1.0); // clamped
        assert_eq!(p.probability(0.0), 1.0); // degenerate estimate
        assert_eq!(LeaderPolicy::Always.probability(1e9), 1.0);
        assert_eq!(LeaderPolicy::Never.probability(10.0), 0.0);
    }

    #[test]
    fn scalar_init_and_merge() {
        let spec = InstanceSpec::AVERAGE;
        let a = spec.init_state(4.0, 0, false);
        let b = spec.init_state(8.0, 1, false);
        assert_eq!(spec.merge(&a, &b), InstanceState::Scalar(6.0));
    }

    #[test]
    fn mean_of_squares_init() {
        let spec = InstanceSpec::MEAN_OF_SQUARES;
        assert_eq!(spec.init_state(3.0, 0, false), InstanceState::Scalar(9.0));
    }

    #[test]
    fn count_map_init_respects_leadership() {
        let spec = InstanceSpec::count(5.0);
        let leader = spec.init_state(0.0, 42, true);
        let follower = spec.init_state(0.0, 43, false);
        assert_eq!(leader.as_map().unwrap().get(42), Some(1.0));
        assert!(follower.as_map().unwrap().is_empty());
    }

    #[test]
    fn count_map_merge_halves() {
        let spec = InstanceSpec::count(5.0);
        let leader = spec.init_state(0.0, 42, true);
        let follower = spec.init_state(0.0, 43, false);
        let merged = spec.merge(&leader, &follower);
        assert_eq!(merged.as_map().unwrap().get(42), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_shape_mismatch() {
        let spec = InstanceSpec::AVERAGE;
        spec.merge(
            &InstanceState::Scalar(1.0),
            &InstanceState::Map(InstanceMap::new()),
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(InstanceState::Scalar(2.0).as_scalar(), Some(2.0));
        assert!(InstanceState::Scalar(2.0).as_map().is_none());
        let m = InstanceState::Map(InstanceMap::leader(1));
        assert!(m.as_scalar().is_none());
        assert_eq!(m.as_map().unwrap().len(), 1);
    }

    #[test]
    fn min_max_specs_converge_to_extremes() {
        let min_spec = InstanceSpec::MIN;
        let a = min_spec.init_state(4.0, 0, false);
        let b = min_spec.init_state(-2.0, 1, false);
        assert_eq!(min_spec.merge(&a, &b), InstanceState::Scalar(-2.0));

        let max_spec = InstanceSpec::MAX;
        assert_eq!(max_spec.merge(&a, &b), InstanceState::Scalar(4.0));
    }
}
