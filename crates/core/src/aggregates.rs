//! High-level aggregate catalogue (paper Section 5).
//!
//! The paper composes every aggregate out of a handful of concurrent
//! averaging instances. [`AggregateKind`] packages those recipes: it knows
//! which [`InstanceSpec`]s an aggregate needs and how to read the result
//! back out of an [`EpochReport`], so applications do not have to wire the
//! composition by hand.
//!
//! | aggregate | instances gossiped | extraction |
//! |-----------|-------------------|------------|
//! | `Average` | avg(x) | the scalar itself |
//! | `Minimum`/`Maximum` | min(x) / max(x) | the scalar itself |
//! | `Count` | instance map | trimmed mean of per-leader `1/e` |
//! | `Sum` | avg(x) + map | `avg × count` |
//! | `Variance` | avg(x) + avg(x²) | `E[x²] − E[x]²` |
//! | `GeometricMean` | geo(x) | the scalar itself |
//! | `Product` | geo(x) + map | `geo ^ count` (log space) |
//!
//! # Examples
//!
//! ```
//! use epidemic_aggregation::aggregates::AggregateKind;
//! use epidemic_aggregation::NodeConfig;
//!
//! let kind = AggregateKind::Variance;
//! let mut builder = NodeConfig::builder();
//! builder.gamma(30).cycle_length(1_000).timeout(200);
//! for spec in kind.instances(20.0) {
//!     builder.instance(spec);
//! }
//! let config = builder.build()?;
//! assert_eq!(config.instances().len(), 2);
//! # Ok::<(), epidemic_aggregation::ConfigError>(())
//! ```

use crate::estimator;
use crate::instance::InstanceSpec;
use crate::report::EpochReport;
use std::fmt;

/// The aggregation functions of Section 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    /// Arithmetic mean of the local values.
    Average,
    /// Global minimum.
    Minimum,
    /// Global maximum.
    Maximum,
    /// Network size.
    Count,
    /// Sum of the local values (= average × count).
    Sum,
    /// Population variance of the local values.
    Variance,
    /// Geometric mean of the (positive) local values.
    GeometricMean,
    /// Product of the (positive) local values (= geomean ^ count).
    Product,
}

impl AggregateKind {
    /// All aggregate kinds, in catalogue order.
    pub const ALL: [AggregateKind; 8] = [
        AggregateKind::Average,
        AggregateKind::Minimum,
        AggregateKind::Maximum,
        AggregateKind::Count,
        AggregateKind::Sum,
        AggregateKind::Variance,
        AggregateKind::GeometricMean,
        AggregateKind::Product,
    ];

    /// The gossip instances this aggregate needs, in the order
    /// [`AggregateKind::extract`] expects them in the epoch report.
    /// `count_concurrency` is the `C` of `P_lead = C/N̂` for aggregates
    /// that need a COUNT instance.
    pub fn instances(self, count_concurrency: f64) -> Vec<InstanceSpec> {
        match self {
            AggregateKind::Average => vec![InstanceSpec::AVERAGE],
            AggregateKind::Minimum => vec![InstanceSpec::MIN],
            AggregateKind::Maximum => vec![InstanceSpec::MAX],
            AggregateKind::Count => vec![InstanceSpec::count(count_concurrency)],
            AggregateKind::Sum => vec![
                InstanceSpec::AVERAGE,
                InstanceSpec::count(count_concurrency),
            ],
            AggregateKind::Variance => {
                vec![InstanceSpec::AVERAGE, InstanceSpec::MEAN_OF_SQUARES]
            }
            AggregateKind::GeometricMean => vec![InstanceSpec::GEOMETRIC_MEAN],
            AggregateKind::Product => vec![
                InstanceSpec::GEOMETRIC_MEAN,
                InstanceSpec::count(count_concurrency),
            ],
        }
    }

    /// Extracts the aggregate's value from an epoch report whose instances
    /// were configured by [`AggregateKind::instances`] (at the given
    /// offset, so several aggregates can share one report).
    ///
    /// Returns `None` if the report lacks the needed instances or no COUNT
    /// mass reached this node.
    pub fn extract(self, report: &EpochReport, offset: usize) -> Option<f64> {
        match self {
            AggregateKind::Average
            | AggregateKind::Minimum
            | AggregateKind::Maximum
            | AggregateKind::GeometricMean => report.scalar(offset),
            AggregateKind::Count => report.map(offset).and_then(estimator::count_estimate),
            AggregateKind::Sum => {
                let avg = report.scalar(offset)?;
                let count = report.map(offset + 1).and_then(estimator::count_estimate)?;
                Some(estimator::sum_estimate(avg, count))
            }
            AggregateKind::Variance => {
                let avg = report.scalar(offset)?;
                let avg_sq = report.scalar(offset + 1)?;
                Some(estimator::variance_estimate(avg, avg_sq))
            }
            AggregateKind::Product => {
                let geo = report.scalar(offset)?;
                let count = report.map(offset + 1).and_then(estimator::count_estimate)?;
                if geo < 0.0 {
                    return None;
                }
                Some(estimator::product_estimate(geo, count))
            }
        }
    }

    /// Number of instances this aggregate occupies in a report.
    pub fn instance_count(self) -> usize {
        match self {
            AggregateKind::Average
            | AggregateKind::Minimum
            | AggregateKind::Maximum
            | AggregateKind::Count
            | AggregateKind::GeometricMean => 1,
            AggregateKind::Sum | AggregateKind::Variance | AggregateKind::Product => 2,
        }
    }

    /// Ground-truth computation over a value set, for verification.
    ///
    /// Returns `None` where the aggregate is undefined (empty input, or
    /// non-positive values for the geometric family).
    pub fn compute_exact(self, values: &[f64]) -> Option<f64> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        match self {
            AggregateKind::Average => Some(values.iter().sum::<f64>() / n),
            AggregateKind::Minimum => Some(values.iter().copied().fold(f64::INFINITY, f64::min)),
            AggregateKind::Maximum => {
                Some(values.iter().copied().fold(f64::NEG_INFINITY, f64::max))
            }
            AggregateKind::Count => Some(n),
            AggregateKind::Sum => Some(values.iter().sum()),
            AggregateKind::Variance => {
                let mean = values.iter().sum::<f64>() / n;
                Some(values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n)
            }
            AggregateKind::GeometricMean => {
                if values.iter().any(|&v| v <= 0.0) {
                    return None;
                }
                Some((values.iter().map(|v| v.ln()).sum::<f64>() / n).exp())
            }
            AggregateKind::Product => {
                if values.iter().any(|&v| v <= 0.0) {
                    return None;
                }
                Some(values.iter().map(|v| v.ln()).sum::<f64>().exp())
            }
        }
    }
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AggregateKind::Average => "average",
            AggregateKind::Minimum => "minimum",
            AggregateKind::Maximum => "maximum",
            AggregateKind::Count => "count",
            AggregateKind::Sum => "sum",
            AggregateKind::Variance => "variance",
            AggregateKind::GeometricMean => "geometric-mean",
            AggregateKind::Product => "product",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceState;
    use crate::value::InstanceMap;

    fn report_with(states: Vec<InstanceState>) -> EpochReport {
        EpochReport {
            epoch: 1,
            cycles_run: 30,
            states,
        }
    }

    #[test]
    fn instance_recipes_have_documented_arity() {
        for kind in AggregateKind::ALL {
            assert_eq!(
                kind.instances(10.0).len(),
                kind.instance_count(),
                "{kind} arity mismatch"
            );
        }
    }

    #[test]
    fn scalar_extraction() {
        let report = report_with(vec![InstanceState::Scalar(4.5)]);
        assert_eq!(AggregateKind::Average.extract(&report, 0), Some(4.5));
        assert_eq!(AggregateKind::Minimum.extract(&report, 0), Some(4.5));
        assert_eq!(AggregateKind::Average.extract(&report, 3), None);
    }

    #[test]
    fn count_extraction() {
        let report = report_with(vec![InstanceState::Map(InstanceMap::from_entries([
            (1, 0.01),
            (2, 0.0125),
        ]))]);
        let count = AggregateKind::Count.extract(&report, 0).unwrap();
        assert!((count - 90.0).abs() < 1e-9); // mean of 100 and 80
    }

    #[test]
    fn sum_extraction_composes() {
        let report = report_with(vec![
            InstanceState::Scalar(2.5),
            InstanceState::Map(InstanceMap::from_entries([(1, 0.01)])),
        ]);
        assert_eq!(AggregateKind::Sum.extract(&report, 0), Some(250.0));
    }

    #[test]
    fn variance_extraction_composes() {
        let report = report_with(vec![
            InstanceState::Scalar(3.0),
            InstanceState::Scalar(13.0),
        ]);
        let v = AggregateKind::Variance.extract(&report, 0).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn product_extraction_composes() {
        let report = report_with(vec![
            InstanceState::Scalar(2.0),
            InstanceState::Map(InstanceMap::from_entries([(1, 0.1)])),
        ]);
        let p = AggregateKind::Product.extract(&report, 0).unwrap();
        assert!((p - 1024.0).abs() < 1e-6); // 2^10
    }

    #[test]
    fn extraction_with_offset() {
        // Average and Variance sharing one report.
        let report = report_with(vec![
            InstanceState::Scalar(1.0),  // average's instance
            InstanceState::Scalar(3.0),  // variance's avg
            InstanceState::Scalar(13.0), // variance's avg_sq
        ]);
        assert_eq!(AggregateKind::Average.extract(&report, 0), Some(1.0));
        assert_eq!(AggregateKind::Variance.extract(&report, 1), Some(4.0));
    }

    #[test]
    fn missing_count_mass_yields_none() {
        let report = report_with(vec![
            InstanceState::Scalar(2.5),
            InstanceState::Map(InstanceMap::new()),
        ]);
        assert_eq!(AggregateKind::Sum.extract(&report, 0), None);
    }

    #[test]
    fn compute_exact_ground_truths() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(AggregateKind::Average.compute_exact(&values), Some(2.5));
        assert_eq!(AggregateKind::Minimum.compute_exact(&values), Some(1.0));
        assert_eq!(AggregateKind::Maximum.compute_exact(&values), Some(4.0));
        assert_eq!(AggregateKind::Count.compute_exact(&values), Some(4.0));
        assert_eq!(AggregateKind::Sum.compute_exact(&values), Some(10.0));
        let var = AggregateKind::Variance.compute_exact(&values).unwrap();
        assert!((var - 1.25).abs() < 1e-12);
        let gm = AggregateKind::GeometricMean.compute_exact(&values).unwrap();
        assert!((gm - 24.0f64.powf(0.25)).abs() < 1e-12);
        let product = AggregateKind::Product.compute_exact(&values).unwrap();
        assert!((product - 24.0).abs() < 1e-9); // log-space round-trip
    }

    #[test]
    fn compute_exact_edge_cases() {
        assert_eq!(AggregateKind::Average.compute_exact(&[]), None);
        assert_eq!(
            AggregateKind::GeometricMean.compute_exact(&[1.0, -2.0]),
            None
        );
        assert_eq!(AggregateKind::Product.compute_exact(&[0.0]), None);
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = AggregateKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "average",
                "minimum",
                "maximum",
                "count",
                "sum",
                "variance",
                "geometric-mean",
                "product"
            ]
        );
    }
}
