//! The sans-io gossip node state machine.
//!
//! [`GossipNode`] implements the *practical* protocol of Section 4: the
//! push-pull exchange kernel plus automatic restart in epochs of γ cycles,
//! epidemic epoch synchronization, deferred participation for joiners, and
//! exchange timeouts. It performs no I/O and holds no clock: the embedding
//! (the event-driven simulator in `epidemic-sim`, or the UDP runtime in
//! `epidemic-net`) calls [`GossipNode::poll`] with the current time and a
//! peer candidate, delivers incoming messages through
//! [`GossipNode::handle`], and transmits whatever [`Outbound`] messages
//! come back.
//!
//! # Lifecycle
//!
//! ```text
//!            poll(now, peer)                 handle(msg, now)
//!   timer ──────────────────▶ Request ──▶ peer ──▶ Reply ──▶ merge
//!     │                                     │
//!     │ γ cycles elapsed                    │ epoch j > i seen
//!     ▼                                     ▼
//!  EpochReport + restart            jump to epoch j (re-init)
//! ```

use crate::config::NodeConfig;
use crate::instance::{InstanceSpec, InstanceState, LeaderPolicy};
use crate::message::{Message, MessageBody};
use crate::report::EpochReport;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use epidemic_telemetry::{TraceEvent, TraceKind, TraceRing};

/// A message together with its destination.
#[derive(Debug, Clone, PartialEq)]
pub struct Outbound {
    /// Destination node.
    pub to: NodeId,
    /// Message to deliver.
    pub message: Message,
}

/// Object-safe source of gossip partners — the paper's `GETNEIGHBOR()`.
///
/// [`GossipNode::poll_with`] takes a closure, which is ideal for ad-hoc
/// embeddings but cannot be stored behind a trait object. Membership
/// services that live as long as the node (a static peer table, a
/// NEWSCAST view, …) implement this trait instead and plug into
/// [`GossipNode::poll_sampler`]; the node still draws lazily, exactly one
/// draw per initiated exchange.
pub trait PeerSampler {
    /// Draws one exchange partner, or `None` when no peer is known.
    ///
    /// Called only when an exchange is actually initiated, so stateful
    /// samplers may treat every call as consumed randomness.
    fn draw_peer(&mut self) -> Option<NodeId>;
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    peer: NodeId,
    epoch: u64,
    expires_at: u64,
}

/// Sans-io state machine for one aggregation node.
///
/// # Examples
///
/// Two nodes driven by hand through one exchange:
///
/// ```
/// use epidemic_aggregation::{GossipNode, InstanceSpec, NodeConfig};
/// use epidemic_common::NodeId;
///
/// let config = NodeConfig::builder()
///     .gamma(10)
///     .cycle_length(100)
///     .timeout(30)
///     .instance(InstanceSpec::AVERAGE)
///     .build()?;
/// let mut a = GossipNode::founder(NodeId::new(0), config.clone(), 8.0, 1);
/// let mut b = GossipNode::founder(NodeId::new(1), config, 2.0, 2);
///
/// // Drive a's timer until it initiates towards b.
/// let mut t = 0;
/// let request = loop {
///     if let Some(out) = a.poll(t, Some(NodeId::new(1))) { break out; }
///     t += 1;
/// };
/// let reply = b.handle(&request.message, t).expect("b replies");
/// a.handle(&reply.message, t);
/// assert_eq!(a.scalar_estimate(0), Some(5.0));
/// assert_eq!(b.scalar_estimate(0), Some(5.0));
/// # Ok::<(), epidemic_aggregation::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GossipNode {
    id: NodeId,
    config: NodeConfig,
    rng: Xoshiro256,
    local_value: f64,
    epoch: u64,
    activation_epoch: u64,
    /// Tick at which a still-waiting joiner unilaterally enters its
    /// activation epoch (the "time until next epoch" hint of Section 4.2).
    activation_at: Option<u64>,
    active: bool,
    cycles_run: u32,
    states: Vec<InstanceState>,
    size_estimate: f64,
    next_cycle_at: u64,
    pending: Option<Pending>,
    reports: Vec<EpochReport>,
    /// Protocol event trace (disabled unless the embedding opts in via
    /// [`GossipNode::set_trace_capacity`]). Events carry only logical
    /// coordinates, so same-seed runs under different embeddings
    /// produce identical traces.
    trace: TraceRing,
}

impl GossipNode {
    /// Creates a founding member: a node present at system start, active in
    /// epoch 0. The first cycle fires within one cycle length (random
    /// phase, so nodes do not tick in lockstep).
    pub fn founder(id: NodeId, config: NodeConfig, local_value: f64, seed: u64) -> Self {
        let mut rng = Xoshiro256::stream(seed, id.as_u64());
        let phase = rng.next_below(config.cycle_length());
        let mut node = GossipNode {
            id,
            size_estimate: config.initial_size_guess(),
            config,
            rng,
            local_value,
            epoch: 0,
            activation_epoch: 0,
            activation_at: None,
            active: true,
            cycles_run: 0,
            states: Vec::new(),
            next_cycle_at: phase,
            pending: None,
            reports: Vec::new(),
            trace: TraceRing::disabled(),
        };
        node.init_epoch_states();
        node
    }

    /// Creates a node joining a running system (Section 4.2). The contacted
    /// member supplied the running epoch identifier `current_epoch` and the
    /// tick `next_epoch_at` when the next epoch is expected to start; the
    /// joiner refuses exchanges until then (or until it observes a message
    /// from a newer epoch, whichever happens first).
    pub fn joiner(
        id: NodeId,
        config: NodeConfig,
        local_value: f64,
        seed: u64,
        current_epoch: u64,
        next_epoch_at: u64,
    ) -> Self {
        let mut rng = Xoshiro256::stream(seed, id.as_u64());
        let phase = rng.next_below(config.cycle_length());
        GossipNode {
            id,
            size_estimate: config.initial_size_guess(),
            config,
            rng,
            local_value,
            epoch: current_epoch,
            activation_epoch: current_epoch + 1,
            activation_at: Some(next_epoch_at),
            active: false,
            cycles_run: 0,
            states: Vec::new(),
            next_cycle_at: next_epoch_at + phase,
            pending: None,
            reports: Vec::new(),
            trace: TraceRing::disabled(),
        }
    }

    /// Enables protocol event tracing with a ring of `capacity` events
    /// (0 disables). See [`TraceRing`].
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Drains the traced protocol events recorded since the last call.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Records one protocol event at the node's current logical
    /// coordinates. A disabled ring makes this one branch.
    fn record(&mut self, kind: TraceKind, peer: Option<NodeId>, detail: u64) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent {
            node: self.id.as_u64(),
            kind,
            epoch: self.epoch,
            cycle: u64::from(self.cycles_run),
            peer: peer.map(|p| p.as_u64()),
            detail,
        });
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Epoch the node currently participates in (or waits for).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns `true` once the node participates in the running epoch.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Cycles completed in the current epoch.
    pub fn cycles_run(&self) -> u32 {
        self.cycles_run
    }

    /// Current scalar estimate of instance `idx`, if active and scalar.
    pub fn scalar_estimate(&self, idx: usize) -> Option<f64> {
        if !self.active {
            return None;
        }
        self.states.get(idx).and_then(InstanceState::as_scalar)
    }

    /// Latest network-size estimate (from the last completed COUNT epoch,
    /// or the configured initial guess).
    pub fn size_estimate(&self) -> f64 {
        self.size_estimate
    }

    /// Updates the local value. Takes effect at the next epoch
    /// initialization — running epochs keep aggregating over the values
    /// they started from, which is what makes every epoch's output a
    /// consistent snapshot.
    pub fn set_local_value(&mut self, value: f64) {
        self.local_value = value;
    }

    /// Current local value.
    pub fn local_value(&self) -> f64 {
        self.local_value
    }

    /// Drains the epoch reports accumulated since the last call.
    pub fn take_reports(&mut self) -> Vec<EpochReport> {
        std::mem::take(&mut self.reports)
    }

    /// Tick (in this node's local clock) at which the next cycle fires.
    pub fn next_cycle_at(&self) -> u64 {
        self.next_cycle_at
    }

    /// The earliest local tick at which this node needs to be polled again:
    /// the next cycle, a pending-exchange timeout, or a scheduled joiner
    /// activation, whichever comes first. Embeddings use this to schedule
    /// wake-ups instead of polling continuously.
    pub fn next_deadline(&self) -> u64 {
        let mut deadline = self.next_cycle_at;
        if let Some(p) = self.pending {
            deadline = deadline.min(p.expires_at);
        }
        if let (false, Some(at)) = (self.active, self.activation_at) {
            deadline = deadline.min(at);
        }
        deadline
    }

    /// Advances timers to `now`. If a cycle boundary passed, initiates a
    /// push-pull exchange with `peer` (the embedding's `GETNEIGHBOR()`
    /// result) and returns the request to transmit.
    ///
    /// Also expires a pending exchange whose timeout passed (the paper's
    /// crash masking: the exchange is simply skipped) and performs the
    /// scheduled epoch activation of a joiner.
    pub fn poll(&mut self, now: u64, peer: Option<NodeId>) -> Option<Outbound> {
        self.poll_with(now, || peer)
    }

    /// [`poll`](Self::poll) with *lazy* peer selection: `choose_peer` is
    /// invoked only when a cycle boundary actually fired and an exchange
    /// will be initiated.
    ///
    /// This is the entry point for embeddings that drive many nodes as
    /// continuation-style state machines (the multiplexed UDP runtime):
    /// wake-ups triggered by timeouts or activations must not consume
    /// `GETNEIGHBOR()` randomness, so that the sequence of peers a node
    /// contacts is a deterministic function of its cycle count alone —
    /// independent of how often the embedding polls.
    pub fn poll_with<F>(&mut self, now: u64, choose_peer: F) -> Option<Outbound>
    where
        F: FnOnce() -> Option<NodeId>,
    {
        if let Some(p) = self.pending {
            if p.expires_at <= now {
                self.pending = None;
                self.record(TraceKind::ExchangeTimeout, Some(p.peer), 0);
            }
        }
        if let (false, Some(at)) = (self.active, self.activation_at) {
            if now >= at {
                self.enter_epoch(self.activation_epoch);
            }
        }
        let mut initiate = false;
        while now >= self.next_cycle_at {
            self.next_cycle_at += self.config.cycle_length();
            if self.active {
                self.complete_cycle();
                initiate = true;
            }
        }
        if !initiate || !self.active {
            return None;
        }
        // One in-flight exchange at a time; while the previous one is
        // awaiting its reply or timeout, do not even draw a peer (the
        // draw sequence must stay a function of initiated exchanges).
        if self.pending.is_some() {
            return None;
        }
        let peer = choose_peer()?;
        if peer == self.id {
            return None;
        }
        self.pending = Some(Pending {
            peer,
            epoch: self.epoch,
            expires_at: now + self.config.timeout(),
        });
        self.record(TraceKind::ExchangeInit, Some(peer), 0);
        Some(Outbound {
            to: peer,
            message: Message::request(self.id, self.epoch, self.states.clone()),
        })
    }

    /// [`poll_with`](Self::poll_with) over a long-lived [`PeerSampler`]
    /// instead of a closure — the form used by runtimes whose
    /// `GETNEIGHBOR()` is a pluggable membership service (see
    /// `epidemic-net`'s `PeerDirectory`). Identical draw semantics: the
    /// sampler is consulted exactly once per initiated exchange.
    pub fn poll_sampler(&mut self, now: u64, sampler: &mut dyn PeerSampler) -> Option<Outbound> {
        self.poll_with(now, || sampler.draw_peer())
    }

    /// Processes an incoming message, possibly producing a response.
    pub fn handle(&mut self, msg: &Message, _now: u64) -> Option<Outbound> {
        match &msg.body {
            MessageBody::Request(remote_states) => self.handle_request(msg, remote_states),
            MessageBody::Reply(remote_states) => {
                self.handle_reply(msg, remote_states);
                None
            }
            MessageBody::EpochNotice => {
                self.clear_pending_for(msg.from);
                self.maybe_jump(msg.epoch);
                None
            }
            MessageBody::Refuse => {
                self.clear_pending_for(msg.from);
                None
            }
        }
    }

    fn handle_request(&mut self, msg: &Message, remote: &[InstanceState]) -> Option<Outbound> {
        if msg.epoch > self.epoch {
            self.maybe_jump(msg.epoch);
        }
        if msg.epoch < self.epoch {
            // The sender lags; pull it forward epidemically (Section 4.3).
            return Some(Outbound {
                to: msg.from,
                message: Message::epoch_notice(self.id, self.epoch),
            });
        }
        if !self.active || msg.epoch != self.epoch {
            // Either we are a joiner refusing the running epoch, or the
            // jump above was blocked by our activation epoch.
            return Some(Outbound {
                to: msg.from,
                message: Message::refuse(self.id, self.epoch),
            });
        }
        if !self.states_compatible(remote) {
            // Differently-configured (or buggy) peer: decline rather than
            // corrupt our state. A refusal also clears the peer's pending
            // exchange promptly.
            return Some(Outbound {
                to: msg.from,
                message: Message::refuse(self.id, self.epoch),
            });
        }
        let reply = Message::reply(self.id, self.epoch, self.states.clone());
        self.merge_states(remote);
        self.record(TraceKind::ExchangeComplete, Some(msg.from), 2);
        Some(Outbound {
            to: msg.from,
            message: reply,
        })
    }

    fn handle_reply(&mut self, msg: &Message, remote: &[InstanceState]) {
        let Some(p) = self.pending else {
            return; // timed out earlier; drop the late reply (Section 4.2)
        };
        if p.peer != msg.from {
            return;
        }
        self.pending = None;
        if msg.epoch > self.epoch {
            self.record(TraceKind::ExchangeComplete, Some(msg.from), 0);
            self.maybe_jump(msg.epoch);
            return; // states belong to different epochs: no merge
        }
        if msg.epoch == self.epoch
            && p.epoch == self.epoch
            && self.active
            && self.states_compatible(remote)
        {
            self.merge_states(remote);
            self.record(TraceKind::ExchangeComplete, Some(msg.from), 1);
        } else {
            self.record(TraceKind::ExchangeComplete, Some(msg.from), 0);
        }
    }

    /// Shape-checks a remote state vector against our configuration.
    fn states_compatible(&self, remote: &[InstanceState]) -> bool {
        remote.len() == self.states.len()
            && self
                .config
                .instances()
                .iter()
                .zip(remote)
                .all(|(spec, state)| {
                    matches!(
                        (spec, state),
                        (InstanceSpec::Scalar { .. }, InstanceState::Scalar(_))
                            | (InstanceSpec::CountMap { .. }, InstanceState::Map(_))
                    )
                })
    }

    fn clear_pending_for(&mut self, peer: NodeId) {
        if let Some(p) = self.pending {
            if p.peer == peer {
                self.pending = None;
            }
        }
    }

    /// Jumps to epoch `epoch` if it is newer, activating if permitted.
    /// State of the abandoned epoch is discarded (the node was too slow;
    /// its unfinished estimate would be misleading). No-op when epoch
    /// synchronization is disabled (ablation only).
    fn maybe_jump(&mut self, epoch: u64) {
        if self.config.epoch_sync() && epoch > self.epoch {
            self.enter_epoch(epoch);
        }
    }

    fn enter_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.cycles_run = 0;
        self.pending = None;
        if self.epoch >= self.activation_epoch {
            self.active = true;
            self.activation_at = None;
            self.init_epoch_states();
        }
        self.record(TraceKind::EpochTransition, None, 0);
    }

    /// Counts one completed cycle; at γ the epoch's states are reported and
    /// the next epoch starts from fresh local values (Section 4.1).
    fn complete_cycle(&mut self) {
        self.cycles_run += 1;
        if self.cycles_run >= self.config.gamma() {
            let report = EpochReport {
                epoch: self.epoch,
                cycles_run: self.cycles_run,
                states: self.states.clone(),
            };
            if let Some(estimate) = report.count_estimate() {
                self.size_estimate = estimate;
            }
            self.reports.push(report);
            self.epoch += 1;
            self.cycles_run = 0;
            self.pending = None;
            self.init_epoch_states();
            self.record(TraceKind::EpochTransition, None, 1);
        }
    }

    fn init_epoch_states(&mut self) {
        let size_estimate = self.size_estimate;
        // Collect leader decisions first: instance specs are immutable
        // config, but the election consumes randomness.
        let decisions: Vec<bool> = self
            .config
            .instances()
            .iter()
            .map(|spec| match spec {
                InstanceSpec::CountMap { leader } => {
                    let p = leader.probability(size_estimate);
                    self.rng.next_bool(p)
                }
                InstanceSpec::Scalar { .. } => false,
            })
            .collect();
        self.states = self
            .config
            .instances()
            .iter()
            .zip(decisions)
            .map(|(spec, is_leader)| spec.init_state(self.local_value, self.id.as_u64(), is_leader))
            .collect();
    }

    fn merge_states(&mut self, remote: &[InstanceState]) {
        debug_assert_eq!(remote.len(), self.states.len(), "instance count mismatch");
        for ((spec, local), remote) in self
            .config
            .instances()
            .iter()
            .zip(self.states.iter_mut())
            .zip(remote.iter())
        {
            *local = spec.merge(local, remote);
        }
    }
}

/// Returns `true` if the [`LeaderPolicy`] would make this node lead with
/// certainty — exposed for embeddings that pin leaders externally.
pub fn always_leads(policy: LeaderPolicy) -> bool {
    matches!(policy, LeaderPolicy::Always)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceSpec;

    fn config(gamma: u32) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(100)
            .timeout(30)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    fn drive_exchange(a: &mut GossipNode, b: &mut GossipNode, t: &mut u64) {
        loop {
            *t += 1;
            if let Some(out) = a.poll(*t, Some(b.id())) {
                if let Some(reply) = b.handle(&out.message, *t) {
                    a.handle(&reply.message, *t);
                }
                return;
            }
        }
    }

    #[test]
    fn founder_initializes_from_local_value() {
        let node = GossipNode::founder(NodeId::new(0), config(10), 7.5, 1);
        assert!(node.is_active());
        assert_eq!(node.epoch(), 0);
        assert_eq!(node.scalar_estimate(0), Some(7.5));
    }

    #[test]
    fn exchange_averages_both_sides() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 8.0, 1);
        let mut b = GossipNode::founder(NodeId::new(1), config(10), 2.0, 2);
        let mut t = 0;
        drive_exchange(&mut a, &mut b, &mut t);
        assert_eq!(a.scalar_estimate(0), Some(5.0));
        assert_eq!(b.scalar_estimate(0), Some(5.0));
    }

    #[test]
    fn poll_without_peer_does_not_initiate() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        for t in 0..500 {
            assert!(a.poll(t, None).is_none());
        }
        // Cycles still advance (epochs must not stall when isolated).
        assert!(a.cycles_run() > 0 || a.epoch() > 0);
    }

    #[test]
    fn poll_never_initiates_to_self() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        for t in 0..500 {
            assert!(a.poll(t, Some(NodeId::new(0))).is_none());
        }
    }

    #[test]
    fn poll_with_draws_peer_only_on_initiation() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut draws = 0;
        // Repolling the same instant must not re-draw: only the poll that
        // crosses a cycle boundary (and has no pending exchange) consumes
        // a peer.
        let mut t = 0;
        let mut initiations = 0;
        while initiations == 0 {
            t += 1;
            for _ in 0..3 {
                if a.poll_with(t, || {
                    draws += 1;
                    Some(NodeId::new(1))
                })
                .is_some()
                {
                    initiations += 1;
                }
            }
        }
        assert_eq!(draws, 1, "peer drawn {draws} times for 1 initiation");
        // Driving through several more cycles with replies never arriving:
        // exactly one draw per initiated exchange, none for the wake-ups
        // that only expired timeouts.
        for _ in 0..5 {
            t += 100; // one cycle length; the previous exchange timed out
            a.poll_with(t, || {
                draws += 1;
                Some(NodeId::new(1))
            });
        }
        assert_eq!(draws, 6, "timeout wake-ups consumed peer draws");
    }

    #[test]
    fn poll_sampler_matches_poll_with() {
        struct Fixed(u64, usize);
        impl PeerSampler for Fixed {
            fn draw_peer(&mut self) -> Option<NodeId> {
                self.1 += 1;
                Some(NodeId::new(self.0))
            }
        }
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut b = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut sampler = Fixed(1, 0);
        for t in 0..500 {
            let via_sampler = a.poll_sampler(t, &mut sampler);
            let via_closure = b.poll_with(t, || Some(NodeId::new(1)));
            assert_eq!(via_sampler, via_closure);
        }
        // Lazy draws survive the indirection: one draw per initiation.
        let initiated = 500 / 100; // cycle length 100
        assert!(sampler.1 <= initiated + 1, "drew {} times", sampler.1);
    }

    #[test]
    fn epoch_completes_after_gamma_cycles() {
        let mut a = GossipNode::founder(NodeId::new(0), config(3), 4.0, 1);
        let mut t = 0;
        while a.take_reports().is_empty() {
            t += 1;
            a.poll(t, None);
            assert!(t < 10_000, "epoch never completed");
        }
        assert_eq!(a.epoch(), 1);
    }

    #[test]
    fn report_carries_final_state() {
        let mut a = GossipNode::founder(NodeId::new(0), config(2), 4.0, 1);
        let mut b = GossipNode::founder(NodeId::new(1), config(2), 8.0, 2);
        let mut t = 0;
        for _ in 0..8 {
            drive_exchange(&mut a, &mut b, &mut t);
        }
        let reports = a.take_reports();
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.cycles_run, 2);
            let v = r.scalar(0).unwrap();
            assert!((v - 6.0).abs() < 1e-9, "epoch output {v}");
        }
    }

    #[test]
    fn new_epoch_reinitializes_from_local_value() {
        let mut a = GossipNode::founder(NodeId::new(0), config(2), 4.0, 1);
        a.set_local_value(100.0);
        let mut t = 0;
        while a.epoch() == 0 {
            t += 1;
            a.poll(t, None);
        }
        assert_eq!(a.scalar_estimate(0), Some(100.0));
    }

    #[test]
    fn stale_request_gets_epoch_notice() {
        let cfg = config(10);
        let mut ahead = GossipNode::founder(NodeId::new(0), cfg.clone(), 1.0, 1);
        let behind = GossipNode::founder(NodeId::new(1), cfg, 2.0, 2);
        // Push `ahead` into epoch 3 artificially via a notice.
        ahead.handle(&Message::epoch_notice(NodeId::new(9), 3), 0);
        assert_eq!(ahead.epoch(), 3);
        let req = Message::request(behind.id(), 0, vec![InstanceState::Scalar(2.0)]);
        let resp = ahead.handle(&req, 5).unwrap();
        assert!(matches!(resp.message.body, MessageBody::EpochNotice));
        assert_eq!(resp.message.epoch, 3);
        // The merged state must be untouched.
        assert_eq!(ahead.scalar_estimate(0), Some(1.0));
    }

    #[test]
    fn receiving_newer_epoch_jumps_and_reinitializes() {
        let mut node = GossipNode::founder(NodeId::new(0), config(10), 5.0, 1);
        // Drift the estimate away from the local value.
        node.handle(
            &Message::request(NodeId::new(1), 0, vec![InstanceState::Scalar(15.0)]),
            0,
        );
        assert_eq!(node.scalar_estimate(0), Some(10.0));
        // Newer epoch arrives: jump and re-init from the local value.
        let req = Message::request(NodeId::new(2), 4, vec![InstanceState::Scalar(3.0)]);
        let resp = node.handle(&req, 1).unwrap();
        assert_eq!(node.epoch(), 4);
        // The response is a reply for epoch 4 and the merge used the fresh
        // initial value 5.0: (5+3)/2 = 4.
        assert!(matches!(resp.message.body, MessageBody::Reply(_)));
        assert_eq!(node.scalar_estimate(0), Some(4.0));
    }

    #[test]
    fn joiner_refuses_current_epoch() {
        let cfg = config(10);
        let mut joiner = GossipNode::joiner(
            NodeId::new(5),
            cfg,
            1.0,
            3,
            /*epoch*/ 2,
            /*next at*/ 10_000,
        );
        assert!(!joiner.is_active());
        let req = Message::request(NodeId::new(0), 2, vec![InstanceState::Scalar(9.0)]);
        let resp = joiner.handle(&req, 100).unwrap();
        assert!(matches!(resp.message.body, MessageBody::Refuse));
    }

    #[test]
    fn joiner_activates_on_newer_epoch_message() {
        let cfg = config(10);
        let mut joiner = GossipNode::joiner(NodeId::new(5), cfg, 1.0, 3, 2, 10_000);
        let req = Message::request(NodeId::new(0), 3, vec![InstanceState::Scalar(9.0)]);
        let resp = joiner.handle(&req, 100).unwrap();
        assert!(joiner.is_active());
        assert_eq!(joiner.epoch(), 3);
        assert!(matches!(resp.message.body, MessageBody::Reply(_)));
        // Participates: merged (1+9)/2.
        assert_eq!(joiner.scalar_estimate(0), Some(5.0));
    }

    #[test]
    fn joiner_activates_on_schedule() {
        let cfg = config(10);
        let mut joiner = GossipNode::joiner(NodeId::new(5), cfg, 1.0, 3, 2, 500);
        assert!(joiner.poll(499, None).is_none());
        assert!(!joiner.is_active());
        joiner.poll(500, None);
        assert!(joiner.is_active());
        assert_eq!(joiner.epoch(), 3);
    }

    #[test]
    fn timeout_clears_pending_exchange() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut t = 0;
        let out = loop {
            t += 1;
            if let Some(out) = a.poll(t, Some(NodeId::new(1))) {
                break out;
            }
        };
        // No reply arrives; after the timeout a new exchange can start.
        let t_next = t + 200;
        let again = a.poll(t_next, Some(NodeId::new(2)));
        assert!(again.is_some(), "pending exchange not expired");
        assert_ne!(out.to, again.unwrap().to);
    }

    #[test]
    fn late_reply_after_timeout_is_dropped() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut t = 0;
        loop {
            t += 1;
            if a.poll(t, Some(NodeId::new(1))).is_some() {
                break;
            }
        }
        // Expire the exchange.
        a.poll(t + 100, None);
        let before = a.scalar_estimate(0);
        a.handle(
            &Message::reply(NodeId::new(1), 0, vec![InstanceState::Scalar(99.0)]),
            t + 101,
        );
        assert_eq!(a.scalar_estimate(0), before, "late reply merged");
    }

    #[test]
    fn reply_from_wrong_peer_is_ignored() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut t = 0;
        loop {
            t += 1;
            if a.poll(t, Some(NodeId::new(1))).is_some() {
                break;
            }
        }
        let before = a.scalar_estimate(0);
        a.handle(
            &Message::reply(NodeId::new(7), 0, vec![InstanceState::Scalar(99.0)]),
            t,
        );
        assert_eq!(a.scalar_estimate(0), before);
    }

    #[test]
    fn refuse_clears_pending() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut t = 0;
        loop {
            t += 1;
            if a.poll(t, Some(NodeId::new(1))).is_some() {
                break;
            }
        }
        a.handle(&Message::refuse(NodeId::new(1), 0), t + 1);
        // Next cycle can initiate immediately (pending cleared).
        let mut initiated = false;
        for dt in 1..300 {
            if a.poll(t + dt, Some(NodeId::new(2))).is_some() {
                initiated = true;
                break;
            }
        }
        assert!(initiated);
    }

    #[test]
    fn count_instance_elects_and_reports() {
        let cfg = NodeConfig::builder()
            .gamma(2)
            .cycle_length(100)
            .timeout(30)
            .instance(InstanceSpec::CountMap {
                leader: LeaderPolicy::Always,
            })
            .build()
            .unwrap();
        let mut a = GossipNode::founder(NodeId::new(0), cfg.clone(), 0.0, 1);
        let mut b = GossipNode::founder(NodeId::new(1), cfg, 0.0, 2);
        let mut t = 0;
        for _ in 0..6 {
            drive_exchange(&mut a, &mut b, &mut t);
        }
        let reports = a.take_reports();
        assert!(!reports.is_empty());
        let est = reports.last().unwrap().count_estimate().unwrap();
        // Two nodes, both leading: each instance converges to 1/2.
        assert!((est - 2.0).abs() < 0.6, "count estimate {est}");
        // The node's own rolling size estimate was updated.
        assert!((a.size_estimate() - est).abs() < 1e-9);
    }

    #[test]
    fn malformed_request_is_refused_not_merged() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let before = a.scalar_estimate(0);
        // Wrong arity.
        let msg = Message::request(
            NodeId::new(1),
            0,
            vec![InstanceState::Scalar(9.0), InstanceState::Scalar(9.0)],
        );
        let resp = a.handle(&msg, 0).unwrap();
        assert!(matches!(resp.message.body, MessageBody::Refuse));
        assert_eq!(a.scalar_estimate(0), before);
        // Wrong shape.
        let msg = Message::request(
            NodeId::new(1),
            0,
            vec![InstanceState::Map(crate::value::InstanceMap::new())],
        );
        let resp = a.handle(&msg, 0).unwrap();
        assert!(matches!(resp.message.body, MessageBody::Refuse));
        assert_eq!(a.scalar_estimate(0), before);
    }

    #[test]
    fn malformed_reply_is_dropped() {
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        let mut t = 0;
        loop {
            t += 1;
            if a.poll(t, Some(NodeId::new(1))).is_some() {
                break;
            }
        }
        let before = a.scalar_estimate(0);
        a.handle(
            &Message::reply(
                NodeId::new(1),
                0,
                vec![InstanceState::Map(crate::value::InstanceMap::new())],
            ),
            t,
        );
        assert_eq!(a.scalar_estimate(0), before);
    }

    #[test]
    fn trace_is_off_by_default_and_records_when_enabled() {
        use epidemic_telemetry::TraceKind;
        let mut a = GossipNode::founder(NodeId::new(0), config(2), 8.0, 1);
        let mut b = GossipNode::founder(NodeId::new(1), config(2), 2.0, 2);
        let mut t = 0;
        drive_exchange(&mut a, &mut b, &mut t);
        assert!(a.take_trace().is_empty(), "tracing must be opt-in");
        a.set_trace_capacity(64);
        b.set_trace_capacity(64);
        for _ in 0..4 {
            drive_exchange(&mut a, &mut b, &mut t);
        }
        let trace_a = a.take_trace();
        let kinds: Vec<TraceKind> = trace_a.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TraceKind::ExchangeInit));
        assert!(kinds.contains(&TraceKind::ExchangeComplete));
        assert!(kinds.contains(&TraceKind::EpochTransition));
        // Initiator-side completions carry the merged detail and the peer.
        let complete = trace_a
            .iter()
            .find(|e| e.kind == TraceKind::ExchangeComplete)
            .unwrap();
        assert_eq!(complete.peer, Some(1));
        assert_eq!(complete.node, 0);
        assert!(b
            .take_trace()
            .iter()
            .any(|e| e.kind == TraceKind::ExchangeComplete && e.detail == 2));
        // Draining empties the ring.
        assert!(a.take_trace().is_empty());
    }

    #[test]
    fn trace_records_timeouts() {
        use epidemic_telemetry::TraceKind;
        let mut a = GossipNode::founder(NodeId::new(0), config(10), 1.0, 1);
        a.set_trace_capacity(16);
        let mut t = 0;
        loop {
            t += 1;
            if a.poll(t, Some(NodeId::new(1))).is_some() {
                break;
            }
        }
        a.poll(t + 200, None); // no reply ever arrives
        let trace = a.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.kind == TraceKind::ExchangeTimeout && e.peer == Some(1)));
    }

    #[test]
    fn always_leads_helper() {
        assert!(always_leads(LeaderPolicy::Always));
        assert!(!always_leads(LeaderPolicy::Never));
        assert!(!always_leads(LeaderPolicy::Probability {
            concurrency: 4.0
        }));
    }
}
