//! Per-epoch protocol outputs.

use crate::instance::InstanceState;

/// The converged output of one epoch at one node: a snapshot of every
/// instance state at the moment the epoch completed its γ cycles.
///
/// Reports are produced by [`crate::GossipNode`] and consumed through the
/// estimator functions of [`crate::estimator`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch identifier that completed.
    pub epoch: u64,
    /// Number of cycles this node actually executed in the epoch (may be
    /// fewer than γ when the node joined late or jumped epochs).
    pub cycles_run: u32,
    /// Final state of every configured instance, in configuration order.
    pub states: Vec<InstanceState>,
}

impl EpochReport {
    /// Scalar output of instance `idx`, if that instance is scalar.
    pub fn scalar(&self, idx: usize) -> Option<f64> {
        self.states.get(idx).and_then(InstanceState::as_scalar)
    }

    /// COUNT map output of instance `idx`, if that instance is a map.
    pub fn map(&self, idx: usize) -> Option<&crate::value::InstanceMap> {
        self.states.get(idx).and_then(InstanceState::as_map)
    }

    /// Robust network size estimate from the first COUNT map instance, if
    /// any usable instance mass reached this node.
    pub fn count_estimate(&self) -> Option<f64> {
        self.states
            .iter()
            .find_map(InstanceState::as_map)
            .and_then(crate::estimator::count_estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::InstanceMap;

    #[test]
    fn accessors() {
        let report = EpochReport {
            epoch: 3,
            cycles_run: 30,
            states: vec![
                InstanceState::Scalar(1.5),
                InstanceState::Map(InstanceMap::from_entries([(9, 0.01)])),
            ],
        };
        assert_eq!(report.scalar(0), Some(1.5));
        assert_eq!(report.scalar(1), None);
        assert_eq!(report.map(1).unwrap().len(), 1);
        assert_eq!(report.map(0), None);
        assert_eq!(report.scalar(7), None);
        let count = report.count_estimate().unwrap();
        assert!((count - 100.0).abs() < 1e-9);
    }

    #[test]
    fn count_estimate_none_without_map() {
        let report = EpochReport {
            epoch: 0,
            cycles_run: 30,
            states: vec![InstanceState::Scalar(1.0)],
        };
        assert_eq!(report.count_estimate(), None);
    }
}
