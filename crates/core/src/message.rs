//! Protocol messages.
//!
//! The push-pull exchange needs two messages (request and reply carrying
//! the sender's pre-merge states); two auxiliary messages implement the
//! practical protocol of Section 4: `EpochNotice` propagates a newer epoch
//! identifier to a lagging peer, and `Refuse` is how a node that joined
//! mid-epoch declines to participate in the running epoch (Section 4.2).

use crate::instance::InstanceState;
use epidemic_common::NodeId;

/// A protocol message between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Sender.
    pub from: NodeId,
    /// Epoch identifier the message belongs to.
    pub epoch: u64,
    /// Payload.
    pub body: MessageBody,
}

/// Message payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum MessageBody {
    /// Push half of the exchange: the initiator's pre-merge states.
    Request(Vec<InstanceState>),
    /// Pull half: the responder's pre-merge states.
    Reply(Vec<InstanceState>),
    /// The receiver's epoch was stale; carries no state. The stale node
    /// jumps to the newer epoch on receipt (Section 4.3).
    EpochNotice,
    /// The responder is not participating in this epoch (joined mid-epoch,
    /// Section 4.2). The initiator skips the exchange.
    Refuse,
}

impl Message {
    /// Creates a request carrying the initiator's states.
    pub fn request(from: NodeId, epoch: u64, states: Vec<InstanceState>) -> Self {
        Message {
            from,
            epoch,
            body: MessageBody::Request(states),
        }
    }

    /// Creates a reply carrying the responder's pre-merge states.
    pub fn reply(from: NodeId, epoch: u64, states: Vec<InstanceState>) -> Self {
        Message {
            from,
            epoch,
            body: MessageBody::Reply(states),
        }
    }

    /// Creates an epoch notice advertising `epoch`.
    pub fn epoch_notice(from: NodeId, epoch: u64) -> Self {
        Message {
            from,
            epoch,
            body: MessageBody::EpochNotice,
        }
    }

    /// Creates a refusal for `epoch`.
    pub fn refuse(from: NodeId, epoch: u64) -> Self {
        Message {
            from,
            epoch,
            body: MessageBody::Refuse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let m = Message::request(NodeId::new(1), 4, vec![InstanceState::Scalar(2.0)]);
        assert_eq!(m.from, NodeId::new(1));
        assert_eq!(m.epoch, 4);
        assert!(matches!(m.body, MessageBody::Request(ref s) if s.len() == 1));

        let m = Message::reply(NodeId::new(2), 5, vec![]);
        assert!(matches!(m.body, MessageBody::Reply(ref s) if s.is_empty()));

        let m = Message::epoch_notice(NodeId::new(3), 9);
        assert!(matches!(m.body, MessageBody::EpochNotice));
        assert_eq!(m.epoch, 9);

        let m = Message::refuse(NodeId::new(4), 2);
        assert!(matches!(m.body, MessageBody::Refuse));
    }
}
