//! Deriving aggregate estimates from converged instance states.
//!
//! At the end of an epoch every node holds converged instance states; the
//! functions here turn them into the aggregates of Section 5:
//!
//! * [`count_estimates`] / [`count_estimate`] — network size from a COUNT
//!   instance map (`N̂ = 1/e` per leader, robustly combined).
//! * [`trimmed_mean`] — the paper's Section 7.3 combination rule: order the
//!   `t` estimates, discard the `⌊t/3⌋` lowest and highest, average the
//!   rest.
//! * [`sum_estimate`], [`variance_estimate`], [`product_estimate`] —
//!   compositions of averaging instances.

/// Robust combination of multiple estimates (paper Section 7.3): sorts the
/// values, discards the `⌊t/3⌋` lowest and `⌊t/3⌋` highest, and returns the
/// mean of the remainder.
///
/// Returns `None` for an empty slice. With one or two values nothing is
/// trimmed.
///
/// # Examples
///
/// ```
/// use epidemic_aggregation::estimator::trimmed_mean;
///
/// // Outliers produced by "unlucky" protocol runs are discarded.
/// let estimates = [98.0, 101.0, 99.0, 1.0e6, 100.0, 102.0, 0.5];
/// let robust = trimmed_mean(&estimates).unwrap();
/// assert!((robust - 100.0).abs() < 2.0);
/// ```
pub fn trimmed_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN estimate"));
    let trim = sorted.len() / 3;
    let kept = &sorted[trim..sorted.len() - trim];
    Some(kept.iter().sum::<f64>() / kept.len() as f64)
}

/// Per-leader network size estimates from a COUNT instance map:
/// `N̂_l = 1 / e_l` for every entry with a positive estimate.
///
/// Entries with non-positive estimates are skipped — they carry no usable
/// information (the instance's mass never reached this node).
pub fn count_estimates(map: &crate::value::InstanceMap) -> Vec<f64> {
    map.iter()
        .filter(|&(_, e)| e > 0.0)
        .map(|(_, e)| 1.0 / e)
        .collect()
}

/// Robust network size estimate from a COUNT instance map: the
/// [`trimmed_mean`] of the per-leader estimates. `None` if the map holds no
/// usable entry.
pub fn count_estimate(map: &crate::value::InstanceMap) -> Option<f64> {
    let estimates = count_estimates(map);
    trimmed_mean(&estimates)
}

/// SUM = AVERAGE × COUNT (paper Section 5, SUM).
pub fn sum_estimate(average: f64, count: f64) -> f64 {
    average * count
}

/// VARIANCE = mean of squares − square of mean (paper Section 5, VARIANCE).
///
/// This is the population variance; multiply by `n/(n−1)` for the unbiased
/// sample variance if `n` is known. Clamped at zero: rounding in the gossip
/// estimates can make the raw difference slightly negative once converged.
pub fn variance_estimate(mean: f64, mean_of_squares: f64) -> f64 {
    (mean_of_squares - mean * mean).max(0.0)
}

/// PRODUCT = (geometric mean)^COUNT (paper Section 5, PRODUCT), computed in
/// log space to survive astronomically large products.
///
/// Returns `f64::INFINITY`/`0.0` on overflow/underflow like `exp` does.
///
/// # Panics
///
/// Panics if `geometric_mean` is negative.
pub fn product_estimate(geometric_mean: f64, count: f64) -> f64 {
    assert!(geometric_mean >= 0.0, "geometric mean must be non-negative");
    if geometric_mean == 0.0 {
        return 0.0;
    }
    (count * geometric_mean.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::InstanceMap;

    #[test]
    fn trimmed_mean_empty_and_small() {
        assert_eq!(trimmed_mean(&[]), None);
        assert_eq!(trimmed_mean(&[5.0]), Some(5.0));
        assert_eq!(trimmed_mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn trimmed_mean_discards_extremes() {
        // t = 6 -> trim 2 from each side, keep middle 2.
        let v = [0.0, 1.0, 10.0, 11.0, 100.0, 101.0];
        assert_eq!(trimmed_mean(&v), Some(10.5));
    }

    #[test]
    fn trimmed_mean_matches_paper_rule() {
        // t = 7: floor(7/3) = 2 trimmed per side, 3 kept.
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(trimmed_mean(&v), Some(4.0));
        // t = 3: floor(3/3) = 1 per side, median remains.
        assert_eq!(trimmed_mean(&[1.0, 50.0, 1e9]), Some(50.0));
    }

    #[test]
    fn trimmed_mean_is_order_invariant() {
        let a = [9.0, 1.0, 5.0, 7.0, 3.0];
        let b = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(trimmed_mean(&a), trimmed_mean(&b));
    }

    #[test]
    fn trimmed_mean_robust_to_infinite_outliers() {
        // An instance whose leader crashed early can report +inf (estimate
        // 1/e with e -> 0). The trim must absorb it.
        let v = [100.0, 102.0, 98.0, f64::INFINITY, 0.0, 101.0, 99.0];
        let robust = trimmed_mean(&v).unwrap();
        assert!(robust.is_finite());
        assert!((robust - 100.0).abs() < 2.0);
    }

    #[test]
    fn count_estimates_inverts() {
        let map = InstanceMap::from_entries([(1, 0.01), (2, 0.0125)]);
        let mut est = count_estimates(&map);
        est.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(est, vec![80.0, 100.0]);
    }

    #[test]
    fn count_estimates_skips_nonpositive() {
        let map = InstanceMap::from_entries([(1, 0.0), (2, 0.5), (3, -0.1)]);
        assert_eq!(count_estimates(&map), vec![2.0]);
    }

    #[test]
    fn count_estimate_of_empty_map_is_none() {
        assert_eq!(count_estimate(&InstanceMap::new()), None);
        let dead = InstanceMap::from_entries([(1, 0.0)]);
        assert_eq!(count_estimate(&dead), None);
    }

    #[test]
    fn count_estimate_trims() {
        // Six instances, two corrupted.
        let map = InstanceMap::from_entries([
            (1, 1.0 / 100.0),
            (2, 1.0 / 101.0),
            (3, 1.0 / 99.0),
            (4, 1.0 / 1e9),  // corrupted high
            (5, 1.0 / 0.01), // corrupted low
            (6, 1.0 / 100.0),
        ]);
        let est = count_estimate(&map).unwrap();
        assert!((est - 100.0).abs() < 2.0, "estimate {est}");
    }

    #[test]
    fn sum_and_variance() {
        assert_eq!(sum_estimate(2.5, 100.0), 250.0);
        assert!((variance_estimate(3.0, 13.0) - 4.0).abs() < 1e-12);
        // Clamping guards against converged-estimate rounding.
        assert_eq!(variance_estimate(3.0, 9.0 - 1e-13), 0.0);
    }

    #[test]
    fn product_estimates() {
        assert!((product_estimate(2.0, 10.0) - 1024.0).abs() < 1e-9);
        assert_eq!(product_estimate(0.0, 5.0), 0.0);
        // Huge products stay representable failures, not panics.
        assert!(product_estimate(10.0, 500.0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn product_rejects_negative_geomean() {
        product_estimate(-1.0, 3.0);
    }
}
