//! Scalar update rules — the paper's `UPDATE(a, b)` (Section 3 and 5).
//!
//! A push-pull exchange is symmetric: both peers compute the same merged
//! value from the pair of estimates. The choice of merge function selects
//! the aggregate:
//!
//! | Rule            | `UPDATE(a, b)`  | Converges to      | Conserves        |
//! |-----------------|-----------------|-------------------|------------------|
//! | [`Average`]     | `(a + b) / 2`   | arithmetic mean   | sum              |
//! | [`Min`]         | `min(a, b)`     | global minimum    | minimum          |
//! | [`Max`]         | `max(a, b)`     | global maximum    | maximum          |
//! | [`GeometricMean`]| `√(a·b)`       | geometric mean    | product          |
//!
//! All rules are exposed both as zero-sized types implementing
//! [`UpdateRule`] (for static dispatch in hot simulation loops) and via the
//! [`Rule`] enum (for configuration and wire encoding).

use std::fmt;

/// A symmetric merge function applied by both peers of an exchange.
///
/// Implementations must be **symmetric** (`merge(a, b) == merge(b, a)`) so
/// that both endpoints of a push-pull exchange reach the same state, and
/// **idempotent on agreement** (`merge(a, a) == a`) so that a converged
/// network is a fixed point.
pub trait UpdateRule {
    /// Computes the merged estimate from the two exchanged estimates.
    fn merge(&self, local: f64, remote: f64) -> f64;
}

/// Arithmetic averaging: `UPDATE(a, b) = (a + b) / 2`.
///
/// The elementary variance-reduction step of the paper. Conserves the sum
/// of the two estimates, hence the global average.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Average;

impl UpdateRule for Average {
    #[inline]
    fn merge(&self, local: f64, remote: f64) -> f64 {
        (local + remote) / 2.0
    }
}

/// Minimum: `UPDATE(a, b) = min(a, b)`. The global minimum spreads like an
/// epidemic broadcast (paper Section 5, MIN).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

impl UpdateRule for Min {
    #[inline]
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.min(remote)
    }
}

/// Maximum: `UPDATE(a, b) = max(a, b)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

impl UpdateRule for Max {
    #[inline]
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.max(remote)
    }
}

/// Geometric averaging: `UPDATE(a, b) = √(a·b)`.
///
/// Conserves the product of the two estimates, so the network converges to
/// the global geometric mean (paper Section 5, GEOMETRICMEAN / PRODUCT).
/// Only meaningful for non-negative estimates; merging a negative pair
/// yields `NaN`, which debug builds catch with an assertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeometricMean;

impl UpdateRule for GeometricMean {
    #[inline]
    fn merge(&self, local: f64, remote: f64) -> f64 {
        debug_assert!(
            local >= 0.0 && remote >= 0.0,
            "geometric mean requires non-negative estimates"
        );
        (local * remote).sqrt()
    }
}

/// Runtime-selectable update rule, used in configuration and messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// [`Average`].
    Average,
    /// [`Min`].
    Min,
    /// [`Max`].
    Max,
    /// [`GeometricMean`].
    GeometricMean,
}

impl UpdateRule for Rule {
    #[inline]
    fn merge(&self, local: f64, remote: f64) -> f64 {
        match self {
            Rule::Average => Average.merge(local, remote),
            Rule::Min => Min.merge(local, remote),
            Rule::Max => Max.merge(local, remote),
            Rule::GeometricMean => GeometricMean.merge(local, remote),
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::Average => "average",
            Rule::Min => "min",
            Rule::Max => "max",
            Rule::GeometricMean => "geometric-mean",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_common::rng::Xoshiro256;

    #[test]
    fn average_basics() {
        assert_eq!(Average.merge(10.0, 2.0), 6.0);
        assert_eq!(Average.merge(-4.0, 4.0), 0.0);
        assert_eq!(Average.merge(3.0, 3.0), 3.0);
    }

    #[test]
    fn average_conserves_sum() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..1000 {
            let a = rng.next_f64() * 100.0 - 50.0;
            let b = rng.next_f64() * 100.0 - 50.0;
            let m = Average.merge(a, b);
            assert!((2.0 * m - (a + b)).abs() < 1e-9);
        }
    }

    #[test]
    fn min_max_basics() {
        assert_eq!(Min.merge(3.0, 7.0), 3.0);
        assert_eq!(Max.merge(3.0, 7.0), 7.0);
        assert_eq!(Min.merge(-1.0, -5.0), -5.0);
        assert_eq!(Max.merge(2.0, 2.0), 2.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((GeometricMean.merge(2.0, 8.0) - 4.0).abs() < 1e-12);
        assert_eq!(GeometricMean.merge(5.0, 5.0), 5.0);
        assert_eq!(GeometricMean.merge(0.0, 7.0), 0.0);
    }

    #[test]
    fn geometric_mean_conserves_product() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.next_f64() * 10.0 + 0.1;
            let b = rng.next_f64() * 10.0 + 0.1;
            let m = GeometricMean.merge(a, b);
            assert!((m * m - a * b).abs() / (a * b) < 1e-9);
        }
    }

    #[test]
    fn all_rules_are_symmetric() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let rules = [Rule::Average, Rule::Min, Rule::Max, Rule::GeometricMean];
        for _ in 0..500 {
            let a = rng.next_f64() * 100.0;
            let b = rng.next_f64() * 100.0;
            for rule in rules {
                assert_eq!(rule.merge(a, b), rule.merge(b, a), "{rule} not symmetric");
            }
        }
    }

    #[test]
    fn all_rules_are_idempotent_on_agreement() {
        let rules = [Rule::Average, Rule::Min, Rule::Max, Rule::GeometricMean];
        for rule in rules {
            for v in [0.0, 1.0, 42.5, 1e9] {
                assert_eq!(rule.merge(v, v), v, "{rule} moved a fixed point");
            }
        }
    }

    #[test]
    fn enum_matches_structs() {
        assert_eq!(Rule::Average.merge(1.0, 3.0), Average.merge(1.0, 3.0));
        assert_eq!(Rule::Min.merge(1.0, 3.0), Min.merge(1.0, 3.0));
        assert_eq!(Rule::Max.merge(1.0, 3.0), Max.merge(1.0, 3.0));
        assert_eq!(
            Rule::GeometricMean.merge(1.0, 3.0),
            GeometricMean.merge(1.0, 3.0)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Rule::Average.to_string(), "average");
        assert_eq!(Rule::GeometricMean.to_string(), "geometric-mean");
    }

    #[test]
    fn repeated_averaging_converges_to_mean() {
        // Tiny in-crate sanity check of the whole idea: a ring of values
        // repeatedly pairwise-averaged converges to the global mean.
        let mut values = [8.0, 0.0, 4.0, 0.0];
        let mean = 3.0;
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..200 {
            let i = rng.index(4);
            let j = (i + 1 + rng.index(3)) % 4;
            let m = Average.merge(values[i], values[j]);
            values[i] = m;
            values[j] = m;
        }
        for v in values {
            assert!((v - mean).abs() < 1e-6);
        }
    }
}
