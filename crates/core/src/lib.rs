//! Robust proactive gossip aggregation.
//!
//! This crate implements the contribution of *Montresor, Jelasity, Babaoglu:
//! "Robust Aggregation Protocols for Large-Scale Overlay Networks" (DSN
//! 2004)*: an anti-entropy, push-pull epidemic protocol that continuously
//! provides every node of a large dynamic overlay with estimates of global
//! aggregates — average, minimum/maximum, network size (COUNT), sum,
//! product/geometric mean, and variance.
//!
//! # Protocol in one paragraph
//!
//! Every node holds an estimate initialized from its local value. Once per
//! cycle (length δ) it contacts a random neighbor; the two nodes exchange
//! estimates and both apply an update rule — `(a+b)/2` for averaging — which
//! conserves the global sum while shrinking the variance of estimates by a
//! factor ρ ≈ 1/(2√e) per cycle. Execution is split into *epochs* of γ
//! cycles: at each epoch boundary the converged estimate is reported and the
//! protocol restarts from fresh local values, making the output adaptive.
//! Epoch identifiers propagate epidemically, keeping the network loosely
//! synchronized. COUNT runs averaging over a *peak* distribution (a leader
//! starts at 1, everyone else at 0, so the average is 1/N), generalized to
//! multiple concurrent leaders via per-leader instance maps.
//!
//! # Module map
//!
//! * [`rule`] — scalar update rules (average, min, max, geometric mean).
//! * [`value`] — COUNT instance maps with the paper's merge formula.
//! * [`instance`] — instance specifications and state merging.
//! * [`config`] — protocol configuration (γ, δ, timeout, instances).
//! * [`node`] — the sans-io [`GossipNode`] state machine (ticks, messages,
//!   timeouts, epochs) used by the event-driven simulator and the UDP
//!   runtime.
//! * [`message`] — wire-level protocol messages.
//! * [`report`] — per-epoch outputs.
//! * [`estimator`] — turning epoch outputs into aggregate estimates
//!   (COUNT/SUM/PRODUCT/VARIANCE, trimmed combination of instances).
//! * [`theory`] — closed-form results: convergence factors, Theorem 1
//!   (crash-induced error), the link-failure bound.
//! * [`baseline`] — the push-sum protocol of Kempe et al. (FOCS'03), the
//!   paper's closest related work, used as an ablation baseline.
//!
//! # Examples
//!
//! ```
//! use epidemic_aggregation::rule::{Average, UpdateRule};
//!
//! // One push-pull exchange conserves the sum and halves the gap.
//! let (a, b) = (10.0, 2.0);
//! let merged = Average.merge(a, b);
//! assert_eq!(merged, 6.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregates;
pub mod baseline;
pub mod config;
pub mod error;
pub mod estimator;
pub mod instance;
pub mod message;
pub mod node;
pub mod report;
pub mod rule;
pub mod theory;
pub mod value;

pub use aggregates::AggregateKind;
pub use config::{NodeConfig, NodeConfigBuilder};
pub use error::ConfigError;
pub use instance::{InitPolicy, InstanceSpec, InstanceState, LeaderPolicy};
pub use message::{Message, MessageBody};
pub use node::{GossipNode, PeerSampler};
pub use report::EpochReport;
pub use rule::{Rule, UpdateRule};
pub use value::InstanceMap;
