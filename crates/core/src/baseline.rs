//! Push-sum baseline (Kempe, Dobra, Gehrke; FOCS 2003).
//!
//! The paper's closest related work (Section 8) computes averages with a
//! *push-only* gossip: each node maintains a `(value, weight)` pair,
//! initialized to `(x_i, 1)`. Every cycle it halves both components,
//! keeps one half and pushes the other half to a random peer, which simply
//! adds what it receives. The estimate is `value / weight`. The pair mass
//! (Σ value, Σ weight) is conserved, so all estimates converge to the true
//! average — but one-directional diffusion converges more slowly per cycle
//! than push-pull, which is the ablation this module supports.

/// Push-sum protocol state of one node.
///
/// # Examples
///
/// ```
/// use epidemic_aggregation::baseline::PushSumState;
///
/// let mut a = PushSumState::new(10.0);
/// let mut b = PushSumState::new(2.0);
/// let share = a.emit_half();
/// b.absorb(share);
/// // Mass is conserved across the pair.
/// assert!((a.value + b.value - 12.0).abs() < 1e-12);
/// assert!((a.weight + b.weight - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushSumState {
    /// Value component (starts at the local value).
    pub value: f64,
    /// Weight component (starts at 1).
    pub weight: f64,
}

/// The `(value, weight)` share pushed to a peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushSumShare {
    /// Pushed value component.
    pub value: f64,
    /// Pushed weight component.
    pub weight: f64,
}

impl PushSumState {
    /// Initializes from the local value with unit weight.
    pub fn new(local_value: f64) -> Self {
        PushSumState {
            value: local_value,
            weight: 1.0,
        }
    }

    /// Halves the local state and returns the half to push to a peer.
    pub fn emit_half(&mut self) -> PushSumShare {
        self.value /= 2.0;
        self.weight /= 2.0;
        PushSumShare {
            value: self.value,
            weight: self.weight,
        }
    }

    /// Adds a received share to the local state.
    pub fn absorb(&mut self, share: PushSumShare) {
        self.value += share.value;
        self.weight += share.weight;
    }

    /// Current estimate of the global average.
    ///
    /// Returns `None` while the weight is zero (only possible before any
    /// mass reached a node that started with weight zero, which the
    /// standard initialization prevents).
    pub fn estimate(&self) -> Option<f64> {
        if self.weight > 0.0 {
            Some(self.value / self.weight)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_common::rng::Xoshiro256;

    #[test]
    fn initial_estimate_is_local_value() {
        let s = PushSumState::new(7.0);
        assert_eq!(s.estimate(), Some(7.0));
    }

    #[test]
    fn emit_absorb_conserves_mass() {
        let mut a = PushSumState::new(4.0);
        let mut b = PushSumState::new(8.0);
        for _ in 0..10 {
            let share = a.emit_half();
            b.absorb(share);
            let share = b.emit_half();
            a.absorb(share);
            assert!((a.value + b.value - 12.0).abs() < 1e-12);
            assert!((a.weight + b.weight - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_weight_estimate_is_none() {
        let s = PushSumState {
            value: 0.0,
            weight: 0.0,
        };
        assert_eq!(s.estimate(), None);
    }

    #[test]
    fn network_converges_to_average() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let n = 64;
        let mut nodes: Vec<PushSumState> = (0..n).map(|i| PushSumState::new(i as f64)).collect();
        let truth = (n as f64 - 1.0) / 2.0;
        for _ in 0..60 {
            // Push-only: each node pushes half its mass to a random peer.
            // Collect shares first so a cycle is one synchronous round.
            let mut inbox: Vec<Vec<PushSumShare>> = vec![Vec::new(); n];
            for (i, node) in nodes.iter_mut().enumerate() {
                let share = node.emit_half();
                let j = (i + 1 + rng.index(n - 1)) % n;
                inbox[j].push(share);
            }
            for (node, shares) in nodes.iter_mut().zip(inbox) {
                for share in shares {
                    node.absorb(share);
                }
            }
        }
        for s in &nodes {
            let est = s.estimate().unwrap();
            assert!((est - truth).abs() < 1e-6, "estimate {est} vs {truth}");
        }
        // Total mass exactly conserved.
        let value_mass: f64 = nodes.iter().map(|s| s.value).sum();
        let weight_mass: f64 = nodes.iter().map(|s| s.weight).sum();
        assert!((value_mass - truth * n as f64).abs() < 1e-9);
        assert!((weight_mass - n as f64).abs() < 1e-12);
    }
}
