//! COUNT instance maps (paper Section 5, COUNT).
//!
//! Network size estimation runs multiple concurrent averaging instances,
//! each *led* by a different node. An instance led by `l` computes the
//! average of the peak distribution "1 at `l`, 0 everywhere else", i.e.
//! `1/N`. Every node maintains a sparse map from leader identifier to its
//! current estimate of that instance; an absent entry is semantically a
//! zero that has not been materialized yet.
//!
//! The merge rule for two maps `Mi`, `Mj` (both peers install the result):
//!
//! ```text
//! M(l) = (Mi(l) + Mj(l)) / 2    if l ∈ Mi and l ∈ Mj
//! M(l) =  Mi(l) / 2             if l ∈ Mi only
//! M(l) =  Mj(l) / 2             if l ∈ Mj only
//! ```
//!
//! which is exactly scalar averaging per leader with absent-as-zero, so
//! per-leader mass (the initial 1) is conserved across every exchange.

use std::fmt;

/// Sparse map from leader identifier to average estimate, kept sorted by
/// leader id.
///
/// # Examples
///
/// ```
/// use epidemic_aggregation::InstanceMap;
///
/// let leader = InstanceMap::leader(7);
/// let follower = InstanceMap::new();
/// let merged = InstanceMap::merge(&leader, &follower);
/// assert_eq!(merged.get(7), Some(0.5)); // both sides now hold 1/2
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InstanceMap {
    entries: Vec<(u64, f64)>,
}

impl InstanceMap {
    /// Creates an empty map (a follower that has not yet heard from any
    /// instance).
    pub const fn new() -> Self {
        InstanceMap {
            entries: Vec::new(),
        }
    }

    /// Creates the initial map of a leader: `{leader: 1.0}`.
    pub fn leader(leader: u64) -> Self {
        InstanceMap {
            entries: vec![(leader, 1.0)],
        }
    }

    /// Creates a map from `(leader, estimate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a leader id appears twice.
    pub fn from_entries<I: IntoIterator<Item = (u64, f64)>>(entries: I) -> Self {
        let mut entries: Vec<(u64, f64)> = entries.into_iter().collect();
        entries.sort_unstable_by_key(|&(l, _)| l);
        for pair in entries.windows(2) {
            assert!(pair[0].0 != pair[1].0, "duplicate leader {}", pair[0].0);
        }
        InstanceMap { entries }
    }

    /// Estimate associated with `leader`, if present.
    pub fn get(&self, leader: u64) -> Option<f64> {
        self.entries
            .binary_search_by_key(&leader, |&(l, _)| l)
            .ok()
            .map(|idx| self.entries[idx].1)
    }

    /// Number of instances present in the map.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the node has not heard from any instance.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(leader, estimate)` pairs in leader order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Sum of all estimates in the map (this node's share of the total
    /// mass of all instances).
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, e)| e).sum()
    }

    /// The paper's merge: per-leader averaging with absent-as-zero. Both
    /// peers of an exchange install the returned map.
    pub fn merge(a: &InstanceMap, b: &InstanceMap) -> InstanceMap {
        let mut out = InstanceMap::new();
        InstanceMap::merge_into(a, b, &mut out);
        out
    }

    /// Allocation-free form of [`InstanceMap::merge`]: writes the merge of
    /// `a` and `b` into `out`, reusing `out`'s buffer. Hot loops (the
    /// simulator runs one merge per exchange) keep a scratch map around
    /// instead of allocating a fresh vector per exchange.
    pub fn merge_into(a: &InstanceMap, b: &InstanceMap, out: &mut InstanceMap) {
        let entries = &mut out.entries;
        entries.clear();
        entries.reserve(a.entries.len() + b.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < a.entries.len() && j < b.entries.len() {
            let (la, ea) = a.entries[i];
            let (lb, eb) = b.entries[j];
            match la.cmp(&lb) {
                std::cmp::Ordering::Equal => {
                    entries.push((la, (ea + eb) / 2.0));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    entries.push((la, ea / 2.0));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    entries.push((lb, eb / 2.0));
                    j += 1;
                }
            }
        }
        entries.extend(a.entries[i..].iter().map(|&(l, e)| (l, e / 2.0)));
        entries.extend(b.entries[j..].iter().map(|&(l, e)| (l, e / 2.0)));
    }

    /// Overwrites this map with `src`'s contents, reusing the existing
    /// buffer (the receiving half of an exchange installing a merge
    /// result without a fresh allocation).
    pub fn copy_from(&mut self, src: &InstanceMap) {
        self.entries.clear();
        self.entries.extend_from_slice(&src.entries);
    }
}

impl fmt::Display for InstanceMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, (l, e)) in self.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "n{l}: {e:.3e}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(u64, f64)> for InstanceMap {
    fn from_iter<I: IntoIterator<Item = (u64, f64)>>(iter: I) -> Self {
        Self::from_entries(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_common::rng::Xoshiro256;

    #[test]
    fn empty_and_leader_construction() {
        let empty = InstanceMap::new();
        assert!(empty.is_empty());
        assert_eq!(empty.total(), 0.0);
        let leader = InstanceMap::leader(3);
        assert_eq!(leader.len(), 1);
        assert_eq!(leader.get(3), Some(1.0));
        assert_eq!(leader.get(4), None);
    }

    #[test]
    fn from_entries_sorts() {
        let m = InstanceMap::from_entries([(5, 0.1), (1, 0.2), (9, 0.3)]);
        let leaders: Vec<u64> = m.iter().map(|(l, _)| l).collect();
        assert_eq!(leaders, vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "duplicate leader")]
    fn from_entries_rejects_duplicates() {
        InstanceMap::from_entries([(1, 0.5), (1, 0.7)]);
    }

    #[test]
    fn merge_leader_with_empty_halves() {
        let merged = InstanceMap::merge(&InstanceMap::leader(7), &InstanceMap::new());
        assert_eq!(merged.get(7), Some(0.5));
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn merge_matched_entries_averages() {
        let a = InstanceMap::from_entries([(1, 0.8)]);
        let b = InstanceMap::from_entries([(1, 0.2)]);
        let m = InstanceMap::merge(&a, &b);
        assert_eq!(m.get(1), Some(0.5));
    }

    #[test]
    fn merge_disjoint_entries_halves_both() {
        let a = InstanceMap::from_entries([(1, 0.8)]);
        let b = InstanceMap::from_entries([(2, 0.4)]);
        let m = InstanceMap::merge(&a, &b);
        assert_eq!(m.get(1), Some(0.4));
        assert_eq!(m.get(2), Some(0.2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_into_matches_merge_and_reuses_buffer() {
        let a = InstanceMap::from_entries([(1, 0.8), (3, 0.4)]);
        let b = InstanceMap::from_entries([(2, 0.4), (3, 0.2)]);
        let mut out = InstanceMap::from_entries([(9, 9.0)]); // stale content
        InstanceMap::merge_into(&a, &b, &mut out);
        assert_eq!(out, InstanceMap::merge(&a, &b));
        assert_eq!(out.get(9), None, "stale entry survived");

        let mut copy = InstanceMap::from_entries([(5, 1.0)]);
        copy.copy_from(&out);
        assert_eq!(copy, out);
    }

    #[test]
    fn merge_conserves_pairwise_mass() {
        // Before: node A holds a, node B holds b. After: both hold merged.
        // Mass conservation: a(l) + b(l) == 2 * merged(l) for every l.
        let mut rng = Xoshiro256::seed_from_u64(1);
        let random_map = |rng: &mut Xoshiro256| {
            let mut entries = Vec::new();
            for l in 0..5u64 {
                if rng.next_bool(0.6) {
                    entries.push((l, rng.next_f64()));
                }
            }
            InstanceMap::from_entries(entries)
        };
        for _ in 0..200 {
            let a = random_map(&mut rng);
            let b = random_map(&mut rng);
            let m = InstanceMap::merge(&a, &b);
            for l in 0..5 {
                let before = a.get(l).unwrap_or(0.0) + b.get(l).unwrap_or(0.0);
                let after = 2.0 * m.get(l).unwrap_or(0.0);
                assert!((before - after).abs() < 1e-12, "mass leak at leader {l}");
            }
        }
    }

    #[test]
    fn merge_is_symmetric() {
        let a = InstanceMap::from_entries([(1, 0.3), (4, 0.9)]);
        let b = InstanceMap::from_entries([(2, 0.5), (4, 0.1)]);
        assert_eq!(InstanceMap::merge(&a, &b), InstanceMap::merge(&b, &a));
    }

    #[test]
    fn merge_of_equal_maps_is_identity() {
        let a = InstanceMap::from_entries([(1, 0.25), (9, 0.125)]);
        assert_eq!(InstanceMap::merge(&a, &a), a);
    }

    #[test]
    fn merged_output_stays_sorted() {
        let a = InstanceMap::from_entries([(1, 0.3), (5, 0.9)]);
        let b = InstanceMap::from_entries([(2, 0.5), (9, 0.1)]);
        let m = InstanceMap::merge(&a, &b);
        let leaders: Vec<u64> = m.iter().map(|(l, _)| l).collect();
        assert_eq!(leaders, vec![1, 2, 5, 9]);
        // Binary search still works on the merged map.
        assert_eq!(m.get(5), Some(0.45));
    }

    #[test]
    fn network_mass_conserved_over_random_exchanges() {
        // Simulate many nodes' maps exchanging; per-leader global mass must
        // be exactly conserved (this is the COUNT correctness invariant).
        let mut rng = Xoshiro256::seed_from_u64(2);
        let n = 32;
        let mut maps: Vec<InstanceMap> = (0..n)
            .map(|i| {
                if i < 3 {
                    InstanceMap::leader(i as u64)
                } else {
                    InstanceMap::new()
                }
            })
            .collect();
        for _ in 0..500 {
            let i = rng.index(n);
            let j = (i + 1 + rng.index(n - 1)) % n;
            let merged = InstanceMap::merge(&maps[i], &maps[j]);
            maps[i] = merged.clone();
            maps[j] = merged;
        }
        for leader in 0..3u64 {
            let mass: f64 = maps.iter().map(|m| m.get(leader).unwrap_or(0.0)).sum();
            assert!((mass - 1.0).abs() < 1e-9, "leader {leader} mass {mass}");
        }
        // And the estimates converge toward 1/n each.
        for m in &maps {
            for (_, e) in m.iter() {
                assert!((e - 1.0 / n as f64).abs() < 0.05);
            }
        }
    }

    #[test]
    fn display_formats_entries() {
        let m = InstanceMap::from_entries([(1, 0.5)]);
        assert_eq!(m.to_string(), "{n1: 5.000e-1}");
        assert_eq!(InstanceMap::new().to_string(), "{}");
    }
}
