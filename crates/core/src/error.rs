//! Error types for protocol configuration.

use std::error::Error;
use std::fmt;

/// Error raised when a [`crate::NodeConfig`] is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The epoch length γ must be at least one cycle.
    ZeroGamma,
    /// The cycle length δ must be positive.
    ZeroCycleLength,
    /// The exchange timeout must be positive and shorter than the cycle.
    BadTimeout {
        /// Configured timeout in ticks.
        timeout: u64,
        /// Configured cycle length in ticks.
        cycle: u64,
    },
    /// At least one instance must be configured.
    NoInstances,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroGamma => write!(f, "epoch length (gamma) must be at least 1 cycle"),
            ConfigError::ZeroCycleLength => write!(f, "cycle length (delta) must be positive"),
            ConfigError::BadTimeout { timeout, cycle } => write!(
                f,
                "exchange timeout {timeout} must be positive and below the cycle length {cycle}"
            ),
            ConfigError::NoInstances => write!(f, "at least one instance must be configured"),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ConfigError::ZeroGamma.to_string().contains("gamma"));
        assert!(ConfigError::ZeroCycleLength.to_string().contains("delta"));
        assert!(ConfigError::BadTimeout {
            timeout: 0,
            cycle: 10
        }
        .to_string()
        .contains("timeout 0"));
        assert!(ConfigError::NoInstances.to_string().contains("instance"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ConfigError>();
    }
}
