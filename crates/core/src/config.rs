//! Protocol configuration.
//!
//! [`NodeConfig`] gathers the practical-protocol parameters of Section 4:
//! γ (cycles per epoch), δ (cycle length), the exchange timeout, and the
//! list of instances gossiped each epoch. Construct it through
//! [`NodeConfigBuilder`], which validates the combination.

use crate::error::ConfigError;
use crate::instance::InstanceSpec;

/// Validated protocol parameters shared by every node of a deployment.
///
/// # Examples
///
/// ```
/// use epidemic_aggregation::{InstanceSpec, NodeConfig};
///
/// let config = NodeConfig::builder()
///     .gamma(30)
///     .cycle_length(1_000)
///     .timeout(250)
///     .instance(InstanceSpec::AVERAGE)
///     .instance(InstanceSpec::count(20.0))
///     .build()?;
/// assert_eq!(config.gamma(), 30);
/// # Ok::<(), epidemic_aggregation::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    gamma: u32,
    cycle_length: u64,
    timeout: u64,
    instances: Vec<InstanceSpec>,
    initial_size_guess: f64,
    epoch_sync: bool,
}

impl NodeConfig {
    /// Starts building a configuration.
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder::new()
    }

    /// Cycles per epoch (γ). The estimate reported at an epoch boundary has
    /// variance `ρ^γ` times the initial variance.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }

    /// Cycle length δ in ticks (the unit is defined by the embedding: the
    /// event simulator uses abstract ticks, the UDP runtime milliseconds).
    pub fn cycle_length(&self) -> u64 {
        self.cycle_length
    }

    /// Exchange timeout in ticks: how long an initiator waits for the
    /// reply before writing the exchange off.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Instances gossiped in every epoch, in report order.
    pub fn instances(&self) -> &[InstanceSpec] {
        &self.instances
    }

    /// Network-size guess used for leader election before the first COUNT
    /// estimate exists.
    pub fn initial_size_guess(&self) -> f64 {
        self.initial_size_guess
    }

    /// Whether epidemic epoch synchronization (Section 4.3) is enabled.
    /// Always on in deployments; the off switch exists for the ablation
    /// that demonstrates why the mechanism is necessary.
    pub fn epoch_sync(&self) -> bool {
        self.epoch_sync
    }
}

/// Builder for [`NodeConfig`] (non-consuming, per the API guidelines).
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    gamma: u32,
    cycle_length: u64,
    timeout: u64,
    instances: Vec<InstanceSpec>,
    initial_size_guess: f64,
    epoch_sync: bool,
}

impl NodeConfigBuilder {
    /// Creates a builder with the paper's defaults: γ = 30 cycles, cycle
    /// length 1000 ticks, timeout 250 ticks, no instances (at least one
    /// must be added).
    pub fn new() -> Self {
        NodeConfigBuilder {
            gamma: 30,
            cycle_length: 1_000,
            timeout: 250,
            instances: Vec::new(),
            initial_size_guess: 64.0,
            epoch_sync: true,
        }
    }

    /// Sets γ, the number of cycles per epoch.
    pub fn gamma(&mut self, gamma: u32) -> &mut Self {
        self.gamma = gamma;
        self
    }

    /// Sets δ, the cycle length in ticks.
    pub fn cycle_length(&mut self, ticks: u64) -> &mut Self {
        self.cycle_length = ticks;
        self
    }

    /// Sets the exchange timeout in ticks.
    pub fn timeout(&mut self, ticks: u64) -> &mut Self {
        self.timeout = ticks;
        self
    }

    /// Appends an instance to gossip each epoch.
    pub fn instance(&mut self, spec: InstanceSpec) -> &mut Self {
        self.instances.push(spec);
        self
    }

    /// Sets the initial network-size guess for COUNT leader election.
    pub fn initial_size_guess(&mut self, guess: f64) -> &mut Self {
        self.initial_size_guess = guess;
        self
    }

    /// Enables or disables epidemic epoch synchronization (default on).
    pub fn epoch_sync(&mut self, enabled: bool) -> &mut Self {
        self.epoch_sync = enabled;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if γ or δ is zero, the timeout is zero or
    /// not shorter than the cycle length, or no instance was added.
    pub fn build(&self) -> Result<NodeConfig, ConfigError> {
        if self.gamma == 0 {
            return Err(ConfigError::ZeroGamma);
        }
        if self.cycle_length == 0 {
            return Err(ConfigError::ZeroCycleLength);
        }
        if self.timeout == 0 || self.timeout >= self.cycle_length {
            return Err(ConfigError::BadTimeout {
                timeout: self.timeout,
                cycle: self.cycle_length,
            });
        }
        if self.instances.is_empty() {
            return Err(ConfigError::NoInstances);
        }
        Ok(NodeConfig {
            gamma: self.gamma,
            cycle_length: self.cycle_length,
            timeout: self.timeout,
            instances: self.instances.clone(),
            initial_size_guess: self.initial_size_guess,
            epoch_sync: self.epoch_sync,
        })
    }
}

impl Default for NodeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_with_one_instance() {
        let cfg = NodeConfig::builder()
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap();
        assert_eq!(cfg.gamma(), 30);
        assert_eq!(cfg.cycle_length(), 1_000);
        assert_eq!(cfg.timeout(), 250);
        assert_eq!(cfg.instances().len(), 1);
    }

    #[test]
    fn rejects_zero_gamma() {
        let err = NodeConfig::builder()
            .gamma(0)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroGamma);
    }

    #[test]
    fn rejects_zero_cycle() {
        let err = NodeConfig::builder()
            .cycle_length(0)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroCycleLength);
    }

    #[test]
    fn rejects_bad_timeout() {
        let err = NodeConfig::builder()
            .cycle_length(100)
            .timeout(100)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadTimeout { .. }));
        let err = NodeConfig::builder()
            .timeout(0)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadTimeout { .. }));
    }

    #[test]
    fn rejects_no_instances() {
        assert_eq!(
            NodeConfig::builder().build().unwrap_err(),
            ConfigError::NoInstances
        );
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = NodeConfig::builder();
        b.instance(InstanceSpec::AVERAGE);
        let one = b.build().unwrap();
        b.instance(InstanceSpec::count(10.0));
        let two = b.build().unwrap();
        assert_eq!(one.instances().len(), 1);
        assert_eq!(two.instances().len(), 2);
    }
}
