//! Closed-form results from the paper (Sections 3, 4.5 and 6).
//!
//! * [`RHO_PUSH_PULL`] — per-cycle variance reduction ρ ≈ 1/(2√e) of the
//!   push-pull protocol on sufficiently random overlays (Section 3).
//! * [`RHO_RANDOM_PAIRWISE`] — ρ = 1/e of the fully random pairwise model
//!   used to bound link-failure behaviour (Section 6.2).
//! * [`link_failure_rho_bound`] — Eq. (5): ρ_d = e^(P_d − 1).
//! * [`crash_variance_ratio`] — Theorem 1 / Eq. (2): the variance of the
//!   running mean µ_i induced by crashing a proportion P_f of the nodes
//!   before every cycle.
//! * [`cycles_for_accuracy`] — γ ≥ log_ρ ε (Section 4.5).

/// Per-cycle variance reduction of the push-pull averaging protocol on a
/// sufficiently random overlay: `1 / (2√e) ≈ 0.3033`.
pub const RHO_PUSH_PULL: f64 = 0.303_265_329_856_316_7;

/// Per-cycle variance reduction of the idealized model where each variance
/// reduction step picks a uniform random pair: `1/e ≈ 0.3679`. This is the
/// pessimistic constant used in the link-failure bound.
pub const RHO_RANDOM_PAIRWISE: f64 = 0.367_879_441_171_442_33;

/// Recomputes [`RHO_PUSH_PULL`] from first principles (`1/(2√e)`); used by
/// tests and available for documentation purposes.
pub fn rho_push_pull() -> f64 {
    1.0 / (2.0 * std::f64::consts::E.sqrt())
}

/// Upper bound on the average convergence factor under symmetric link
/// failures with probability `p_d` (paper Eq. (5)): `ρ_d = e^(p_d − 1)`.
///
/// At `p_d = 0` this is `1/e` (the pessimistic random-pair model); as
/// `p_d → 1` convergence stalls (`ρ_d → 1`). Link failure therefore only
/// slows the protocol down proportionally — it does not bias the result.
///
/// # Panics
///
/// Panics if `p_d` is outside `[0, 1]`.
pub fn link_failure_rho_bound(p_d: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_d),
        "P_d must be in [0,1], got {p_d}"
    );
    (p_d - 1.0).exp()
}

/// Theorem 1 (Eq. (2)): variance of the empirical mean µ_i after `cycles`
/// cycles, normalized by the initial variance E(σ₀²), when a proportion
/// `p_f` of the remaining nodes crashes before every cycle.
///
/// ```text
/// Var(µ_i)/E(σ₀²) = P_f / (N(1−P_f)) · (1 − (ρ/(1−P_f))^i) / (1 − ρ/(1−P_f))
/// ```
///
/// `n` is the initial network size and `rho` the per-cycle variance
/// reduction factor. Returns `0` for `p_f = 0`. If `ρ ≥ 1 − P_f` the series
/// diverges with `i` (the variance is unbounded in the limit); the formula
/// still evaluates the finite-`i` sum, handling the `ρ = 1 − P_f` boundary
/// by its limit `i · P_f / (N(1−P_f))`.
///
/// # Panics
///
/// Panics if `p_f` is outside `[0, 1)` or `n == 0`.
pub fn crash_variance_ratio(p_f: f64, n: usize, rho: f64, cycles: u32) -> f64 {
    assert!((0.0..1.0).contains(&p_f), "P_f must be in [0,1), got {p_f}");
    assert!(n > 0, "network size must be positive");
    if p_f == 0.0 || cycles == 0 {
        return 0.0;
    }
    let q = rho / (1.0 - p_f);
    let prefactor = p_f / (n as f64 * (1.0 - p_f));
    let series = if (q - 1.0).abs() < 1e-12 {
        cycles as f64
    } else {
        (1.0 - q.powi(cycles as i32)) / (1.0 - q)
    };
    prefactor * series
}

/// Expected variance after `cycles` cycles: `E(σ_i²) = ρ^i · E(σ₀²)`
/// (Section 4.5).
pub fn variance_after(cycles: u32, rho: f64, initial_variance: f64) -> f64 {
    rho.powi(cycles as i32) * initial_variance
}

/// Minimum epoch length γ needed to shrink the variance to a fraction
/// `epsilon` of its initial value: γ ≥ log_ρ ε (Section 4.5). Since ρ does
/// not depend on the network size, this is `O(1)` in N.
///
/// # Panics
///
/// Panics unless `0 < epsilon < 1` and `0 < rho < 1`.
pub fn cycles_for_accuracy(epsilon: f64, rho: f64) -> u32 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(rho > 0.0 && rho < 1.0, "rho must be in (0,1)");
    (epsilon.ln() / rho.ln()).ceil() as u32
}

/// Wall-clock slowdown factor under link failure probability `p_d`: the
/// system behaves like a failure-free system running `1/(1−p_d)` times
/// slower (Section 6.2).
///
/// # Panics
///
/// Panics if `p_d` is outside `[0, 1)`.
pub fn link_failure_slowdown(p_d: f64) -> f64 {
    assert!((0.0..1.0).contains(&p_d), "P_d must be in [0,1), got {p_d}");
    1.0 / (1.0 - p_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_constant_matches_formula() {
        assert!((RHO_PUSH_PULL - rho_push_pull()).abs() < 1e-15);
        assert!((RHO_PUSH_PULL - 0.30327).abs() < 1e-5);
        assert!((RHO_RANDOM_PAIRWISE - (-1.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn link_bound_endpoints() {
        assert!((link_failure_rho_bound(0.0) - RHO_RANDOM_PAIRWISE).abs() < 1e-12);
        assert!((link_failure_rho_bound(1.0) - 1.0).abs() < 1e-12);
        // Monotone increasing in p_d.
        let mut last = 0.0;
        for i in 0..=10 {
            let v = link_failure_rho_bound(i as f64 / 10.0);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "P_d must be in [0,1]")]
    fn link_bound_rejects_bad_probability() {
        link_failure_rho_bound(1.5);
    }

    #[test]
    fn crash_variance_zero_cases() {
        assert_eq!(crash_variance_ratio(0.0, 1000, RHO_PUSH_PULL, 20), 0.0);
        assert_eq!(crash_variance_ratio(0.1, 1000, RHO_PUSH_PULL, 0), 0.0);
    }

    #[test]
    fn crash_variance_matches_manual_series() {
        // Sum Var(d_j) j=0..i-1 with Var(d_j) = Pf/(1-Pf) * rho^j / (N (1-Pf)^j).
        let (p_f, n, rho, cycles) = (0.05, 10_000usize, RHO_PUSH_PULL, 20u32);
        let mut manual = 0.0;
        for j in 0..cycles {
            manual +=
                p_f / (1.0 - p_f) * rho.powi(j as i32) / (n as f64 * (1.0 - p_f).powi(j as i32));
        }
        let formula = crash_variance_ratio(p_f, n, rho, cycles);
        assert!((manual - formula).abs() / manual < 1e-10);
    }

    #[test]
    fn crash_variance_increases_with_pf() {
        let mut last = 0.0;
        for i in 1..=6 {
            let p_f = i as f64 * 0.05;
            let v = crash_variance_ratio(p_f, 100_000, RHO_PUSH_PULL, 20);
            assert!(v > last, "not increasing at P_f={p_f}");
            last = v;
        }
    }

    #[test]
    fn crash_variance_shrinks_with_network_size() {
        let small = crash_variance_ratio(0.1, 1_000, RHO_PUSH_PULL, 20);
        let large = crash_variance_ratio(0.1, 1_000_000, RHO_PUSH_PULL, 20);
        assert!((small / large - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn crash_variance_boundary_q_equals_one() {
        // rho = 1 - p_f makes the geometric ratio exactly 1.
        let p_f = 1.0 - RHO_PUSH_PULL;
        let v = crash_variance_ratio(p_f, 1000, RHO_PUSH_PULL, 7);
        let expected = 7.0 * p_f / (1000.0 * (1.0 - p_f));
        assert!((v - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn crash_variance_paper_magnitude() {
        // Figure 5: at N = 1e5 and P_f = 0.3, Var(µ20)/E(σ0²) ≈ 1.8e-5.
        let v = crash_variance_ratio(0.3, 100_000, RHO_PUSH_PULL, 20);
        assert!(v > 5e-6 && v < 5e-5, "magnitude off: {v}");
    }

    #[test]
    fn variance_after_decays_exponentially() {
        let v0 = 123.0;
        let v10 = variance_after(10, RHO_PUSH_PULL, v0);
        assert!((v10 / v0 - RHO_PUSH_PULL.powi(10)).abs() < 1e-12);
        assert_eq!(variance_after(0, RHO_PUSH_PULL, v0), v0);
    }

    #[test]
    fn cycles_for_accuracy_examples() {
        // 1e-10 precision needs ~20 cycles at rho = 1/(2 sqrt e).
        let gamma = cycles_for_accuracy(1e-10, RHO_PUSH_PULL);
        assert_eq!(gamma, 20);
        // Coarser accuracy needs fewer cycles.
        assert!(cycles_for_accuracy(1e-2, RHO_PUSH_PULL) < gamma);
        // Size-independence: identical for any epsilon regardless of N —
        // there is no N parameter at all, which is the point.
    }

    #[test]
    fn variance_shrinks_to_epsilon_within_gamma() {
        let eps = 1e-6;
        let gamma = cycles_for_accuracy(eps, RHO_PUSH_PULL);
        assert!(variance_after(gamma, RHO_PUSH_PULL, 1.0) <= eps);
        assert!(variance_after(gamma - 1, RHO_PUSH_PULL, 1.0) > eps);
    }

    #[test]
    fn slowdown_factors() {
        assert_eq!(link_failure_slowdown(0.0), 1.0);
        assert!((link_failure_slowdown(0.5) - 2.0).abs() < 1e-12);
        assert!((link_failure_slowdown(0.9) - 10.0).abs() < 1e-9);
    }
}
