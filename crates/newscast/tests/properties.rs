//! Property-based tests of the NEWSCAST view-merge invariants.
//!
//! The event-driven engine now trusts [`View::merge_with`] as its single
//! membership-merge primitive, so the protocol invariants — bounded size,
//! no self-entries, freshest-copy-wins, deterministic tie-breaking — are
//! pinned down here over arbitrary descriptor soups rather than the
//! hand-picked cases of the unit tests.

use epidemic_newscast::{Descriptor, View};
use proptest::prelude::*;

/// Builds a view of capacity `c` holding the merge result of `entries`.
fn view_from(c: usize, entries: &[Descriptor], self_node: u32) -> View {
    let mut v = View::new(c);
    v.merge_with(entries, self_node);
    v
}

fn descriptors(raw: &[(u32, u32)]) -> Vec<Descriptor> {
    raw.iter().map(|&(n, t)| Descriptor::new(n, t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_respects_capacity_and_self_exclusion(
        c in 1usize..12,
        own in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        received in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        self_node in 0u32..24,
    ) {
        let mut view = view_from(c, &descriptors(&own), self_node);
        view.merge_with(&descriptors(&received), self_node);
        prop_assert!(view.len() <= c, "view overflowed: {} > {c}", view.len());
        prop_assert!(!view.contains(self_node), "self entry survived merge");
        // No node is described twice.
        for (i, a) in view.entries().iter().enumerate() {
            for b in &view.entries()[i + 1..] {
                prop_assert!(a.node != b.node, "duplicate node {}", a.node);
            }
        }
    }

    #[test]
    fn merge_keeps_freshest_timestamp_per_peer(
        c in 1usize..12,
        own in prop::collection::vec((0u32..16, 0u32..100), 0..16),
        received in prop::collection::vec((0u32..16, 0u32..100), 0..16),
    ) {
        let self_node = 99u32; // outside the id range: nothing filtered
        let before = view_from(c, &descriptors(&own), self_node);
        let mut view = before.clone();
        let received = descriptors(&received);
        view.merge_with(&received, self_node);
        // Whatever survived holds the freshest copy seen for that node
        // across the whole union.
        for d in view.entries() {
            let freshest = before
                .entries()
                .iter()
                .chain(&received)
                .filter(|o| o.node == d.node)
                .map(|o| o.timestamp)
                .max()
                .expect("entry must come from the union");
            prop_assert_eq!(
                d.timestamp, freshest,
                "node {} kept ts {} over fresher {}", d.node, d.timestamp, freshest
            );
        }
    }

    #[test]
    fn merge_is_commutative_up_to_tie_breaking(
        c in 1usize..12,
        left in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        right in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        self_node in 0u32..24,
    ) {
        // One merge over the union must not care which side contributed
        // which descriptor: the (timestamp desc, id asc) tie-break makes
        // the survivor set a pure function of the union.
        let (left, right) = (descriptors(&left), descriptors(&right));
        let mut ab: Vec<Descriptor> = left.clone();
        ab.extend_from_slice(&right);
        let mut ba: Vec<Descriptor> = right;
        ba.extend_from_slice(&left);
        let va = view_from(c, &ab, self_node);
        let vb = view_from(c, &ba, self_node);
        prop_assert_eq!(va.entries(), vb.entries());
    }

    #[test]
    fn merge_is_idempotent(
        c in 1usize..12,
        own in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        received in prop::collection::vec((0u32..24, 0u32..100), 0..20),
        self_node in 0u32..24,
    ) {
        let mut view = view_from(c, &descriptors(&own), self_node);
        let received = descriptors(&received);
        view.merge_with(&received, self_node);
        let once = view.clone();
        view.merge_with(&received, self_node);
        prop_assert_eq!(view.entries(), once.entries());
    }

    #[test]
    fn insert_sequence_matches_merge_invariants(
        c in 1usize..10,
        ops in prop::collection::vec((0u32..16, 0u32..100), 1..30),
    ) {
        // The incremental insert path maintains exactly the same
        // invariants as the batch merge: bounded, deduplicated, sorted
        // freshest-first.
        let mut view = View::new(c);
        for d in descriptors(&ops) {
            view.insert(d);
        }
        prop_assert!(view.len() <= c);
        let entries = view.entries();
        for pair in entries.windows(2) {
            let earlier = (std::cmp::Reverse(pair[0].timestamp), pair[0].node);
            let later = (std::cmp::Reverse(pair[1].timestamp), pair[1].node);
            prop_assert!(earlier < later, "not freshest-first: {pair:?}");
        }
        // An inserted node that survived holds its freshest inserted copy.
        for d in entries {
            let freshest = ops
                .iter()
                .filter(|&&(n, _)| n == d.node)
                .map(|&(_, t)| t)
                .max()
                .unwrap();
            prop_assert_eq!(d.timestamp, freshest);
        }
    }
}
