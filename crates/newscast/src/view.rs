//! Descriptors and partial views.
//!
//! The unit of NEWSCAST state is the [`Descriptor`]: a node identifier plus
//! the logical timestamp at which that node was last known to be alive. A
//! [`View`] is a bounded set of descriptors ordered freshest-first; the
//! merge rule of the protocol ("keep the `c` freshest of the union,
//! deduplicated by node") lives here as [`View::merge_with`].

use std::fmt;

/// A membership descriptor: node identifier plus freshness timestamp.
///
/// Timestamps are logical cycle counters. Fresher (larger) timestamps win
/// during merges; ties break toward the smaller node id so that merges are
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Descriptor {
    /// Identifier of the described node (dense simulation index).
    pub node: u32,
    /// Logical time at which this descriptor was created.
    pub timestamp: u32,
}

impl Descriptor {
    /// Creates a descriptor.
    pub const fn new(node: u32, timestamp: u32) -> Self {
        Descriptor { node, timestamp }
    }

    /// Freshest-first ordering key: larger timestamp first, then smaller id.
    #[inline]
    fn freshness_key(&self) -> (std::cmp::Reverse<u32>, u32) {
        (std::cmp::Reverse(self.timestamp), self.node)
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}@{}", self.node, self.timestamp)
    }
}

/// A bounded, freshest-first set of descriptors.
///
/// Invariants maintained by every operation:
/// * at most `capacity` entries;
/// * no two entries describe the same node;
/// * entries are sorted freshest-first (timestamp descending, id ascending).
///
/// # Examples
///
/// ```
/// use epidemic_newscast::{Descriptor, View};
///
/// let mut view = View::new(3);
/// view.insert(Descriptor::new(1, 10));
/// view.insert(Descriptor::new(2, 12));
/// view.insert(Descriptor::new(1, 15)); // refreshes node 1
/// assert_eq!(view.len(), 2);
/// assert_eq!(view.entries()[0], Descriptor::new(1, 15));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    capacity: usize,
    entries: Vec<Descriptor>,
}

impl View {
    /// Creates an empty view with the given capacity (the protocol's `c`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        View {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of descriptors (the protocol parameter `c`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The descriptors, freshest first.
    pub fn entries(&self) -> &[Descriptor] {
        &self.entries
    }

    /// Returns `true` if some entry describes `node`.
    pub fn contains(&self, node: u32) -> bool {
        self.entries.iter().any(|d| d.node == node)
    }

    /// Inserts one descriptor, keeping the freshest entry per node and
    /// evicting the stalest descriptor if the view is full.
    pub fn insert(&mut self, descriptor: Descriptor) {
        if let Some(existing) = self.entries.iter_mut().find(|d| d.node == descriptor.node) {
            if descriptor.timestamp > existing.timestamp {
                existing.timestamp = descriptor.timestamp;
            }
        } else if self.entries.len() < self.capacity {
            self.entries.push(descriptor);
        } else {
            // Replace the stalest entry if the newcomer is fresher.
            let (idx, stalest) = self
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(_, d)| d.freshness_key())
                .expect("full view is non-empty");
            if descriptor.freshness_key() < stalest.freshness_key() {
                self.entries[idx] = descriptor;
            } else {
                return;
            }
        }
        self.entries.sort_unstable_by_key(Descriptor::freshness_key);
    }

    /// The NEWSCAST merge: combine this view with descriptors received from
    /// a peer, drop any descriptor of `self_node`, deduplicate by node
    /// keeping the freshest, and keep the `c` freshest overall.
    ///
    /// `received` is typically the peer's view plus a fresh descriptor of
    /// the peer itself.
    pub fn merge_with(&mut self, received: &[Descriptor], self_node: u32) {
        let mut pool: Vec<Descriptor> = Vec::with_capacity(self.entries.len() + received.len());
        pool.extend_from_slice(&self.entries);
        pool.extend_from_slice(received);
        pool.retain(|d| d.node != self_node);
        // Deduplicate by node keeping the freshest copy: group per node
        // first (dedup only removes consecutive repeats), then order the
        // survivors freshest-first.
        pool.sort_unstable_by_key(|d| (d.node, std::cmp::Reverse(d.timestamp)));
        pool.dedup_by_key(|d| d.node);
        pool.sort_unstable_by_key(Descriptor::freshness_key);
        pool.truncate(self.capacity);
        self.entries = pool;
    }

    /// Like [`View::merge_with`], but clamps every incoming timestamp to
    /// `max_timestamp` first. Merge boundaries use this so a peer whose
    /// clock runs ahead can claim at most a bounded freshness head start:
    /// without the clamp, one drifted node's far-future descriptors crowd
    /// every honestly-stamped entry out of the views they touch.
    pub fn merge_clamped(&mut self, received: &[Descriptor], self_node: u32, max_timestamp: u32) {
        let clamped: Vec<Descriptor> = received
            .iter()
            .map(|d| Descriptor::new(d.node, d.timestamp.min(max_timestamp)))
            .collect();
        self.merge_with(&clamped, self_node);
    }

    /// Removes the descriptor of `node`, if present. Returns whether an
    /// entry was removed. Used by deployments that evict unresponsive peers
    /// immediately instead of waiting for age-out.
    pub fn remove(&mut self, node: u32) -> bool {
        let before = self.entries.len();
        self.entries.retain(|d| d.node != node);
        before != self.entries.len()
    }

    /// Timestamp of the freshest entry, or `None` if empty.
    pub fn freshest(&self) -> Option<u32> {
        self.entries.first().map(|d| d.timestamp)
    }

    /// Timestamp of the stalest entry, or `None` if empty.
    pub fn stalest(&self) -> Option<u32> {
        self.entries.last().map(|d| d.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(capacity: usize, entries: &[(u32, u32)]) -> View {
        let mut v = View::new(capacity);
        for &(node, ts) in entries {
            v.insert(Descriptor::new(node, ts));
        }
        v
    }

    #[test]
    fn insert_keeps_freshest_first() {
        let v = view_of(5, &[(1, 3), (2, 9), (3, 6)]);
        let ts: Vec<u32> = v.entries().iter().map(|d| d.timestamp).collect();
        assert_eq!(ts, vec![9, 6, 3]);
    }

    #[test]
    fn insert_deduplicates_by_node() {
        let v = view_of(5, &[(1, 3), (1, 8), (1, 5)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.entries()[0], Descriptor::new(1, 8));
    }

    #[test]
    fn insert_never_downgrades_freshness() {
        let v = view_of(5, &[(1, 8), (1, 3)]);
        assert_eq!(v.entries()[0].timestamp, 8);
    }

    #[test]
    fn full_view_evicts_stalest() {
        let mut v = view_of(2, &[(1, 5), (2, 7)]);
        v.insert(Descriptor::new(3, 9));
        assert_eq!(v.len(), 2);
        assert!(v.contains(3));
        assert!(v.contains(2));
        assert!(!v.contains(1));
    }

    #[test]
    fn full_view_rejects_staler_newcomer() {
        let mut v = view_of(2, &[(1, 5), (2, 7)]);
        v.insert(Descriptor::new(3, 2));
        assert!(!v.contains(3));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Same timestamps: smaller id counts as fresher.
        let v = view_of(2, &[(9, 5), (4, 5), (7, 5)]);
        let ids: Vec<u32> = v.entries().iter().map(|d| d.node).collect();
        assert_eq!(ids, vec![4, 7]);
    }

    #[test]
    fn merge_unions_and_truncates() {
        let mut a = view_of(3, &[(1, 10), (2, 4)]);
        let received = [
            Descriptor::new(3, 8),
            Descriptor::new(4, 6),
            Descriptor::new(5, 2),
        ];
        a.merge_with(&received, 0);
        assert_eq!(a.len(), 3);
        let ids: Vec<u32> = a.entries().iter().map(|d| d.node).collect();
        assert_eq!(ids, vec![1, 3, 4]); // freshest three of the union
    }

    #[test]
    fn merge_drops_self_descriptor() {
        let mut a = view_of(3, &[(1, 10)]);
        a.merge_with(&[Descriptor::new(7, 99), Descriptor::new(2, 5)], 7);
        assert!(!a.contains(7));
        assert!(a.contains(2));
    }

    #[test]
    fn merge_keeps_freshest_duplicate() {
        let mut a = view_of(3, &[(1, 4)]);
        a.merge_with(&[Descriptor::new(1, 9)], 0);
        assert_eq!(a.len(), 1);
        assert_eq!(a.entries()[0].timestamp, 9);

        let mut b = view_of(3, &[(1, 9)]);
        b.merge_with(&[Descriptor::new(1, 4)], 0);
        assert_eq!(b.entries()[0].timestamp, 9);
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = view_of(4, &[(1, 5), (2, 9), (3, 1)]);
        let received = [Descriptor::new(4, 7), Descriptor::new(2, 11)];
        a.merge_with(&received, 0);
        let once = a.clone();
        a.merge_with(&received, 0);
        assert_eq!(a, once);
    }

    #[test]
    fn merge_clamped_leaves_honest_timestamps_alone() {
        let mut v = View::new(3);
        v.merge_clamped(&[Descriptor::new(1, 10), Descriptor::new(2, 99)], 0, 50);
        let ts_of = |n| v.entries().iter().find(|d| d.node == n).unwrap().timestamp;
        assert_eq!(ts_of(1), 10); // below the bound: untouched
        assert_eq!(ts_of(2), 50); // future-stamped: clamped to the bound
    }

    #[test]
    fn clamped_future_entries_age_out_normally() {
        let mut v = view_of(2, &[(1, 18), (2, 19)]);
        v.merge_clamped(&[Descriptor::new(8, 9_000)], 0, 20);
        assert!(v.contains(8));
        // The drifted stamp was clamped to "now", so honest later entries
        // overtake it instead of losing to a far-future timestamp forever.
        v.merge_with(&[Descriptor::new(3, 30), Descriptor::new(4, 31)], 0);
        assert!(
            !v.contains(8),
            "clamped entry failed to age out: {:?}",
            v.entries()
        );
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut v = view_of(3, &[(1, 5), (2, 7)]);
        assert!(v.remove(1));
        assert!(!v.remove(1));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn freshest_and_stalest() {
        let v = view_of(4, &[(1, 5), (2, 9), (3, 1)]);
        assert_eq!(v.freshest(), Some(9));
        assert_eq!(v.stalest(), Some(1));
        assert_eq!(View::new(2).freshest(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        View::new(0);
    }

    #[test]
    fn descriptor_display() {
        assert_eq!(Descriptor::new(4, 17).to_string(), "n4@17");
    }
}
