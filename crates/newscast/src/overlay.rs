//! Whole-network NEWSCAST substrate for simulations.
//!
//! [`Overlay`] owns one [`View`] per node and advances the protocol in
//! cycles, mirroring the cycle-driven model of the paper's own simulator:
//! in every cycle each live node, in random order, exchanges views with a
//! random live member of its view. Crashed nodes keep their slot (so
//! descriptors can still point at them and age out naturally) and new nodes
//! are appended with fresh identities via [`Overlay::join_via`].

use crate::view::{Descriptor, View};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::sample::NeighborSampling;
use std::fmt;

/// A simulated NEWSCAST overlay over a growing population of nodes.
///
/// Node identities are dense indices. A crashed node's index is never
/// reused: churn appends brand-new indices, exactly like fresh identifiers
/// in a deployed system, so stale descriptors never "resurrect".
///
/// # Examples
///
/// ```
/// use epidemic_common::rng::Xoshiro256;
/// use epidemic_newscast::Overlay;
///
/// let mut rng = Xoshiro256::seed_from_u64(3);
/// let mut overlay = Overlay::random_init(100, 10, &mut rng);
/// overlay.crash(7);
/// let newcomer = overlay.join_via(0, 1);
/// assert_eq!(newcomer, 100);
/// overlay.run_cycle(1, &mut rng);
/// assert_eq!(overlay.alive_count(), 100);
/// ```
#[derive(Clone)]
pub struct Overlay {
    c: usize,
    views: Vec<View>,
    alive: Vec<bool>,
    alive_count: usize,
    permutation: Vec<u32>,
    evict_on_timeout: bool,
}

impl Overlay {
    /// Bootstraps an overlay of `n` nodes whose initial views hold `c`
    /// uniformly random distinct peers with timestamp 0.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `n < 2` or `c >= n`.
    pub fn random_init(n: usize, c: usize, rng: &mut Xoshiro256) -> Self {
        assert!(n >= 2, "overlay needs at least two nodes");
        assert!(c >= 1 && c < n, "view size must satisfy 1 <= c < n");
        let mut views = Vec::with_capacity(n);
        for node in 0..n {
            let mut view = View::new(c);
            for raw in rng.sample_distinct(n - 1, c) {
                let peer = if raw >= node { raw + 1 } else { raw };
                view.insert(Descriptor::new(peer as u32, 0));
            }
            views.push(view);
        }
        Overlay {
            c,
            views,
            alive: vec![true; n],
            alive_count: n,
            permutation: Vec::new(),
            evict_on_timeout: false,
        }
    }

    /// Enables eviction of unresponsive peers: when an exchange times out
    /// (the selected peer is crashed), the initiator drops that
    /// descriptor immediately instead of waiting for it to age out.
    ///
    /// The original protocol relies purely on freshness-based age-out;
    /// eviction is a common deployment hardening that speeds up healing
    /// after crash waves at the cost of occasionally dropping a peer that
    /// was only transiently unreachable.
    pub fn set_evict_on_timeout(&mut self, enabled: bool) {
        self.evict_on_timeout = enabled;
    }

    /// View size parameter `c`.
    pub fn view_size(&self) -> usize {
        self.c
    }

    /// Total number of node slots ever created (alive + crashed).
    pub fn slot_count(&self) -> usize {
        self.views.len()
    }

    /// Number of currently live nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Returns `true` if `node` is live.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Marks `node` as crashed. Crashing an already-crashed node is a
    /// no-op. Its descriptors remain in other views until they age out.
    pub fn crash(&mut self, node: usize) {
        if self.alive[node] {
            self.alive[node] = false;
            self.alive_count -= 1;
        }
    }

    /// Adds a brand-new node that bootstraps its view from `introducer`
    /// (copying the introducer's view plus a fresh descriptor of the
    /// introducer — the paper's out-of-band discovery). Returns the new
    /// node's index.
    ///
    /// # Panics
    ///
    /// Panics if the introducer is crashed or out of range.
    pub fn join_via(&mut self, introducer: usize, now: u32) -> usize {
        assert!(
            self.alive[introducer],
            "introducer {introducer} is not alive"
        );
        let new_index = self.views.len();
        let mut view = View::new(self.c);
        let snapshot: Vec<Descriptor> = self.views[introducer].entries().to_vec();
        view.merge_with(&snapshot, new_index as u32);
        view.insert(Descriptor::new(introducer as u32, now));
        self.views.push(view);
        self.alive.push(true);
        self.alive_count += 1;
        new_index
    }

    /// The current view of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn view(&self, node: usize) -> &View {
        &self.views[node]
    }

    /// Runs one NEWSCAST cycle at logical time `now`: every live node, in a
    /// fresh random order, attempts one view exchange with a random member
    /// of its view. Exchanges with crashed peers are skipped (timeout).
    ///
    /// Returns the number of successful exchanges.
    pub fn run_cycle(&mut self, now: u32, rng: &mut Xoshiro256) -> usize {
        self.permutation.clear();
        self.permutation
            .extend((0..self.views.len() as u32).filter(|&i| self.alive[i as usize]));
        rng.shuffle(&mut self.permutation);
        let mut exchanges = 0;
        for idx in 0..self.permutation.len() {
            let initiator = self.permutation[idx] as usize;
            if !self.alive[initiator] {
                continue; // crashed mid-cycle by an external failure model
            }
            let Some(peer) = self.pick_peer(initiator, rng) else {
                continue;
            };
            if !self.alive[peer] {
                // Timeout: the descriptor ages out naturally, or is
                // dropped right away when eviction is enabled.
                if self.evict_on_timeout {
                    self.views[initiator].remove(peer as u32);
                }
                continue;
            }
            self.exchange(initiator, peer, now);
            exchanges += 1;
        }
        exchanges
    }

    /// Performs the symmetric view exchange between two live nodes.
    pub fn exchange(&mut self, a: usize, b: usize, now: u32) {
        debug_assert!(a != b, "exchange with self");
        // Each side sends its current view plus a fresh self-descriptor.
        let mut payload_a: Vec<Descriptor> = self.views[a].entries().to_vec();
        payload_a.push(Descriptor::new(a as u32, now));
        let mut payload_b: Vec<Descriptor> = self.views[b].entries().to_vec();
        payload_b.push(Descriptor::new(b as u32, now));
        self.views[a].merge_with(&payload_b, a as u32);
        self.views[b].merge_with(&payload_a, b as u32);
    }

    fn pick_peer(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        let entries = self.views[node].entries();
        rng.choose(entries).map(|d| d.node as usize)
    }
}

impl fmt::Debug for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Overlay")
            .field("c", &self.c)
            .field("slots", &self.slot_count())
            .field("alive", &self.alive_count)
            .finish()
    }
}

impl NeighborSampling for Overlay {
    fn node_count(&self) -> usize {
        self.slot_count()
    }

    /// Samples a uniform member of `node`'s current view. The returned
    /// peer may be crashed — callers model the resulting timeout, exactly
    /// like a real deployment.
    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        if !self.alive[node] {
            return None;
        }
        self.pick_peer(node, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn random_init_views_are_valid() {
        let mut r = rng(1);
        let overlay = Overlay::random_init(50, 10, &mut r);
        assert_eq!(overlay.slot_count(), 50);
        assert_eq!(overlay.alive_count(), 50);
        for node in 0..50 {
            let v = overlay.view(node);
            assert_eq!(v.len(), 10);
            assert!(!v.contains(node as u32), "self in view of {node}");
        }
    }

    #[test]
    #[should_panic(expected = "view size")]
    fn random_init_rejects_large_c() {
        Overlay::random_init(5, 5, &mut rng(2));
    }

    #[test]
    fn cycle_refreshes_timestamps() {
        let mut r = rng(3);
        let mut overlay = Overlay::random_init(100, 8, &mut r);
        for cycle in 1..=5 {
            overlay.run_cycle(cycle, &mut r);
        }
        // After a few cycles, most views contain fresh descriptors.
        let fresh_views = (0..100)
            .filter(|&n| overlay.view(n).freshest().unwrap_or(0) >= 4)
            .count();
        assert!(fresh_views > 90, "only {fresh_views} views saw fresh data");
    }

    #[test]
    fn exchange_inserts_fresh_peer_descriptors() {
        let mut r = rng(4);
        let mut overlay = Overlay::random_init(10, 3, &mut r);
        overlay.exchange(0, 1, 42);
        assert!(overlay.view(0).contains(1));
        assert!(overlay.view(1).contains(0));
        let d = overlay
            .view(0)
            .entries()
            .iter()
            .find(|d| d.node == 1)
            .unwrap();
        assert_eq!(d.timestamp, 42);
    }

    #[test]
    fn crash_and_counts() {
        let mut r = rng(5);
        let mut overlay = Overlay::random_init(10, 3, &mut r);
        overlay.crash(4);
        overlay.crash(4); // idempotent
        assert_eq!(overlay.alive_count(), 9);
        assert!(!overlay.is_alive(4));
    }

    #[test]
    fn join_via_copies_introducer_view() {
        let mut r = rng(6);
        let mut overlay = Overlay::random_init(10, 3, &mut r);
        let newcomer = overlay.join_via(2, 7);
        assert_eq!(newcomer, 10);
        assert!(overlay.is_alive(newcomer));
        assert_eq!(overlay.alive_count(), 11);
        assert!(overlay.view(newcomer).contains(2));
        assert!(!overlay.view(newcomer).contains(newcomer as u32));
    }

    #[test]
    #[should_panic(expected = "not alive")]
    fn join_via_dead_introducer_panics() {
        let mut r = rng(7);
        let mut overlay = Overlay::random_init(10, 3, &mut r);
        overlay.crash(2);
        overlay.join_via(2, 1);
    }

    #[test]
    fn dead_nodes_do_not_initiate() {
        let mut r = rng(8);
        let mut overlay = Overlay::random_init(20, 4, &mut r);
        for n in 1..20 {
            overlay.crash(n);
        }
        // Sole survivor has only dead peers: no exchange can succeed.
        let exchanges = overlay.run_cycle(1, &mut r);
        assert_eq!(exchanges, 0);
    }

    #[test]
    fn determinism_across_runs() {
        let build = |seed| {
            let mut r = rng(seed);
            let mut o = Overlay::random_init(64, 6, &mut r);
            for cycle in 1..=10 {
                o.run_cycle(cycle, &mut r);
            }
            (0..64)
                .map(|n| o.view(n).entries().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42));
    }

    #[test]
    fn sampling_ignores_dead_sampler() {
        let mut r = rng(9);
        let mut overlay = Overlay::random_init(10, 3, &mut r);
        overlay.crash(0);
        assert_eq!(overlay.sample_neighbor(0, &mut r), None);
        assert!(overlay.sample_neighbor(1, &mut r).is_some());
    }

    #[test]
    fn eviction_speeds_up_healing() {
        let dead_fraction_after = |evict: bool| -> f64 {
            let mut r = rng(31);
            let mut overlay = Overlay::random_init(400, 20, &mut r);
            overlay.set_evict_on_timeout(evict);
            for cycle in 1..=5 {
                overlay.run_cycle(cycle, &mut r);
            }
            for node in 0..200 {
                overlay.crash(node);
            }
            for cycle in 6..=12 {
                overlay.run_cycle(cycle, &mut r);
            }
            let mut dead = 0usize;
            let mut total = 0usize;
            for node in 200..400 {
                for d in overlay.view(node).entries() {
                    total += 1;
                    if !overlay.is_alive(d.node as usize) {
                        dead += 1;
                    }
                }
            }
            dead as f64 / total as f64
        };
        let without = dead_fraction_after(false);
        let with = dead_fraction_after(true);
        assert!(
            with < without,
            "eviction should heal faster: {without} -> {with}"
        );
    }

    #[test]
    fn self_healing_after_mass_crash() {
        let mut r = rng(10);
        let n = 1200;
        let mut overlay = Overlay::random_init(n, 20, &mut r);
        // Warm up so timestamps are current.
        for cycle in 1..=5 {
            overlay.run_cycle(cycle, &mut r);
        }
        // Kill half the network.
        for node in 0..n / 2 {
            overlay.crash(node);
        }
        for cycle in 6..=50 {
            overlay.run_cycle(cycle, &mut r);
        }
        // Views of survivors should now be dominated by live peers. A small
        // residue can persist in clusters that were partitioned off by the
        // simultaneous 50% crash (they lack enough live peers to displace
        // stale entries), so the bound is not zero.
        let mut dead_entries = 0usize;
        let mut total = 0usize;
        for node in n / 2..n {
            for d in overlay.view(node).entries() {
                total += 1;
                if !overlay.is_alive(d.node as usize) {
                    dead_entries += 1;
                }
            }
        }
        let frac = dead_entries as f64 / total as f64;
        assert!(
            frac < 0.05,
            "dead-entry fraction {frac} too high after healing"
        );
    }
}
