//! NEWSCAST — gossip-based membership for dynamic overlays.
//!
//! NEWSCAST (Jelasity, Kowalczyk, van Steen, 2003) is the decentralized
//! membership protocol the DSN 2004 aggregation paper uses to keep the
//! overlay "sufficiently random" in the face of churn (Section 4.4). Each
//! node maintains a *view*: a fixed-size set of `(node, timestamp)`
//! descriptors. Periodically a node exchanges views with a random member of
//! its own view; both sides then keep the `c` freshest descriptors from the
//! union, always injecting a fresh descriptor of their exchange partner.
//! Crashed nodes stop injecting fresh descriptors of themselves, so their
//! stale entries age out of the system — the overlay is self-healing.
//!
//! This crate provides:
//!
//! * [`Descriptor`] and [`View`] — the protocol state ([`view`]).
//! * [`Overlay`] — a whole-network simulation substrate that runs NEWSCAST
//!   cycles over millions of nodes and implements
//!   [`epidemic_common::sample::NeighborSampling`], so the aggregation
//!   protocol can draw peers from live views ([`overlay`]).
//! * [`metrics`] — overlay-health analysis: in-degree distribution,
//!   connectivity, freshness. Gated behind the default `graph-metrics`
//!   feature, the crate's only reason to depend on `epidemic-topology`.
//!
//! # Examples
//!
//! ```
//! use epidemic_common::rng::Xoshiro256;
//! use epidemic_common::sample::NeighborSampling;
//! use epidemic_newscast::Overlay;
//!
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let mut overlay = Overlay::random_init(500, 30, &mut rng);
//! for cycle in 1..=20 {
//!     overlay.run_cycle(cycle, &mut rng);
//! }
//! let peer = overlay.sample_neighbor(0, &mut rng);
//! assert!(peer.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(feature = "graph-metrics")]
pub mod metrics;
pub mod node;
pub mod overlay;
pub mod view;

pub use node::{MembershipConfig, MembershipNode};
pub use overlay::Overlay;
pub use view::{Descriptor, View};
