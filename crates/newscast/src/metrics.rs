//! Overlay-health analysis.
//!
//! The robustness arguments of the paper lean on NEWSCAST maintaining a
//! "sufficiently random" and connected overlay under churn. These helpers
//! quantify that: in-degree balance, connectivity of the directed view
//! graph, descriptor freshness, and the fraction of view entries pointing
//! at crashed peers (the self-healing signal).

use crate::overlay::Overlay;
use epidemic_common::stats::{OnlineStats, Summary};
use epidemic_topology::{metrics as graph_metrics, Graph, GraphBuilder};

/// Builds the directed snapshot graph of the current views, restricted to
/// live nodes (edges to crashed peers are dropped).
pub fn snapshot_graph(overlay: &Overlay) -> Graph {
    let n = overlay.slot_count();
    let mut b = GraphBuilder::with_degree_hint(n, overlay.view_size());
    for node in 0..n {
        if !overlay.is_alive(node) {
            continue;
        }
        for d in overlay.view(node).entries() {
            let peer = d.node as usize;
            if overlay.is_alive(peer) {
                b.add_edge(node, peer);
            }
        }
    }
    b.build()
}

/// Returns `true` if the live part of the overlay forms one weakly
/// connected component.
///
/// Crashed slots are excluded from the check: the snapshot graph contains
/// them as isolated vertices, so we verify that all *live* nodes share one
/// component instead of calling plain `is_connected`.
pub fn is_connected(overlay: &Overlay) -> bool {
    let g = snapshot_graph(overlay);
    let components = graph_metrics::connected_components(&g);
    let mut live_component = None;
    for (node, &component) in components.iter().enumerate() {
        if !overlay.is_alive(node) {
            continue;
        }
        match live_component {
            None => live_component = Some(component),
            Some(c) if c != component => return false,
            _ => {}
        }
    }
    live_component.is_some()
}

/// In-degree of every slot: how many live views contain a descriptor of it.
pub fn in_degrees(overlay: &Overlay) -> Vec<usize> {
    let mut counts = vec![0usize; overlay.slot_count()];
    for node in 0..overlay.slot_count() {
        if !overlay.is_alive(node) {
            continue;
        }
        for d in overlay.view(node).entries() {
            counts[d.node as usize] += 1;
        }
    }
    counts
}

/// Summary of the in-degree distribution over live nodes.
pub fn in_degree_summary(overlay: &Overlay) -> Summary {
    let counts = in_degrees(overlay);
    let stats: OnlineStats = counts
        .iter()
        .enumerate()
        .filter(|&(node, _)| overlay.is_alive(node))
        .map(|(_, &c)| c as f64)
        .collect();
    stats.summary()
}

/// Summary of descriptor ages (`now - timestamp`) across live views.
pub fn freshness_summary(overlay: &Overlay, now: u32) -> Summary {
    let mut stats = OnlineStats::new();
    for node in 0..overlay.slot_count() {
        if !overlay.is_alive(node) {
            continue;
        }
        for d in overlay.view(node).entries() {
            stats.push(f64::from(now.saturating_sub(d.timestamp)));
        }
    }
    stats.summary()
}

/// Fraction of live nodes inside the largest weakly connected component —
/// `1.0` for a healthy overlay, lower when a crash wave partitioned it.
pub fn largest_component_fraction(overlay: &Overlay) -> f64 {
    let live_total = overlay.alive_count();
    if live_total == 0 {
        return 0.0;
    }
    let g = snapshot_graph(overlay);
    let components = graph_metrics::connected_components(&g);
    let mut counts = std::collections::HashMap::new();
    for (node, &component) in components.iter().enumerate() {
        if overlay.is_alive(node) {
            *counts.entry(component).or_insert(0usize) += 1;
        }
    }
    let largest = counts.values().copied().max().unwrap_or(0);
    largest as f64 / live_total as f64
}

/// Fraction of descriptors in live views that point at crashed peers.
/// Drops toward zero as the overlay heals after a crash wave.
pub fn dead_entry_fraction(overlay: &Overlay) -> f64 {
    let mut dead = 0usize;
    let mut total = 0usize;
    for node in 0..overlay.slot_count() {
        if !overlay.is_alive(node) {
            continue;
        }
        for d in overlay.view(node).entries() {
            total += 1;
            if !overlay.is_alive(d.node as usize) {
                dead += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        dead as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_common::rng::Xoshiro256;

    fn warmed_overlay(n: usize, c: usize, seed: u64) -> (Overlay, Xoshiro256) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut overlay = Overlay::random_init(n, c, &mut rng);
        for cycle in 1..=10 {
            overlay.run_cycle(cycle, &mut rng);
        }
        (overlay, rng)
    }

    #[test]
    fn snapshot_matches_views() {
        let (overlay, _) = warmed_overlay(60, 8, 1);
        let g = snapshot_graph(&overlay);
        assert_eq!(g.node_count(), 60);
        for node in 0..60 {
            assert_eq!(g.degree(node), overlay.view(node).len());
        }
    }

    #[test]
    fn healthy_overlay_is_connected() {
        let (overlay, _) = warmed_overlay(300, 20, 2);
        assert!(is_connected(&overlay));
    }

    #[test]
    fn connectivity_survives_mass_crash() {
        // A simultaneous 50% crash can isolate a handful of stragglers
        // whose views were dominated by victims, so full connectivity is
        // not a robust property to demand at any seed. The paper's claim
        // is that the overlay stays *sufficiently* connected: nearly all
        // survivors remain in one component.
        for seed in [3u64, 4, 5] {
            let (mut overlay, mut rng) = warmed_overlay(400, 20, seed);
            for n in 0..200 {
                overlay.crash(n);
            }
            for cycle in 11..=20 {
                overlay.run_cycle(cycle, &mut rng);
            }
            let frac = largest_component_fraction(&overlay);
            assert!(frac >= 0.9, "seed {seed}: largest component only {frac}");
        }
    }

    #[test]
    fn in_degree_is_balanced_for_random_overlay() {
        let (overlay, _) = warmed_overlay(500, 20, 4);
        let s = in_degree_summary(&overlay);
        assert!((s.mean - 20.0).abs() < 1.0, "mean in-degree {}", s.mean);
        // Newscast's in-degree distribution is known to be skewed (recent
        // exchangers are over-represented); check the bulk rather than the
        // extreme tail.
        let degrees: Vec<f64> = in_degrees(&overlay)
            .iter()
            .enumerate()
            .filter(|&(node, _)| overlay.is_alive(node))
            .map(|(_, &c)| c as f64)
            .collect();
        let median = epidemic_common::stats::quantile(&degrees, 0.5).unwrap();
        let p95 = epidemic_common::stats::quantile(&degrees, 0.95).unwrap();
        assert!(median <= 20.0, "median in-degree {median} above view size");
        assert!(p95 < 100.0, "95th percentile in-degree {p95}");
    }

    #[test]
    fn freshness_improves_with_cycles() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut overlay = Overlay::random_init(200, 10, &mut rng);
        let before = freshness_summary(&overlay, 0).mean;
        for cycle in 1..=10 {
            overlay.run_cycle(cycle, &mut rng);
        }
        let after = freshness_summary(&overlay, 10).mean;
        assert!(before <= after + 10.0);
        assert!(after < 5.0, "descriptors too stale: mean age {after}");
    }

    #[test]
    fn dead_fraction_decays() {
        let (mut overlay, mut rng) = warmed_overlay(400, 20, 6);
        for n in 0..100 {
            overlay.crash(n);
        }
        let right_after = dead_entry_fraction(&overlay);
        assert!(
            right_after > 0.1,
            "expected many dead entries, got {right_after}"
        );
        for cycle in 11..=30 {
            overlay.run_cycle(cycle, &mut rng);
        }
        let healed = dead_entry_fraction(&overlay);
        assert!(
            healed < right_after / 3.0,
            "no healing: {right_after} -> {healed}"
        );
    }

    #[test]
    fn largest_component_is_everything_when_healthy() {
        let (overlay, _) = warmed_overlay(300, 20, 8);
        assert_eq!(largest_component_fraction(&overlay), 1.0);
    }

    #[test]
    fn largest_component_shrinks_when_partitioned() {
        // Crash everything except two nodes that only know dead peers:
        // the survivors split into singleton components.
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut overlay = Overlay::random_init(50, 4, &mut rng);
        for n in 2..50 {
            overlay.crash(n);
        }
        let frac = largest_component_fraction(&overlay);
        assert!(frac <= 1.0);
        assert!(frac >= 0.5); // two survivors: either together or split
    }

    #[test]
    fn empty_overlay_edge_cases() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut overlay = Overlay::random_init(5, 2, &mut rng);
        for n in 0..5 {
            overlay.crash(n);
        }
        assert!(!is_connected(&overlay));
        assert_eq!(dead_entry_fraction(&overlay), 0.0);
        assert_eq!(freshness_summary(&overlay, 3).count, 0);
    }
}
