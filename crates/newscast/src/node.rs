//! Sans-io NEWSCAST membership node.
//!
//! [`Overlay`](crate::Overlay) simulates a whole network at once; this
//! module provides the single-node view of the same protocol, in the same
//! sans-io style as `epidemic_aggregation::GossipNode`: the embedding
//! supplies the clock and the transport, [`MembershipNode`] supplies the
//! protocol logic. This is the component a deployment pairs with the
//! aggregation node so that `GETNEIGHBOR()` can be answered from live
//! gossip instead of a static peer table.
//!
//! # Examples
//!
//! ```
//! use epidemic_newscast::node::{MembershipConfig, MembershipNode};
//!
//! let config = MembershipConfig { view_size: 20, cycle_length: 1_000 };
//! let mut a = MembershipNode::new(0, config, 1);
//! let mut b = MembershipNode::new(1, config, 2);
//! // Bootstrap: a knows b out of band.
//! a.add_seed(1, 0);
//!
//! // a's timer fires; it gossips with a random view member (b).
//! let (to, request) = a.poll(1_000).expect("cycle fired");
//! assert_eq!(to, 1);
//! let reply = b.handle_exchange(&request, 1_050);
//! a.absorb_reply(&reply, 1_100);
//! assert!(a.view().contains(1));
//! assert!(b.view().contains(0));
//! ```

use crate::view::{Descriptor, View};
use epidemic_common::rng::Xoshiro256;

/// Static parameters of a membership node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// View size `c`.
    pub view_size: usize,
    /// Gossip period δ in ticks.
    pub cycle_length: u64,
}

/// One node's NEWSCAST state machine.
///
/// Drive it with [`MembershipNode::poll`] (timer), deliver peer payloads
/// through [`MembershipNode::handle_exchange`] (passive side) and
/// [`MembershipNode::absorb_reply`] (active side).
#[derive(Debug, Clone)]
pub struct MembershipNode {
    id: u32,
    config: MembershipConfig,
    view: View,
    next_cycle_at: u64,
    rng: Xoshiro256,
}

/// The payload of a view exchange: the sender's view entries plus a fresh
/// descriptor of the sender itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewPayload {
    /// Sender identifier.
    pub from: u32,
    /// Descriptors carried (sender's view + fresh self-descriptor).
    pub descriptors: Vec<Descriptor>,
}

impl MembershipNode {
    /// Creates a node with an empty view.
    ///
    /// # Panics
    ///
    /// Panics if `view_size == 0` or `cycle_length == 0`.
    pub fn new(id: u32, config: MembershipConfig, seed: u64) -> Self {
        assert!(config.cycle_length > 0, "cycle length must be positive");
        let mut rng = Xoshiro256::stream(seed, u64::from(id));
        let phase = rng.next_below(config.cycle_length);
        MembershipNode {
            id,
            view: View::new(config.view_size),
            config,
            next_cycle_at: phase,
            rng,
        }
    }

    /// Node identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current view (freshest first).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Registers a bootstrap contact (the out-of-band discovery of
    /// Section 4.2).
    pub fn add_seed(&mut self, peer: u32, now: u64) {
        if peer != self.id {
            self.view.insert(Descriptor::new(peer, timestamp(now)));
        }
    }

    /// Bootstraps the view from a snapshot of descriptors — typically an
    /// introducer's current view handed over out of band when this node
    /// joins a running system. Self-descriptors are filtered and the `c`
    /// freshest entries kept, exactly like a regular merge.
    pub fn bootstrap(&mut self, descriptors: &[Descriptor]) {
        self.view.merge_with(descriptors, self.id);
    }

    /// Returns a uniformly random view member — `GETNEIGHBOR()` for the
    /// aggregation protocol running on top.
    pub fn sample_peer(&mut self) -> Option<u32> {
        let entries = self.view.entries();
        if entries.is_empty() {
            return None;
        }
        let idx = self.rng.index(entries.len());
        Some(entries[idx].node)
    }

    /// Advances the timer. When the gossip period elapses, picks a random
    /// view member and returns `(peer, payload)` for the embedding to
    /// transmit. Returns `None` while the timer has not fired or the view
    /// is empty.
    pub fn poll(&mut self, now: u64) -> Option<(u32, ViewPayload)> {
        if now < self.next_cycle_at {
            return None;
        }
        while self.next_cycle_at <= now {
            self.next_cycle_at += self.config.cycle_length;
        }
        let peer = self.sample_peer()?;
        Some((peer, self.payload(now)))
    }

    /// Passive side of an exchange: merge the initiator's payload and
    /// return our pre-merge payload as the reply.
    pub fn handle_exchange(&mut self, incoming: &ViewPayload, now: u64) -> ViewPayload {
        let reply = self.payload(now);
        self.view.merge_with(&incoming.descriptors, self.id);
        reply
    }

    /// Active side: merge the responder's reply.
    pub fn absorb_reply(&mut self, reply: &ViewPayload, _now: u64) {
        self.view.merge_with(&reply.descriptors, self.id);
    }

    /// Drops a peer that failed to answer (timeout eviction; optional
    /// hardening, see `Overlay::set_evict_on_timeout`).
    pub fn evict(&mut self, peer: u32) -> bool {
        self.view.remove(peer)
    }

    /// Local tick of the next gossip cycle.
    pub fn next_cycle_at(&self) -> u64 {
        self.next_cycle_at
    }

    /// The payload this node would ship in an exchange right now: its view
    /// plus a fresh self-descriptor. Embeddings use it to answer join
    /// requests with an introduction snapshot (the out-of-band bootstrap
    /// of Section 4.2) without running a full exchange.
    pub fn view_payload(&self, now: u64) -> ViewPayload {
        self.payload(now)
    }

    fn payload(&self, now: u64) -> ViewPayload {
        let mut descriptors: Vec<Descriptor> = self.view.entries().to_vec();
        descriptors.push(Descriptor::new(self.id, timestamp(now)));
        ViewPayload {
            from: self.id,
            descriptors,
        }
    }
}

/// Timestamps descriptor freshness in coarse ticks. NEWSCAST only needs a
/// total order with enough resolution to distinguish cycles, so 32 bits of
/// tick time are ample (wrap after ~4 × 10⁹ ticks).
fn timestamp(now: u64) -> u32 {
    now as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MembershipConfig {
        MembershipConfig {
            view_size: 8,
            cycle_length: 100,
        }
    }

    fn two_bootstrapped() -> (MembershipNode, MembershipNode) {
        let mut a = MembershipNode::new(0, config(), 1);
        let b = MembershipNode::new(1, config(), 2);
        a.add_seed(1, 0);
        (a, b)
    }

    #[test]
    fn empty_view_never_initiates() {
        let mut lonely = MembershipNode::new(9, config(), 3);
        for t in 0..1_000 {
            assert!(lonely.poll(t).is_none());
        }
    }

    #[test]
    fn seeds_are_not_self() {
        let mut node = MembershipNode::new(4, config(), 1);
        node.add_seed(4, 0);
        assert!(node.view().is_empty());
        node.add_seed(5, 0);
        assert_eq!(node.view().len(), 1);
    }

    #[test]
    fn exchange_makes_both_sides_know_each_other() {
        let (mut a, mut b) = two_bootstrapped();
        let (to, request) = a.poll(150).expect("timer fired");
        assert_eq!(to, 1);
        let reply = b.handle_exchange(&request, 155);
        a.absorb_reply(&reply, 160);
        assert!(a.view().contains(1));
        assert!(b.view().contains(0));
        // Fresh timestamps were injected.
        let d = b.view().entries().iter().find(|d| d.node == 0).unwrap();
        assert_eq!(d.timestamp, 150);
    }

    #[test]
    fn poll_respects_cycle_cadence() {
        let (mut a, _) = two_bootstrapped();
        let first = a.poll(250).expect("fired");
        drop(first);
        // Immediately afterwards the timer is re-armed.
        assert!(a.poll(260).is_none());
        assert!(a.poll(400).is_some());
    }

    #[test]
    fn views_stay_bounded_and_self_free() {
        // Gossip a small clique for a while; views never exceed c and
        // never contain the owner.
        let n = 12u32;
        let mut nodes: Vec<MembershipNode> = (0..n)
            .map(|i| MembershipNode::new(i, config(), 7))
            .collect();
        for i in 0..n {
            let seed = (i + 1) % n;
            nodes[i as usize].add_seed(seed, 0);
        }
        for t in (0..5_000u64).step_by(10) {
            for i in 0..n as usize {
                if let Some((peer, request)) = nodes[i].poll(t) {
                    let reply = nodes[peer as usize].handle_exchange(&request, t);
                    nodes[i].absorb_reply(&reply, t);
                }
            }
        }
        for node in &nodes {
            assert!(node.view().len() <= 8);
            assert!(!node.view().contains(node.id()));
            // The ring bootstrap mixed into a richer overlay.
            assert!(node.view().len() >= 4, "view stayed tiny");
        }
    }

    #[test]
    fn bootstrap_copies_snapshot_without_self() {
        let mut joiner = MembershipNode::new(9, config(), 4);
        let snapshot = [
            Descriptor::new(1, 10),
            Descriptor::new(9, 99), // the joiner itself: must be dropped
            Descriptor::new(2, 5),
        ];
        joiner.bootstrap(&snapshot);
        assert!(joiner.view().contains(1));
        assert!(joiner.view().contains(2));
        assert!(!joiner.view().contains(9));
    }

    #[test]
    fn sample_peer_returns_view_members() {
        let (mut a, _) = two_bootstrapped();
        for _ in 0..10 {
            assert_eq!(a.sample_peer(), Some(1));
        }
    }

    #[test]
    fn evict_removes_peer() {
        let (mut a, _) = two_bootstrapped();
        assert!(a.evict(1));
        assert!(!a.evict(1));
        assert!(a.view().is_empty());
    }

    #[test]
    fn deterministic_with_same_seed() {
        let make = || {
            let mut node = MembershipNode::new(0, config(), 42);
            for p in 1..6 {
                node.add_seed(p, 0);
            }
            (0..5)
                .map(|_| node.sample_peer().unwrap())
                .collect::<Vec<u32>>()
        };
        assert_eq!(make(), make());
    }
}
