//! Sans-io NEWSCAST membership node.
//!
//! [`Overlay`](crate::Overlay) simulates a whole network at once; this
//! module provides the single-node view of the same protocol, in the same
//! sans-io style as `epidemic_aggregation::GossipNode`: the embedding
//! supplies the clock and the transport, [`MembershipNode`] supplies the
//! protocol logic. This is the component a deployment pairs with the
//! aggregation node so that `GETNEIGHBOR()` can be answered from live
//! gossip instead of a static peer table.
//!
//! # Examples
//!
//! ```
//! use epidemic_newscast::node::{MembershipConfig, MembershipNode};
//!
//! let config = MembershipConfig::new(20, 1_000);
//! let mut a = MembershipNode::new(0, config, 1);
//! let mut b = MembershipNode::new(1, config, 2);
//! // Bootstrap: a knows b out of band.
//! a.add_seed(1, 0);
//!
//! // a's timer fires; it gossips with a random view member (b).
//! let (to, request) = a.poll(1_000).expect("cycle fired");
//! assert_eq!(to, 1);
//! let reply = b.handle_exchange(&request, 1_050);
//! a.absorb_reply(&reply, 1_100);
//! assert!(a.view().contains(1));
//! assert!(b.view().contains(0));
//! ```

use crate::view::{Descriptor, View};
use epidemic_common::rng::Xoshiro256;
use epidemic_telemetry::{TraceEvent, TraceKind, TraceRing};

/// Static parameters of a membership node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// View size `c`.
    pub view_size: usize,
    /// Gossip period δ in ticks.
    pub cycle_length: u64,
    /// When set, [`MembershipNode::poll_exchange`] ships only the
    /// descriptors the partner has not seen yet (tracked per recent
    /// partner), falling back to the full view periodically as
    /// anti-entropy. When clear, every exchange ships the full view.
    pub delta_views: bool,
    /// How many recent exchange partners this node tracks delta
    /// knowledge for; partners beyond this fall off the LRU and get a
    /// full view next time. Deltas pay off only while partners repeat
    /// inside the horizon, so sizing it near the expected partner
    /// universe (≈ the overlay size) trades ~350 B of memory per tracked
    /// partner for full-view-sized savings per exchange.
    pub knowledge_peers: usize,
}

impl MembershipConfig {
    /// Full-view exchange configuration (deltas off).
    pub const fn new(view_size: usize, cycle_length: u64) -> Self {
        MembershipConfig {
            view_size,
            cycle_length,
            delta_views: false,
            knowledge_peers: KNOWLEDGE_PEERS,
        }
    }
}

/// Default delta-knowledge LRU capacity (see
/// [`MembershipConfig::knowledge_peers`]).
const KNOWLEDGE_PEERS: usize = 32;

/// Anti-entropy cadence: after this many consecutive delta payloads to the
/// same partner, the next payload ships the full view, so knowledge drift
/// (the partner evicting entries we still believe it holds) cannot
/// accumulate without bound.
const FULL_EVERY: u32 = 4;

/// What one recent exchange partner is believed to hold.
#[derive(Debug, Clone)]
struct PeerKnowledge {
    peer: u32,
    /// Freshest copy per node of every descriptor we sent the partner or
    /// received from it, bounded to `2c + 2` entries.
    seen: Vec<Descriptor>,
    /// Delta payloads shipped since the last full view went out.
    deltas_since_full: u32,
}

/// One node's NEWSCAST state machine.
///
/// Drive it with [`MembershipNode::poll`] (timer), deliver peer payloads
/// through [`MembershipNode::handle_exchange`] (passive side) and
/// [`MembershipNode::absorb_reply`] (active side).
#[derive(Debug, Clone)]
pub struct MembershipNode {
    id: u32,
    config: MembershipConfig,
    view: View,
    next_cycle_at: u64,
    rng: Xoshiro256,
    /// Per-partner delta state, most recently used first.
    knowledge: Vec<PeerKnowledge>,
    /// Rotating start offset for [`MembershipNode::piggyback_descriptors`].
    pb_cursor: usize,
    /// Descriptors the piggyback budget still allows this gossip period.
    pb_tokens: usize,
    /// When the piggyback budget next refills.
    pb_refill_at: u64,
    /// Membership event trace (disabled unless the embedding opts in
    /// via [`MembershipNode::set_trace_capacity`]).
    trace: TraceRing,
}

/// The payload of a view exchange: the sender's view entries plus a fresh
/// descriptor of the sender itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewPayload {
    /// Sender identifier.
    pub from: u32,
    /// Descriptors carried (sender's view + fresh self-descriptor).
    pub descriptors: Vec<Descriptor>,
}

impl MembershipNode {
    /// Creates a node with an empty view.
    ///
    /// # Panics
    ///
    /// Panics if `view_size == 0` or `cycle_length == 0`.
    pub fn new(id: u32, config: MembershipConfig, seed: u64) -> Self {
        assert!(config.cycle_length > 0, "cycle length must be positive");
        let mut rng = Xoshiro256::stream(seed, u64::from(id));
        let phase = rng.next_below(config.cycle_length);
        MembershipNode {
            id,
            view: View::new(config.view_size),
            config,
            next_cycle_at: phase,
            rng,
            knowledge: Vec::new(),
            pb_cursor: 0,
            pb_tokens: 0,
            pb_refill_at: 0,
            trace: TraceRing::disabled(),
        }
    }

    /// Enables membership event tracing with a ring of `capacity`
    /// events (0 disables).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
    }

    /// Drains the traced membership events recorded since the last call.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// Records one membership event. Epoch/cycle have no meaning on the
    /// membership plane, so they stay zero.
    fn record(&mut self, kind: TraceKind, peer: u32, detail: u64) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent {
            node: u64::from(self.id),
            kind,
            epoch: 0,
            cycle: 0,
            peer: Some(u64::from(peer)),
            detail,
        });
    }

    /// Node identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current view (freshest first).
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Registers a bootstrap contact (the out-of-band discovery of
    /// Section 4.2).
    pub fn add_seed(&mut self, peer: u32, now: u64) {
        if peer != self.id {
            self.view.insert(Descriptor::new(peer, timestamp(now)));
        }
    }

    /// Bootstraps the view from a snapshot of descriptors — typically an
    /// introducer's current view handed over out of band when this node
    /// joins a running system. Self-descriptors are filtered and the `c`
    /// freshest entries kept, exactly like a regular merge.
    pub fn bootstrap(&mut self, descriptors: &[Descriptor]) {
        self.view.merge_with(descriptors, self.id);
    }

    /// Returns a uniformly random view member — `GETNEIGHBOR()` for the
    /// aggregation protocol running on top.
    pub fn sample_peer(&mut self) -> Option<u32> {
        let entries = self.view.entries();
        if entries.is_empty() {
            return None;
        }
        let idx = self.rng.index(entries.len());
        Some(entries[idx].node)
    }

    /// Advances the timer. When the gossip period elapses, picks a random
    /// view member and returns `(peer, payload)` for the embedding to
    /// transmit. Returns `None` while the timer has not fired or the view
    /// is empty.
    pub fn poll(&mut self, now: u64) -> Option<(u32, ViewPayload)> {
        if now < self.next_cycle_at {
            return None;
        }
        while self.next_cycle_at <= now {
            self.next_cycle_at += self.config.cycle_length;
        }
        let peer = self.sample_peer()?;
        Some((peer, self.payload(now)))
    }

    /// Passive side of an exchange: merge the initiator's payload and
    /// return our pre-merge payload as the reply. Incoming timestamps are
    /// clamped to `now` plus one gossip period of slack, so a drifted
    /// clock cannot crowd out honestly-stamped descriptors.
    pub fn handle_exchange(&mut self, incoming: &ViewPayload, now: u64) -> ViewPayload {
        let reply = self.payload(now);
        self.view
            .merge_clamped(&incoming.descriptors, self.id, self.clamp_bound(now));
        self.record(
            TraceKind::ViewMerge,
            incoming.from,
            incoming.descriptors.len() as u64,
        );
        reply
    }

    /// Active side: merge the responder's reply (timestamps clamped as in
    /// [`MembershipNode::handle_exchange`]).
    pub fn absorb_reply(&mut self, reply: &ViewPayload, now: u64) {
        self.view
            .merge_clamped(&reply.descriptors, self.id, self.clamp_bound(now));
        self.record(
            TraceKind::ViewMerge,
            reply.from,
            reply.descriptors.len() as u64,
        );
    }

    /// Timer tick of the delta-aware protocol: like
    /// [`MembershipNode::poll`], but the payload carries only what the
    /// selected partner is believed to lack (unless anti-entropy or an
    /// unknown partner forces a full view). The `bool` is `true` when the
    /// payload is a full view — the passive side replaces rather than
    /// merges its record of what this node holds.
    pub fn poll_exchange(&mut self, now: u64) -> Option<(u32, ViewPayload, bool)> {
        if now < self.next_cycle_at {
            return None;
        }
        while self.next_cycle_at <= now {
            self.next_cycle_at += self.config.cycle_length;
        }
        let peer = self.sample_peer()?;
        let (payload, full) = self.outbound_for(peer, now);
        Some((peer, payload, full))
    }

    /// Passive side of a delta-aware exchange: record what the initiator
    /// just proved it holds, build our (possibly delta) reply from the
    /// pre-merge view, then merge the incoming descriptors clamped.
    pub fn handle_exchange_delta(
        &mut self,
        incoming: &ViewPayload,
        full: bool,
        now: u64,
    ) -> (ViewPayload, bool) {
        self.note_received(incoming, full);
        let reply = self.outbound_for(incoming.from, now);
        self.view
            .merge_clamped(&incoming.descriptors, self.id, self.clamp_bound(now));
        self.record(
            TraceKind::ViewMerge,
            incoming.from,
            incoming.descriptors.len() as u64,
        );
        reply
    }

    /// Active side of a delta-aware exchange: record and merge the
    /// responder's (possibly delta) reply.
    pub fn absorb_reply_delta(&mut self, reply: &ViewPayload, full: bool, now: u64) {
        self.note_received(reply, full);
        self.view
            .merge_clamped(&reply.descriptors, self.id, self.clamp_bound(now));
        self.record(
            TraceKind::ViewMerge,
            reply.from,
            reply.descriptors.len() as u64,
        );
    }

    /// Picks up to `max` descriptors worth piggybacking on a datagram
    /// already headed to `peer`: the self-descriptor on first contact,
    /// plus rotating view entries the partner is not known to hold *at
    /// all*. Timestamp refreshes never ride along — circulating
    /// freshness is the dedicated plane's anti-entropy job, and
    /// re-sending known nodes is what keeps trailers from ever going
    /// quiet. Returns an empty vec when the partner already knows every
    /// node in the view — the caller then skips the trailer entirely.
    /// Picked descriptors are recorded as known to the partner, so
    /// subsequent deltas shrink.
    ///
    /// Trailer volume is additionally capped by a token budget of two
    /// trailers' worth of descriptors per gossip period: the view churns
    /// continuously, so without a rate cap a busy aggregation plane
    /// would find something "new" for nearly every datagram and the
    /// trailers would quietly grow into a second full-rate membership
    /// plane.
    pub fn piggyback_descriptors(&mut self, peer: u32, now: u64, max: usize) -> Vec<Descriptor> {
        // Piggybacking is part of the delta machinery: with
        // `delta_views` off this node reproduces the plain
        // full-view-per-exchange wire behavior, trailers included.
        if max == 0 || !self.config.delta_views {
            return Vec::new();
        }
        if now >= self.pb_refill_at {
            self.pb_tokens = max * 2;
            self.pb_refill_at = now.saturating_add(self.config.cycle_length);
        }
        if self.pb_tokens == 0 {
            return Vec::new();
        }
        let max = max.min(self.pb_tokens);
        let ts = timestamp(now);
        let entries: Vec<Descriptor> = self.view.entries().to_vec();
        let bound = knowledge_bound(&self.config);
        let id = self.id;
        let cursor = self.pb_cursor;
        self.pb_cursor = cursor.wrapping_add(1);
        let k = self.knowledge_mut(peer);
        let mut picked: Vec<Descriptor> = Vec::new();
        if !k.seen.iter().any(|e| e.node == id) {
            picked.push(Descriptor::new(id, ts));
        }
        if !entries.is_empty() {
            for step in 0..entries.len() {
                if picked.len() >= max {
                    break;
                }
                let d = entries[(cursor + step) % entries.len()];
                // Telling a peer about itself is useless: merges drop it.
                if d.node == peer {
                    continue;
                }
                if !k.seen.iter().any(|e| e.node == d.node) {
                    picked.push(d);
                }
            }
        }
        if !picked.is_empty() {
            note_seen(&mut k.seen, &picked, bound);
        }
        self.pb_tokens = self.pb_tokens.saturating_sub(picked.len());
        picked
    }

    /// Absorbs descriptors piggybacked by `from` on a non-membership
    /// datagram: records them as held by the sender and merges them into
    /// the view, clamped like any exchange.
    pub fn absorb_descriptors(&mut self, from: u32, descriptors: &[Descriptor], now: u64) {
        let bound = knowledge_bound(&self.config);
        let k = self.knowledge_mut(from);
        note_seen(&mut k.seen, descriptors, bound);
        self.view
            .merge_clamped(descriptors, self.id, self.clamp_bound(now));
        self.record(TraceKind::ViewMerge, from, descriptors.len() as u64);
    }

    /// Drops a peer that failed to answer (timeout eviction; optional
    /// hardening, see `Overlay::set_evict_on_timeout`).
    pub fn evict(&mut self, peer: u32) -> bool {
        self.view.remove(peer)
    }

    /// Local tick of the next gossip cycle.
    pub fn next_cycle_at(&self) -> u64 {
        self.next_cycle_at
    }

    /// The payload this node would ship in an exchange right now: its view
    /// plus a fresh self-descriptor. Embeddings use it to answer join
    /// requests with an introduction snapshot (the out-of-band bootstrap
    /// of Section 4.2) without running a full exchange.
    pub fn view_payload(&self, now: u64) -> ViewPayload {
        self.payload(now)
    }

    fn payload(&self, now: u64) -> ViewPayload {
        let mut descriptors: Vec<Descriptor> = self.view.entries().to_vec();
        descriptors.push(Descriptor::new(self.id, timestamp(now)));
        ViewPayload {
            from: self.id,
            descriptors,
        }
    }

    /// Upper clamp for incoming timestamps: local time plus one gossip
    /// period of slack (tolerates honest skew, bounds runaway clocks).
    fn clamp_bound(&self, now: u64) -> u32 {
        timestamp(now).saturating_add(self.period())
    }

    /// One gossip period in timestamp ticks — the protocol's staleness
    /// resolution, and the clamp slack for incoming timestamps.
    fn period(&self) -> u32 {
        self.config.cycle_length.min(u64::from(u32::MAX)) as u32
    }

    /// Delta staleness threshold: the anti-entropy period. Every
    /// `FULL_EVERY`-th exchange ships the full view anyway, so timestamp
    /// refreshes finer than that are repaired by the next scheduled full
    /// view at zero delta cost; a delta entry earns its bytes only when
    /// the partner lacks the node outright or holds a copy staler than
    /// anti-entropy would leave behind.
    fn stale_after(&self) -> u32 {
        self.period().saturating_mul(FULL_EVERY)
    }

    /// The LRU knowledge entry for `peer`, created (and the LRU trimmed)
    /// if absent, promoted to the front either way.
    fn knowledge_mut(&mut self, peer: u32) -> &mut PeerKnowledge {
        if let Some(pos) = self.knowledge.iter().position(|k| k.peer == peer) {
            let entry = self.knowledge.remove(pos);
            self.knowledge.insert(0, entry);
        } else {
            self.knowledge.insert(
                0,
                PeerKnowledge {
                    peer,
                    seen: Vec::new(),
                    deltas_since_full: 0,
                },
            );
            self.knowledge.truncate(self.config.knowledge_peers.max(1));
        }
        &mut self.knowledge[0]
    }

    /// Builds the outbound payload for `peer`: the full view when deltas
    /// are disabled, the partner is unknown, or anti-entropy is due;
    /// otherwise only descriptors the partner lacks outright or holds an
    /// anti-entropy period staler (finer refreshes are repaired by the
    /// next scheduled full view anyway, so re-sending them is
    /// pure overhead). A delta that approaches the full view saves
    /// nothing, so it ships the full view (and resets the anti-entropy
    /// clock) instead. What was sent is recorded as known to the partner.
    fn outbound_for(&mut self, peer: u32, now: u64) -> (ViewPayload, bool) {
        let mut full: Vec<Descriptor> = self.view.entries().to_vec();
        full.push(Descriptor::new(self.id, timestamp(now)));
        let delta_enabled = self.config.delta_views;
        let stale_after = self.stale_after();
        let bound = knowledge_bound(&self.config);
        let k = self.knowledge_mut(peer);
        let send_full = !delta_enabled || k.seen.is_empty() || k.deltas_since_full >= FULL_EVERY;
        let (descriptors, is_full) = if send_full {
            (full, true)
        } else {
            let delta: Vec<Descriptor> = full
                .iter()
                .copied()
                .filter(|d| match k.seen.iter().find(|e| e.node == d.node) {
                    Some(e) => d.timestamp.saturating_sub(e.timestamp) >= stale_after,
                    None => true,
                })
                .collect();
            // A delta covering the whole payload *is* the full view: mark
            // it as one so the partner replaces (not extends) its record
            // and the anti-entropy clock resets.
            if delta.len() == full.len() {
                (full, true)
            } else {
                (delta, false)
            }
        };
        if is_full {
            k.deltas_since_full = 0;
        } else {
            k.deltas_since_full += 1;
        }
        note_seen(&mut k.seen, &descriptors, bound);
        (
            ViewPayload {
                from: self.id,
                descriptors,
            },
            is_full,
        )
    }

    /// Records an incoming payload into the sender's knowledge entry. A
    /// full payload is exactly the sender's view plus its self-descriptor,
    /// so it replaces the record; a delta extends it.
    fn note_received(&mut self, payload: &ViewPayload, full: bool) {
        let bound = knowledge_bound(&self.config);
        let k = self.knowledge_mut(payload.from);
        if full {
            k.seen.clear();
        }
        note_seen(&mut k.seen, &payload.descriptors, bound);
    }
}

/// Bound on one partner's `seen` record: its view plus ours can cover
/// `2c` distinct nodes, plus the two self-descriptors. Trimming beyond
/// that only makes future deltas conservative (larger), never wrong.
fn knowledge_bound(config: &MembershipConfig) -> usize {
    2 * config.view_size + 2
}

/// Upserts `descriptors` into a knowledge record keeping the freshest copy
/// per node, trimming the stalest entries beyond `bound`.
fn note_seen(seen: &mut Vec<Descriptor>, descriptors: &[Descriptor], bound: usize) {
    for d in descriptors {
        if let Some(e) = seen.iter_mut().find(|e| e.node == d.node) {
            if d.timestamp > e.timestamp {
                e.timestamp = d.timestamp;
            }
        } else {
            seen.push(*d);
        }
    }
    if seen.len() > bound {
        seen.sort_unstable_by_key(|d| (std::cmp::Reverse(d.timestamp), d.node));
        seen.truncate(bound);
    }
}

/// Timestamps descriptor freshness in coarse ticks. NEWSCAST only needs a
/// total order with enough resolution to distinguish cycles, so 32 bits of
/// tick time are ample (wrap after ~4 × 10⁹ ticks).
fn timestamp(now: u64) -> u32 {
    now as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MembershipConfig {
        MembershipConfig::new(8, 100)
    }

    fn delta_config() -> MembershipConfig {
        MembershipConfig {
            delta_views: true,
            ..config()
        }
    }

    fn two_bootstrapped() -> (MembershipNode, MembershipNode) {
        let mut a = MembershipNode::new(0, config(), 1);
        let b = MembershipNode::new(1, config(), 2);
        a.add_seed(1, 0);
        (a, b)
    }

    #[test]
    fn empty_view_never_initiates() {
        let mut lonely = MembershipNode::new(9, config(), 3);
        for t in 0..1_000 {
            assert!(lonely.poll(t).is_none());
        }
    }

    #[test]
    fn seeds_are_not_self() {
        let mut node = MembershipNode::new(4, config(), 1);
        node.add_seed(4, 0);
        assert!(node.view().is_empty());
        node.add_seed(5, 0);
        assert_eq!(node.view().len(), 1);
    }

    #[test]
    fn exchange_makes_both_sides_know_each_other() {
        let (mut a, mut b) = two_bootstrapped();
        let (to, request) = a.poll(150).expect("timer fired");
        assert_eq!(to, 1);
        let reply = b.handle_exchange(&request, 155);
        a.absorb_reply(&reply, 160);
        assert!(a.view().contains(1));
        assert!(b.view().contains(0));
        // Fresh timestamps were injected.
        let d = b.view().entries().iter().find(|d| d.node == 0).unwrap();
        assert_eq!(d.timestamp, 150);
    }

    #[test]
    fn poll_respects_cycle_cadence() {
        let (mut a, _) = two_bootstrapped();
        let first = a.poll(250).expect("fired");
        drop(first);
        // Immediately afterwards the timer is re-armed.
        assert!(a.poll(260).is_none());
        assert!(a.poll(400).is_some());
    }

    #[test]
    fn views_stay_bounded_and_self_free() {
        // Gossip a small clique for a while; views never exceed c and
        // never contain the owner.
        let n = 12u32;
        let mut nodes: Vec<MembershipNode> = (0..n)
            .map(|i| MembershipNode::new(i, config(), 7))
            .collect();
        for i in 0..n {
            let seed = (i + 1) % n;
            nodes[i as usize].add_seed(seed, 0);
        }
        for t in (0..5_000u64).step_by(10) {
            for i in 0..n as usize {
                if let Some((peer, request)) = nodes[i].poll(t) {
                    let reply = nodes[peer as usize].handle_exchange(&request, t);
                    nodes[i].absorb_reply(&reply, t);
                }
            }
        }
        for node in &nodes {
            assert!(node.view().len() <= 8);
            assert!(!node.view().contains(node.id()));
            // The ring bootstrap mixed into a richer overlay.
            assert!(node.view().len() >= 4, "view stayed tiny");
        }
    }

    #[test]
    fn bootstrap_copies_snapshot_without_self() {
        let mut joiner = MembershipNode::new(9, config(), 4);
        let snapshot = [
            Descriptor::new(1, 10),
            Descriptor::new(9, 99), // the joiner itself: must be dropped
            Descriptor::new(2, 5),
        ];
        joiner.bootstrap(&snapshot);
        assert!(joiner.view().contains(1));
        assert!(joiner.view().contains(2));
        assert!(!joiner.view().contains(9));
    }

    #[test]
    fn sample_peer_returns_view_members() {
        let (mut a, _) = two_bootstrapped();
        for _ in 0..10 {
            assert_eq!(a.sample_peer(), Some(1));
        }
    }

    #[test]
    fn evict_removes_peer() {
        let (mut a, _) = two_bootstrapped();
        assert!(a.evict(1));
        assert!(!a.evict(1));
        assert!(a.view().is_empty());
    }

    #[test]
    fn first_delta_exchange_ships_the_full_view() {
        let mut a = MembershipNode::new(0, delta_config(), 1);
        a.add_seed(1, 0);
        let (to, payload, full) = a.poll_exchange(150).expect("timer fired");
        assert_eq!(to, 1);
        assert!(full, "unknown partner must get a full view");
        assert_eq!(payload.descriptors.len(), 2); // seed + self
    }

    #[test]
    fn repeat_exchanges_shrink_to_deltas() {
        let mut a = MembershipNode::new(0, delta_config(), 1);
        let mut b = MembershipNode::new(1, delta_config(), 2);
        for p in 2..8 {
            a.add_seed(p, 0);
            b.add_seed(p, 0);
        }
        a.add_seed(1, 0);
        // First round: a knows nothing about b, so the request is full.
        // The reply may already be a delta — b just learned exactly what a
        // holds from the request itself.
        let (req, full) = a.outbound_for(1, 100);
        assert!(full, "unknown partner must get a full view");
        let (reply, reply_full) = b.handle_exchange_delta(&req, full, 105);
        a.absorb_reply_delta(&reply, reply_full, 110);
        // Second round, nothing changed but the self-descriptors: the
        // request collapses to a delta far below the full view.
        let full_len = a.view().len() + 1;
        let (req2, full2) = a.outbound_for(1, 200);
        assert_eq!(req2.from, 0);
        assert!(!full2, "known partner should get a delta");
        assert!(
            2 * req2.descriptors.len() < full_len,
            "delta {} not below half of full {}",
            req2.descriptors.len(),
            full_len
        );
        let (reply2, reply2_full) = b.handle_exchange_delta(&req2, full2, 205);
        assert!(!reply2_full);
        a.absorb_reply_delta(&reply2, reply2_full, 210);
        assert!(a.view().contains(1));
        assert!(b.view().contains(0));
    }

    #[test]
    fn anti_entropy_periodically_ships_full_views() {
        let mut a = MembershipNode::new(0, delta_config(), 1);
        let mut b = MembershipNode::new(1, delta_config(), 2);
        a.add_seed(1, 0);
        let mut fulls = 0;
        let mut deltas = 0;
        for round in 0..12u64 {
            let now = 100 + round * 100;
            if let Some((_, req, full)) = a.poll_exchange(now) {
                if full {
                    fulls += 1;
                } else {
                    deltas += 1;
                }
                let (reply, rf) = b.handle_exchange_delta(&req, full, now + 5);
                a.absorb_reply_delta(&reply, rf, now + 10);
            }
        }
        assert!(fulls >= 2, "anti-entropy full views never recurred");
        assert!(deltas > 0, "no exchange ever shrank to a delta");
    }

    #[test]
    fn delta_exchange_converges_like_full_views() {
        // Two cliques gossiping for a while, one with deltas and one
        // without: views end up equally full and bounded.
        let run = |cfg: MembershipConfig| {
            let n = 12u32;
            let mut nodes: Vec<MembershipNode> =
                (0..n).map(|i| MembershipNode::new(i, cfg, 7)).collect();
            for i in 0..n {
                let seed = (i + 1) % n;
                nodes[i as usize].add_seed(seed, 0);
            }
            for t in (0..5_000u64).step_by(10) {
                for i in 0..n as usize {
                    if let Some((peer, req, full)) = nodes[i].poll_exchange(t) {
                        let (reply, rf) = nodes[peer as usize].handle_exchange_delta(&req, full, t);
                        nodes[i].absorb_reply_delta(&reply, rf, t);
                    }
                }
            }
            nodes
        };
        for (full_node, delta_node) in run(config()).iter().zip(run(delta_config()).iter()) {
            assert!(delta_node.view().len() <= 8);
            assert!(!delta_node.view().contains(delta_node.id()));
            assert!(
                delta_node.view().len() + 2 >= full_node.view().len(),
                "delta views collapsed: {} vs full {}",
                delta_node.view().len(),
                full_node.view().len()
            );
        }
    }

    #[test]
    fn incoming_future_timestamps_are_clamped() {
        let mut a = MembershipNode::new(0, config(), 1);
        a.add_seed(1, 100);
        let drifted = ViewPayload {
            from: 2,
            descriptors: vec![Descriptor::new(2, 4_000_000), Descriptor::new(3, 9_999_999)],
        };
        a.handle_exchange(&drifted, 200);
        // Clamp bound is now + one cycle = 300.
        for d in a.view().entries() {
            assert!(d.timestamp <= 300, "unclamped descriptor {d}");
        }
        let mut b = MembershipNode::new(5, delta_config(), 1);
        b.absorb_reply_delta(&drifted, true, 200);
        for d in b.view().entries() {
            assert!(d.timestamp <= 300, "unclamped descriptor {d} (delta path)");
        }
    }

    #[test]
    fn piggyback_picks_unknown_descriptors_then_goes_quiet() {
        let mut a = MembershipNode::new(0, delta_config(), 1);
        for p in 1..5 {
            a.add_seed(p, 50);
        }
        let first = a.piggyback_descriptors(9, 100, 3);
        assert!(!first.is_empty() && first.len() <= 3);
        assert!(first.iter().any(|d| d.node == 0), "fresh self not included");
        // Everything picked is now recorded as known: repeating within the
        // same cycle finds nothing new to say.
        let mut total = 0;
        for _ in 0..4 {
            total += a.piggyback_descriptors(9, 101, 3).len();
        }
        assert!(total <= 4, "piggyback kept repeating known descriptors");
        // A fresh view entry becomes piggyback-worthy again.
        a.add_seed(7, 120);
        let later: Vec<Descriptor> = (0..6)
            .flat_map(|_| a.piggyback_descriptors(9, 121, 3))
            .collect();
        assert!(
            later.iter().any(|d| d.node == 7),
            "new entry never rode along"
        );
    }

    #[test]
    fn absorbed_piggyback_updates_view_and_knowledge() {
        let mut a = MembershipNode::new(0, delta_config(), 1);
        a.absorb_descriptors(3, &[Descriptor::new(3, 90), Descriptor::new(4, 80)], 100);
        assert!(a.view().contains(3));
        assert!(a.view().contains(4));
        // The sender proved it holds those descriptors: an exchange right
        // after can already use delta form.
        a.add_seed(3, 100);
        let (payload, full) = a.outbound_for(3, 150);
        assert!(!full, "knowledge from piggyback was not used");
        assert!(payload.descriptors.len() < a.view().len() + 1);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let make = || {
            let mut node = MembershipNode::new(0, config(), 42);
            for p in 1..6 {
                node.add_seed(p, 0);
            }
            (0..5)
                .map(|_| node.sample_peer().unwrap())
                .collect::<Vec<u32>>()
        };
        assert_eq!(make(), make());
    }
}
