//! The operator seam: one `Cluster` API over every runtime.
//!
//! A cluster of real-network aggregation nodes is operated the same way
//! whether each node owns an OS thread and a socket
//! ([`crate::runtime::ThreadCluster`]), thousands of virtual nodes share
//! one socket ([`crate::mux::MuxCluster`]), or the virtual nodes are
//! sharded across processes and hosts. The [`Cluster`] trait captures
//! that surface — spawn, addresses, report draining, local-value
//! updates, traffic accounting, shutdown — so tests, benches, and
//! examples are written once and run against every runtime.
//!
//! Traffic is accounted per node and per plane in [`TrafficCounts`]:
//! aggregation datagrams (the paper's push-pull exchanges) separately
//! from membership datagrams (NEWSCAST views, join/introduce bootstrap)
//! and from query-plane datagrams (catalog gossip, named-query
//! exchanges), so the overhead of gossiped membership and of the
//! multi-tenant query plane are both directly measurable.

use epidemic_aggregation::EpochReport;
use epidemic_common::NodeId;
use epidemic_query::{QueryDescriptor, QueryError, QueryEstimate};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// Reserves `n` distinct loopback addresses by binding ephemeral-port
/// sockets, recording their addresses, and releasing them only after all
/// `n` ports are chosen. Shared by every loopback address plan
/// ([`crate::runtime::ClusterConfig::loopback`],
/// [`crate::mux::PeerTable::loopback_split`]).
pub(crate) fn reserve_loopback_addrs(n: usize) -> io::Result<Vec<SocketAddr>> {
    let mut addrs = Vec::with_capacity(n);
    let mut held = Vec::with_capacity(n);
    for _ in 0..n {
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        addrs.push(sock.local_addr()?);
        held.push(sock); // hold all sockets until every port is chosen
    }
    drop(held);
    Ok(addrs)
}

/// Per-node datagram accounting, split by protocol plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Aggregation-plane datagrams sent (requests, replies, notices).
    pub aggregation_sent: u64,
    /// Aggregation-plane datagrams received.
    pub aggregation_received: u64,
    /// Membership-plane datagrams sent (views, joins, introductions).
    pub membership_sent: u64,
    /// Membership-plane datagrams received.
    pub membership_received: u64,
    /// Query-plane datagrams sent (catalog gossip, named-query
    /// exchanges).
    pub query_sent: u64,
    /// Query-plane datagrams received.
    pub query_received: u64,
    /// Wire bytes of the aggregation datagrams sent.
    pub aggregation_bytes_sent: u64,
    /// Wire bytes of the membership datagrams sent.
    pub membership_bytes_sent: u64,
    /// Wire bytes of the query-plane datagrams sent.
    pub query_bytes_sent: u64,
    /// Datagrams (either plane) the kernel refused to send — the visible
    /// face of outbound backpressure. A send that fails is NOT counted in
    /// the per-plane `*_sent` fields, so at high load loss shows up here
    /// instead of silently vanishing.
    pub send_errors: u64,
    /// Bootstrap `Join` datagrams re-sent after the first went unanswered
    /// (counted inside `membership_sent`). Non-zero means the introducer
    /// path lost datagrams — visible here instead of as a silent hang.
    pub join_retries: u64,
    /// Client RPCs this node answered with a non-`Ok` status (unknown
    /// query, admission rejection, conflict, …). Rejections are counted
    /// here — and surfaced to the caller in the response — never
    /// silently swallowed.
    pub rpc_rejects: u64,
}

impl TrafficCounts {
    /// Total datagrams sent across all planes.
    pub fn sent(&self) -> u64 {
        self.aggregation_sent + self.membership_sent + self.query_sent
    }

    /// Total datagrams received across all planes.
    pub fn received(&self) -> u64 {
        self.aggregation_received + self.membership_received + self.query_received
    }

    /// Membership bytes sent per aggregation byte sent — the wire
    /// overhead of gossiped membership (0 for a static directory).
    pub fn membership_byte_overhead(&self) -> f64 {
        if self.aggregation_bytes_sent == 0 {
            return 0.0;
        }
        self.membership_bytes_sent as f64 / self.aggregation_bytes_sent as f64
    }

    /// Query-plane bytes sent per aggregation byte sent — the wire
    /// overhead of the multi-tenant query plane (0 when no query is
    /// installed).
    pub fn query_byte_overhead(&self) -> f64 {
        if self.aggregation_bytes_sent == 0 {
            return 0.0;
        }
        self.query_bytes_sent as f64 / self.aggregation_bytes_sent as f64
    }
}

impl Add for TrafficCounts {
    type Output = TrafficCounts;

    fn add(mut self, rhs: TrafficCounts) -> TrafficCounts {
        self += rhs;
        self
    }
}

impl AddAssign for TrafficCounts {
    fn add_assign(&mut self, rhs: TrafficCounts) {
        self.aggregation_sent += rhs.aggregation_sent;
        self.aggregation_received += rhs.aggregation_received;
        self.membership_sent += rhs.membership_sent;
        self.membership_received += rhs.membership_received;
        self.query_sent += rhs.query_sent;
        self.query_received += rhs.query_received;
        self.aggregation_bytes_sent += rhs.aggregation_bytes_sent;
        self.membership_bytes_sent += rhs.membership_bytes_sent;
        self.query_bytes_sent += rhs.query_bytes_sent;
        self.send_errors += rhs.send_errors;
        self.join_retries += rhs.join_retries;
        self.rpc_rejects += rhs.rpc_rejects;
    }
}

/// Lock-free mutable twin of [`TrafficCounts`], shared between the
/// threads of a runtime (one cell per hosted node).
#[derive(Debug, Default)]
pub(crate) struct TrafficCell {
    aggregation_sent: AtomicU64,
    aggregation_received: AtomicU64,
    membership_sent: AtomicU64,
    membership_received: AtomicU64,
    query_sent: AtomicU64,
    query_received: AtomicU64,
    aggregation_bytes_sent: AtomicU64,
    membership_bytes_sent: AtomicU64,
    query_bytes_sent: AtomicU64,
    send_errors: AtomicU64,
    join_retries: AtomicU64,
    rpc_rejects: AtomicU64,
}

impl TrafficCell {
    pub(crate) fn count_sent(&self, membership: bool, bytes: usize) {
        if membership {
            self.membership_sent.fetch_add(1, Ordering::Relaxed);
            self.membership_bytes_sent
                .fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.aggregation_sent.fetch_add(1, Ordering::Relaxed);
            self.aggregation_bytes_sent
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Counts one piggybacked datagram: an aggregation datagram whose
    /// last `trailer_bytes` are a membership trailer. The datagram itself
    /// is aggregation traffic; the trailer bytes are charged to the
    /// membership plane so the byte-overhead ratio stays honest.
    pub(crate) fn count_piggybacked_sent(&self, total_bytes: usize, trailer_bytes: usize) {
        self.aggregation_sent.fetch_add(1, Ordering::Relaxed);
        self.aggregation_bytes_sent
            .fetch_add((total_bytes - trailer_bytes) as u64, Ordering::Relaxed);
        self.membership_bytes_sent
            .fetch_add(trailer_bytes as u64, Ordering::Relaxed);
    }

    /// Publishes the directory's current join-retry count (a level, not a
    /// delta — the directory owns the counter).
    pub(crate) fn set_join_retries(&self, retries: u64) {
        self.join_retries.store(retries, Ordering::Relaxed);
    }

    pub(crate) fn count_received(&self, membership: bool) {
        if membership {
            self.membership_received.fetch_add(1, Ordering::Relaxed);
        } else {
            self.aggregation_received.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one query-plane datagram sent (catalog gossip or a
    /// named-query exchange frame).
    pub(crate) fn count_query_sent(&self, bytes: usize) {
        self.query_sent.fetch_add(1, Ordering::Relaxed);
        self.query_bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_query_received(&self) {
        self.query_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_rpc_reject(&self) {
        self.rpc_rejects.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_send_error(&self) {
        self.send_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> TrafficCounts {
        TrafficCounts {
            aggregation_sent: self.aggregation_sent.load(Ordering::Relaxed),
            aggregation_received: self.aggregation_received.load(Ordering::Relaxed),
            membership_sent: self.membership_sent.load(Ordering::Relaxed),
            membership_received: self.membership_received.load(Ordering::Relaxed),
            query_sent: self.query_sent.load(Ordering::Relaxed),
            query_received: self.query_received.load(Ordering::Relaxed),
            aggregation_bytes_sent: self.aggregation_bytes_sent.load(Ordering::Relaxed),
            membership_bytes_sent: self.membership_bytes_sent.load(Ordering::Relaxed),
            query_bytes_sent: self.query_bytes_sent.load(Ordering::Relaxed),
            send_errors: self.send_errors.load(Ordering::Relaxed),
            join_retries: self.join_retries.load(Ordering::Relaxed),
            rpc_rejects: self.rpc_rejects.load(Ordering::Relaxed),
        }
    }
}

/// A running cluster of real-network aggregation nodes.
///
/// Node indices are *local*: `0..node_count()` addresses the nodes this
/// handle hosts. In a sharded deployment those map to a contiguous range
/// of cluster-wide identifiers, exposed by [`Cluster::node_id`].
pub trait Cluster: Sized {
    /// Everything needed to spawn this runtime.
    type Config;

    /// Spawns the cluster. `values(id)` supplies the initial local value
    /// of the node with *cluster-wide* identifier `id` (in an unsharded
    /// cluster, identifiers and local indices coincide).
    ///
    /// # Errors
    ///
    /// Propagates socket and thread-spawn errors.
    fn spawn_cluster(config: Self::Config, values: &dyn Fn(usize) -> f64) -> io::Result<Self>;

    /// Number of nodes hosted by this handle.
    fn node_count(&self) -> usize;

    /// Cluster-wide identifier of local node `index`.
    fn node_id(&self, index: usize) -> NodeId;

    /// The socket addresses this handle receives on (one per node for
    /// thread-per-node, a mux shard's reader socket set — its advertised
    /// address first).
    fn addrs(&self) -> Vec<SocketAddr>;

    /// Drains the epoch reports local node `index` produced since the
    /// last call.
    fn take_reports(&self, index: usize) -> Vec<EpochReport>;

    /// Updates local node `index`'s local value (takes effect at its
    /// next epoch).
    fn set_local_value(&self, index: usize, value: f64);

    /// Datagram counts for local node `index`, split by plane.
    fn datagram_counts(&self, index: usize) -> TrafficCounts;

    /// Drains the protocol trace events local node `index` recorded since
    /// the last call. Empty unless the runtime was configured with
    /// tracing enabled (see each runtime's config).
    fn take_trace(&self, index: usize) -> Vec<epidemic_telemetry::TraceEvent> {
        let _ = index;
        Vec::new()
    }

    /// Installs a named query at local node `index`; catalog gossip
    /// spreads it to the rest of the cluster epidemically.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidDescriptor`] on a malformed descriptor,
    /// [`QueryError::Conflict`] when a live query of the same name has a
    /// different descriptor.
    fn install_query(&self, index: usize, descriptor: QueryDescriptor) -> Result<(), QueryError>;

    /// Removes (tombstones) a named query at local node `index`; the
    /// removal spreads like the install did.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] when no live query of that name is
    /// installed at the node yet.
    fn remove_query(&self, index: usize, name: &str) -> Result<(), QueryError>;

    /// Submits local node `index`'s contribution to a named query,
    /// subject to the query's admission limits.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] when the query is not installed at
    /// the node, [`QueryError::AdmissionRejected`] when the node's token
    /// bucket for the query is empty.
    fn submit_query(&self, index: usize, name: &str, value: f64) -> Result<(), QueryError>;

    /// Reads the named query's current estimate at local node `index`.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] when the query is not installed at
    /// the node, [`QueryError::NotReady`] before the first readable
    /// state exists.
    fn query_estimate(&self, index: usize, name: &str) -> Result<QueryEstimate, QueryError>;

    /// Stops every node and waits for the runtime's threads to exit.
    fn shutdown(self);

    /// Drains every local node's epoch reports, indexed by local node.
    fn take_all_reports(&self) -> Vec<Vec<EpochReport>> {
        (0..self.node_count())
            .map(|i| self.take_reports(i))
            .collect()
    }

    /// Sum of every local node's [`TrafficCounts`].
    fn total_datagram_counts(&self) -> TrafficCounts {
        (0..self.node_count())
            .map(|i| self.datagram_counts(i))
            .fold(TrafficCounts::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_counts_sum_and_overhead() {
        let a = TrafficCounts {
            aggregation_sent: 10,
            aggregation_received: 8,
            membership_sent: 2,
            membership_received: 1,
            query_sent: 4,
            query_received: 3,
            aggregation_bytes_sent: 1_000,
            membership_bytes_sent: 250,
            query_bytes_sent: 110,
            send_errors: 1,
            join_retries: 2,
            rpc_rejects: 1,
        };
        let b = TrafficCounts {
            aggregation_sent: 1,
            aggregation_received: 2,
            membership_sent: 3,
            membership_received: 4,
            query_sent: 1,
            query_received: 2,
            aggregation_bytes_sent: 100,
            membership_bytes_sent: 50,
            query_bytes_sent: 0,
            send_errors: 2,
            join_retries: 1,
            rpc_rejects: 2,
        };
        let sum = a + b;
        assert_eq!(sum.sent(), 21);
        assert_eq!(sum.received(), 20);
        assert_eq!(sum.send_errors, 3);
        assert_eq!(sum.join_retries, 3);
        assert_eq!(sum.rpc_rejects, 3);
        assert!((sum.membership_byte_overhead() - 300.0 / 1_100.0).abs() < 1e-12);
        assert!((sum.query_byte_overhead() - 110.0 / 1_100.0).abs() < 1e-12);
        assert_eq!(TrafficCounts::default().membership_byte_overhead(), 0.0);
        assert_eq!(TrafficCounts::default().query_byte_overhead(), 0.0);
    }

    #[test]
    fn traffic_cell_snapshot_reflects_counting() {
        let cell = TrafficCell::default();
        cell.count_sent(false, 40);
        cell.count_sent(false, 60);
        cell.count_sent(true, 8);
        cell.count_received(false);
        cell.count_received(true);
        cell.count_query_sent(24);
        cell.count_query_received();
        cell.count_rpc_reject();
        cell.count_send_error();
        cell.count_send_error();
        cell.set_join_retries(4);
        let snap = cell.snapshot();
        assert_eq!(snap.aggregation_sent, 2);
        assert_eq!(snap.aggregation_bytes_sent, 100);
        assert_eq!(snap.membership_sent, 1);
        assert_eq!(snap.membership_bytes_sent, 8);
        assert_eq!(snap.query_sent, 1);
        assert_eq!(snap.query_bytes_sent, 24);
        assert_eq!(snap.query_received, 1);
        assert_eq!(snap.rpc_rejects, 1);
        assert_eq!(snap.aggregation_received, 1);
        assert_eq!(snap.membership_received, 1);
        assert_eq!(snap.send_errors, 2);
        assert_eq!(snap.join_retries, 4);
    }

    #[test]
    fn piggybacked_sends_split_bytes_across_planes() {
        let cell = TrafficCell::default();
        cell.count_piggybacked_sent(100, 30);
        cell.count_piggybacked_sent(50, 0);
        let snap = cell.snapshot();
        // Two datagrams, both on the aggregation plane…
        assert_eq!(snap.aggregation_sent, 2);
        assert_eq!(snap.membership_sent, 0);
        // …but the trailer bytes land on the membership ledger.
        assert_eq!(snap.aggregation_bytes_sent, 120);
        assert_eq!(snap.membership_bytes_sent, 30);
    }
}
