//! Hashed timer wheel for the multiplexed runtime.
//!
//! The mux runtime ([`crate::mux`]) drives thousands of virtual nodes from
//! one timer thread, so per-deadline precision matters less than constant
//! cost per operation: a [`TimerWheel`] buckets deadlines into fixed-width
//! slots (hashing by `deadline / tick`), making `schedule` and each tick
//! of `advance` O(1) amortized regardless of how many nodes are hosted.
//!
//! Deadlines that land in an already-passed slot fire on the next
//! `advance`; deadlines further out than one wheel revolution stay parked
//! in their slot (each entry keeps its absolute deadline, so a slot visit
//! only releases the entries whose time has truly come — the classic
//! "hashed" wheel of Varghese & Lauck).

/// A hashed timer wheel mapping `u64` millisecond deadlines to opaque
/// `u32` tokens (virtual-node indices in the mux runtime).
///
/// # Examples
///
/// ```
/// use epidemic_net::timer::TimerWheel;
///
/// let mut wheel = TimerWheel::new(4, 64); // 4 ms slots, 64 slots
/// wheel.schedule(10, 7);
/// wheel.schedule(300, 9); // more than one revolution out
/// let mut due = Vec::new();
/// wheel.advance(16, |t| due.push(t));
/// assert_eq!(due, [7]);
/// wheel.advance(400, |t| due.push(t));
/// assert_eq!(due, [7, 9]);
/// ```
#[derive(Debug)]
pub struct TimerWheel {
    /// Milliseconds per slot.
    tick: u64,
    /// `(deadline, token)` entries, bucketed by `(deadline / tick) % slots`.
    slots: Vec<Vec<(u64, u32)>>,
    /// The next tick index to inspect: everything before
    /// `cursor * tick` has already fired.
    cursor: u64,
    /// Entries whose tick the cursor had already fully passed when they
    /// were scheduled; checked linearly (they are rare and short-lived)
    /// and fired as soon as `advance` time reaches their deadline.
    overdue: Vec<(u64, u32)>,
    /// Entries currently parked in the wheel.
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel with `slots` buckets of `tick_ms` milliseconds.
    /// One revolution spans `tick_ms * slots` ms; longer deadlines cost an
    /// extra pass over their slot per revolution, so size the wheel to the
    /// protocol's cycle length (the mux runtime uses the default of
    /// [`TimerWheel::for_cycle`]).
    ///
    /// # Panics
    ///
    /// Panics if `tick_ms == 0` or `slots == 0`.
    pub fn new(tick_ms: u64, slots: usize) -> Self {
        assert!(tick_ms > 0, "tick must be positive");
        assert!(slots > 0, "wheel needs at least one slot");
        TimerWheel {
            tick: tick_ms,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            overdue: Vec::new(),
            len: 0,
        }
    }

    /// A wheel sized so one revolution comfortably covers `cycle_ms` (the
    /// protocol's δ): 1 ms ticks and a power-of-two slot count at least
    /// `2 * cycle_ms`.
    pub fn for_cycle(cycle_ms: u64) -> Self {
        let slots = (2 * cycle_ms).next_power_of_two().clamp(64, 8192);
        TimerWheel::new(1, slots as usize)
    }

    /// Number of parked entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are parked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Parks `token` to fire once `advance` reaches `deadline_ms`.
    /// Deadlines in the past fire on the next `advance` call whose time
    /// has reached them.
    pub fn schedule(&mut self, deadline_ms: u64, token: u32) {
        // A deadline in a tick the cursor has fully passed would land in
        // a slot this revolution no longer visits and wait a whole
        // revolution; route it to the overdue lane instead. (The cursor's
        // own tick is still being visited, so `<`, not `<=`.)
        if deadline_ms / self.tick < self.cursor {
            self.overdue.push((deadline_ms, token));
            self.len += 1;
            return;
        }
        let slot = ((deadline_ms / self.tick) % self.slots.len() as u64) as usize;
        self.slots[slot].push((deadline_ms, token));
        self.len += 1;
    }

    /// Advances wheel time to `now_ms`, invoking `fire` for every entry
    /// whose deadline has passed. Entries fire in slot order, not exact
    /// deadline order — within one tick's width, order is unspecified.
    pub fn advance<F: FnMut(u32)>(&mut self, now_ms: u64, mut fire: F) {
        self.advance_entries(now_ms, |_, token| fire(token));
    }

    /// Like [`TimerWheel::advance`], but hands `fire` each entry's
    /// scheduled deadline alongside its token, so embeddings can measure
    /// fire lag (`now_ms - deadline`) without keeping a deadline table of
    /// their own.
    pub fn advance_entries<F: FnMut(u64, u32)>(&mut self, now_ms: u64, mut fire: F) {
        let mut i = 0;
        while i < self.overdue.len() {
            if self.overdue[i].0 <= now_ms {
                let (deadline, token) = self.overdue.swap_remove(i);
                self.len -= 1;
                fire(deadline, token);
            } else {
                i += 1;
            }
        }
        let target = now_ms / self.tick;
        let slots = self.slots.len() as u64;
        // Visit at most one full revolution: beyond that every slot has
        // been inspected once and parked entries re-checked.
        let first = self.cursor;
        let last = target.min(first + slots - 1);
        for tick in first..=last {
            let slot = (tick % slots) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].0 <= now_ms {
                    let (deadline, token) = entries.swap_remove(i);
                    self.len -= 1;
                    fire(deadline, token);
                } else {
                    i += 1;
                }
            }
        }
        // Stop at `target`, not `target + 1`: when `now_ms` sits mid-tick
        // (tick > 1 ms), later deadlines in the same tick are still due
        // this revolution, so the slot must be revisited next time.
        self.cursor = self.cursor.max(target);
    }

    /// Earliest parked deadline, or `None` when empty. O(slots + len);
    /// an introspection helper for embeddings and tests — the mux timer
    /// thread does not use it (it ticks on a fixed 1 ms cadence, see
    /// [`crate::mux`]).
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .chain(self.overdue.iter())
            .map(|&(deadline, _)| deadline)
            .min()
    }
}

/// A set of [`TimerWheel`]s, one per reader shard of the mux runtime:
/// token `t` always lives in wheel `t % shards`, so each wheel holds only
/// its socket's virtual nodes and no single wheel (or the lock guarding
/// its inbox) serializes the whole cluster.
///
/// Firing behavior is equivalent to one unsharded wheel: for any schedule
/// sequence, each `advance` fires exactly the same `(deadline, token)`
/// multiset (order within a call is unspecified either way) — pinned by
/// the property suite in `tests/timer_shards.rs`.
#[derive(Debug)]
pub struct ShardedTimerWheel {
    shards: Vec<TimerWheel>,
}

impl ShardedTimerWheel {
    /// Creates `shards` wheels of `slots` buckets of `tick_ms`
    /// milliseconds each.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, `tick_ms == 0`, or `slots == 0`.
    pub fn new(shards: usize, tick_ms: u64, slots: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedTimerWheel {
            shards: (0..shards)
                .map(|_| TimerWheel::new(tick_ms, slots))
                .collect(),
        }
    }

    /// `shards` wheels each sized by [`TimerWheel::for_cycle`].
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn for_cycle(shards: usize, cycle_ms: u64) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedTimerWheel {
            shards: (0..shards)
                .map(|_| TimerWheel::for_cycle(cycle_ms))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total parked entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(TimerWheel::len).sum()
    }

    /// Returns `true` if no entries are parked anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(TimerWheel::is_empty)
    }

    /// Parks `token` in its home shard (`token % shard_count`).
    pub fn schedule(&mut self, deadline_ms: u64, token: u32) {
        let shard = token as usize % self.shards.len();
        self.shards[shard].schedule(deadline_ms, token);
    }

    /// Advances every shard to `now_ms`, invoking `fire` for each due
    /// entry (shard-major order; within a shard, slot order).
    pub fn advance<F: FnMut(u32)>(&mut self, now_ms: u64, mut fire: F) {
        for shard in &mut self.shards {
            shard.advance(now_ms, &mut fire);
        }
    }

    /// Like [`ShardedTimerWheel::advance`], but hands `fire` each entry's
    /// scheduled deadline alongside its token (see
    /// [`TimerWheel::advance_entries`]).
    pub fn advance_entries<F: FnMut(u64, u32)>(&mut self, now_ms: u64, mut fire: F) {
        for shard in &mut self.shards {
            shard.advance_entries(now_ms, &mut fire);
        }
    }

    /// Earliest parked deadline across all shards, or `None` when empty.
    pub fn next_deadline(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(TimerWheel::next_deadline)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        wheel.advance(now, |t| out.push(t));
        out.sort_unstable();
        out
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut wheel = TimerWheel::new(2, 32);
        wheel.schedule(10, 1);
        assert_eq!(drain(&mut wheel, 9), Vec::<u32>::new());
        assert_eq!(drain(&mut wheel, 10), vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut wheel = TimerWheel::new(1, 64);
        wheel.advance(100, |_| unreachable!());
        wheel.schedule(5, 3); // long past
        assert_eq!(drain(&mut wheel, 100), vec![3]);
    }

    #[test]
    fn far_deadlines_survive_revolutions() {
        let mut wheel = TimerWheel::new(1, 8); // one revolution = 8 ms
        wheel.schedule(100, 9);
        for now in (0..100).step_by(3) {
            assert_eq!(drain(&mut wheel, now), Vec::<u32>::new(), "at {now}");
        }
        assert_eq!(drain(&mut wheel, 100), vec![9]);
    }

    #[test]
    fn many_tokens_one_slot() {
        let mut wheel = TimerWheel::new(4, 16);
        for token in 0..50 {
            wheel.schedule(20, token);
        }
        assert_eq!(wheel.len(), 50);
        assert_eq!(drain(&mut wheel, 23), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn big_jump_fires_everything() {
        let mut wheel = TimerWheel::new(1, 16);
        for token in 0..20 {
            wheel.schedule(u64::from(token) * 7, token);
        }
        assert_eq!(drain(&mut wheel, 1_000_000), (0..20).collect::<Vec<u32>>());
        assert!(wheel.is_empty());
    }

    #[test]
    fn mid_tick_deadline_fires_without_a_revolution() {
        // now = 10 lands mid-tick (tick 5 of width 2 covers 10-11): the
        // cursor must not skip past the tick, or deadline 11 would wait a
        // whole 64 ms revolution.
        let mut wheel = TimerWheel::new(2, 32);
        wheel.schedule(11, 1);
        assert_eq!(drain(&mut wheel, 10), Vec::<u32>::new());
        assert_eq!(drain(&mut wheel, 11), vec![1]);
    }

    #[test]
    fn overdue_lane_never_fires_early() {
        // An entry routed to the overdue lane (its tick fully behind the
        // cursor) still honors its deadline even if `advance` is called
        // with an earlier clock reading than before.
        let mut wheel = TimerWheel::new(2, 32);
        wheel.advance(10, |_| unreachable!());
        wheel.schedule(8, 7); // tick 4 < cursor 5: overdue lane
        assert_eq!(wheel.next_deadline(), Some(8));
        assert_eq!(drain(&mut wheel, 7), Vec::<u32>::new(), "fired early");
        assert_eq!(drain(&mut wheel, 8), vec![7]);
    }

    #[test]
    fn advance_entries_reports_scheduled_deadlines() {
        let mut wheel = TimerWheel::new(1, 16);
        wheel.schedule(5, 1);
        wheel.schedule(7, 2);
        wheel.advance(20, |_| {}); // move the cursor past both ticks
        wheel.schedule(3, 9); // overdue lane
        let mut fired = Vec::new();
        wheel.advance_entries(30, |deadline, token| fired.push((deadline, token)));
        fired.sort_unstable();
        assert_eq!(fired, vec![(3, 9)]);

        let mut sharded = ShardedTimerWheel::new(3, 1, 16);
        sharded.schedule(5, 1);
        sharded.schedule(7, 2);
        let mut fired = Vec::new();
        sharded.advance_entries(10, |deadline, token| fired.push((deadline, token)));
        fired.sort_unstable();
        assert_eq!(fired, vec![(5, 1), (7, 2)]);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut wheel = TimerWheel::new(1, 64);
        assert_eq!(wheel.next_deadline(), None);
        wheel.schedule(30, 1);
        wheel.schedule(12, 2);
        assert_eq!(wheel.next_deadline(), Some(12));
        assert_eq!(drain(&mut wheel, 12), vec![2]);
        assert_eq!(wheel.next_deadline(), Some(30));
    }

    #[test]
    fn for_cycle_sizes_reasonably() {
        let wheel = TimerWheel::for_cycle(50);
        assert!(wheel.slots.len() >= 100);
        assert!(wheel.slots.len().is_power_of_two());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_rejected() {
        TimerWheel::new(0, 8);
    }

    fn drain_sharded(wheel: &mut ShardedTimerWheel, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        wheel.advance(now, |t| out.push(t));
        out.sort_unstable();
        out
    }

    #[test]
    fn sharded_wheel_routes_tokens_to_home_shards() {
        let mut wheel = ShardedTimerWheel::new(4, 1, 64);
        assert_eq!(wheel.shard_count(), 4);
        for token in 0..16 {
            wheel.schedule(10 + u64::from(token), token);
        }
        assert_eq!(wheel.len(), 16);
        for (s, shard) in wheel.shards.iter().enumerate() {
            assert_eq!(shard.len(), 4, "shard {s} holds the wrong tokens");
        }
        assert_eq!(wheel.next_deadline(), Some(10));
        assert_eq!(
            drain_sharded(&mut wheel, 100),
            (0..16).collect::<Vec<u32>>()
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn sharded_wheel_matches_unsharded_firing() {
        // A fixed mixed sequence including overdue-lane entries: both
        // wheels must fire the same token set at every advance.
        for shards in [1usize, 2, 3, 5] {
            let mut single = TimerWheel::new(2, 16);
            let mut sharded = ShardedTimerWheel::new(shards, 2, 16);
            let schedules = [(5u64, 0u32), (7, 1), (40, 2), (3, 3), (200, 4)];
            for &(deadline, token) in &schedules {
                single.schedule(deadline, token);
                sharded.schedule(deadline, token);
            }
            for now in [4u64, 6, 8, 50] {
                assert_eq!(
                    drain(&mut single, now),
                    drain_sharded(&mut sharded, now),
                    "{shards} shards diverged at {now}"
                );
            }
            // Past-cursor schedules land in the overdue lane of whichever
            // wheel owns them; both sides must still agree.
            single.schedule(10, 5);
            sharded.schedule(10, 5);
            single.schedule(45, 6);
            sharded.schedule(45, 6);
            for now in [44u64, 45, 300] {
                assert_eq!(
                    drain(&mut single, now),
                    drain_sharded(&mut sharded, now),
                    "{shards} shards diverged at {now} (overdue lane)"
                );
            }
            assert!(single.is_empty() && sharded.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedTimerWheel::for_cycle(0, 50);
    }
}
