//! Multiplexed UDP cluster runtime: thousands of nodes, a handful of
//! threads — optionally sharded across sockets, processes, and hosts.
//!
//! [`crate::runtime`] realizes the paper's Figure 1 literally — one OS
//! thread and one socket per node — which caps real-network experiments
//! at a few hundred nodes per host. This module hosts N virtual nodes
//! inside one process behind a small fixed **socket set** on
//! `workers + readers + 1` OS threads:
//!
//! * `readers` sockets, each owned by one *reader* thread
//!   ([`MuxClusterConfig::with_readers`]; 1 reproduces the original
//!   single-socket runtime exactly). Local vnode `i` is homed on socket
//!   `i % readers`: its datagrams arrive there and its outbound frames
//!   leave from there, preserving per-vnode datagram ordering. Each
//!   reader routes by the virtual-node id in the mux frame
//!   ([`crate::codec::decode_mux_datagram`]) and — on the batched I/O
//!   backend ([`crate::batch::IoBackend`]) — drains up to
//!   [`crate::batch::BATCH`] datagrams per `recvmmsg` syscall;
//! * a *timer* thread drives one [`ShardedTimerWheel`] shard per reader
//!   (each wheel holds only its socket's vnodes, and each shard has its
//!   own schedule inbox, so the wheel path is never a single global
//!   lock) over every node's self-reported deadline
//!   ([`GossipNode::next_deadline`] merged with its directory's
//!   [`PeerDirectory::next_deadline`]): cycle boundaries,
//!   pending-exchange timeouts, joiner activations, membership gossip;
//! * `workers` worker threads execute the per-node state machines. No
//!   thread ever blocks on an exchange: a node that initiated one simply
//!   parks a timeout deadline in the wheel and yields its worker — the
//!   pending exchange is a timer-guarded continuation inside the sans-io
//!   [`GossipNode`]. Outbound frames accumulate per home socket in a
//!   [`crate::batch::SendBatch`] while the work queue is hot and flush
//!   as one `sendmmsg` burst; kernel-refused sends are counted in
//!   [`TrafficCounts::send_errors`] instead of being silently dropped.
//!
//! # Cross-host sharding
//!
//! The mux wire frame is address-agnostic: it routes by *cluster-wide*
//! virtual-node id. A [`PeerTable`] maps contiguous vnode-id ranges to
//! shard socket addresses, so a cluster can be split over multiple
//! sockets, processes, or hosts ([`MuxClusterConfig::sharded`]): each
//! process hosts one range and transmits frames for foreign vnodes to
//! the owning shard's socket. Same-seed determinism is preserved — node
//! state is a function of the cluster-wide id, not of shard layout — so
//! a sharded and an unsharded cluster draw identical peer sequences.
//!
//! # Membership
//!
//! `GETNEIGHBOR()` is served by a per-vnode [`PeerDirectory`]
//! ([`MuxClusterConfig::with_directory`]): a [`DirectorySpec::Static`]
//! table by default, or NEWSCAST gossip ([`DirectorySpec::Gossip`]) whose
//! view exchanges and join/introduce bootstrap travel as mux frames
//! through the same socket, timer wheel, and worker pool as the
//! aggregation traffic. Gossip introducers must be named by node id
//! ([`crate::directory::Introducer::Node`]) — mux frames route by id.
//!
//! Every datagram still crosses the kernel's UDP stack (loopback or
//! otherwise), so the runtime exercises the real codec, real sockets, and
//! real timing — only the thread-per-node cost model is gone. A node's
//! protocol behavior is identical to [`crate::runtime::UdpNode`]'s by
//! construction: same state machine, same seeds, and peer randomness
//! drawn lazily per *initiated exchange* ([`GossipNode::poll_sampler`]),
//! so a same-seed mux and thread-per-node cluster select the same peer
//! sequence per node.
//!
//! # Examples
//!
//! ```no_run
//! use epidemic_aggregation::{InstanceSpec, NodeConfig};
//! use epidemic_net::cluster::Cluster;
//! use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
//!
//! let node_config = NodeConfig::builder()
//!     .gamma(10)
//!     .cycle_length(50)
//!     .timeout(20)
//!     .instance(InstanceSpec::AVERAGE)
//!     .build()?;
//! // 1024 gossip nodes, two reader sockets, 4 + 2 + 1 OS threads.
//! let cluster = MuxCluster::spawn(
//!     MuxClusterConfig::new(1024, node_config)
//!         .with_workers(4)
//!         .with_readers(2),
//!     |i| i as f64,
//! )?;
//! std::thread::sleep(std::time::Duration::from_millis(1_200));
//! let reports = cluster.take_all_reports();
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::batch::{IoBackend, RecvBatch, SendBatch, BATCH};
use crate::cluster::{Cluster, TrafficCell, TrafficCounts};
use crate::codec::{
    decode_datagram, decode_mux_datagram, encode_mux_catalog_frame, encode_mux_directory_frame,
    encode_mux_frame, encode_mux_piggyback_frame, encode_mux_query_frame, encode_rpc_response,
    piggyback_trailer_len, WirePayload,
};
use crate::directory::{
    Destination, DirectoryMessage, DirectoryPayload, DirectorySpec, GossipDirectory, Introducer,
    PeerDirectory, StaticDirectory,
};
use crate::timer::ShardedTimerWheel;
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, NodeConfig};
use epidemic_common::stats::OnlineStats;
use epidemic_common::NodeId;
use epidemic_query::{
    QueryDescriptor, QueryError, QueryEstimate, QueryOutbound, QueryPlane, QueryPlaneConfig,
};
use epidemic_telemetry::{Counter, Gauge, Histogram, MetricsServer, Registry, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Maps cluster-wide virtual-node ids to shard socket addresses.
///
/// Shard `s` owns the contiguous id range [`PeerTable::shard_range`] and
/// publishes its full reader socket *set* ([`PeerTable::shard_sockets`]);
/// a frame for any vnode is transmitted to the destination vnode's home
/// socket within the owning shard's set — `sets[s][(vnode - start) %
/// sets[s].len()]`, the same `local % readers` homing rule the receiving
/// shard uses — so cross-shard traffic fans across every reader instead
/// of piling onto the first socket. A single-shard, single-socket table
/// is the degenerate case every one-process cluster uses implicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerTable {
    /// Range boundaries: shard `s` owns `starts[s]..starts[s + 1]`.
    starts: Vec<usize>,
    /// Reader socket set per shard; `sets[s][0]` is the shard's
    /// advertised primary address.
    sets: Vec<Vec<SocketAddr>>,
}

impl PeerTable {
    /// One shard owning every vnode `0..total` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn single(total: usize, addr: SocketAddr) -> Self {
        PeerTable::split(total, vec![addr])
    }

    /// Splits `0..total` into `addrs.len()` near-even contiguous ranges,
    /// in shard order (earlier shards get the larger ranges when the
    /// split is uneven). Each shard publishes a single socket; use
    /// [`PeerTable::split_sets`] to publish multi-reader socket sets.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty or `total < addrs.len()`.
    pub fn split(total: usize, addrs: Vec<SocketAddr>) -> Self {
        PeerTable::split_sets(total, addrs.into_iter().map(|a| vec![a]).collect())
    }

    /// Splits `0..total` into `sets.len()` near-even contiguous ranges,
    /// publishing each shard's full reader socket set so senders can fan
    /// cross-shard frames across it.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty, any set is empty, or
    /// `total < sets.len()`.
    pub fn split_sets(total: usize, sets: Vec<Vec<SocketAddr>>) -> Self {
        assert!(!sets.is_empty(), "peer table needs at least one shard");
        assert!(
            sets.iter().all(|set| !set.is_empty()),
            "every shard needs at least one socket"
        );
        assert!(
            total >= sets.len(),
            "fewer vnodes ({total}) than shards ({})",
            sets.len()
        );
        let shards = sets.len();
        let base = total / shards;
        let remainder = total % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut next = 0;
        for s in 0..shards {
            starts.push(next);
            next += base + usize::from(s < remainder);
        }
        starts.push(next);
        debug_assert_eq!(next, total);
        PeerTable { starts, sets }
    }

    /// Binds (and immediately releases) `shards` loopback sockets on
    /// ephemeral ports and splits `0..total` across them — the
    /// same-host convenience for multi-process experiments and tests.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn loopback_split(total: usize, shards: usize) -> io::Result<Self> {
        Ok(PeerTable::split(
            total,
            crate::cluster::reserve_loopback_addrs(shards)?,
        ))
    }

    /// Like [`PeerTable::loopback_split`], but publishes `readers`
    /// loopback sockets per shard, so every shard spawns a multi-reader
    /// socket set and cross-shard senders fan across it.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    ///
    /// # Panics
    ///
    /// Panics if `readers == 0`.
    pub fn loopback_split_readers(total: usize, shards: usize, readers: usize) -> io::Result<Self> {
        assert!(readers > 0, "need at least one reader per shard");
        let flat = crate::cluster::reserve_loopback_addrs(shards * readers)?;
        Ok(PeerTable::split_sets(
            total,
            flat.chunks(readers).map(<[SocketAddr]>::to_vec).collect(),
        ))
    }

    /// Cluster-wide virtual-node count.
    pub fn total(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.sets.len()
    }

    /// The vnode-id range shard `shard` owns.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_range(&self, shard: usize) -> Range<usize> {
        self.starts[shard]..self.starts[shard + 1]
    }

    /// The advertised (primary) socket address of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_addr(&self, shard: usize) -> SocketAddr {
        self.sets[shard][0]
    }

    /// The full published reader socket set of shard `shard`, primary
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_sockets(&self, shard: usize) -> &[SocketAddr] {
        &self.sets[shard]
    }

    /// The owning shard of `vnode`, or `None` for an out-of-range id.
    pub fn shard_of(&self, vnode: usize) -> Option<usize> {
        if vnode >= self.total() {
            return None;
        }
        // starts is sorted; find the last boundary at or below vnode.
        Some(match self.starts.binary_search(&vnode) {
            Ok(s) => s,
            Err(insertion) => insertion - 1,
        })
    }

    /// The socket address frames for `vnode` should be sent to — the
    /// vnode's home socket within its shard's published set — or `None`
    /// for an out-of-range id.
    pub fn addr_of(&self, vnode: usize) -> Option<SocketAddr> {
        let s = self.shard_of(vnode)?;
        let set = &self.sets[s];
        Some(set[(vnode - self.starts[s]) % set.len()])
    }
}

/// Configuration of a multiplexed cluster (or one shard of one): vnode
/// count, protocol parameters, membership directory, I/O layout (reader
/// sockets, syscall batching), and shard layout.
#[derive(Debug, Clone)]
pub struct MuxClusterConfig {
    /// Cluster-wide vnode count.
    n: usize,
    /// `(table, local shard)` for sharded deployments; `None` hosts all
    /// of `0..n` behind an ephemeral loopback socket set.
    sharding: Option<(PeerTable, usize)>,
    node_config: NodeConfig,
    seed: u64,
    /// Worker-thread count; `None` resolves core-aware at spawn.
    workers: Option<usize>,
    /// Reader socket/thread count; `None` resolves core-aware at spawn.
    readers: Option<usize>,
    io: IoBackend,
    directory: DirectorySpec,
    /// Per-vnode protocol event ring capacity; 0 disables tracing.
    trace_capacity: usize,
    /// Address to serve the Prometheus-text `/metrics` endpoint on.
    metrics_addr: Option<SocketAddr>,
    /// `false` stubs the whole metrics registry out (disconnected
    /// handles) — the A/B switch for measuring instrumentation overhead.
    telemetry: bool,
    /// Query-plane parameters shared by every vnode (catalog gossip
    /// cadence, rumor boost, COUNT leader concurrency).
    query: QueryPlaneConfig,
    /// Address to serve client query RPCs on (wire tags 13/14); `None`
    /// disables the listener.
    rpc_addr: Option<SocketAddr>,
}

impl MuxClusterConfig {
    /// Describes a cluster of `n` virtual nodes behind a loopback socket
    /// set. Thread counts resolve core-aware at spawn unless overridden:
    /// readers default to `(cores / 4).clamp(1, 4)` (so small machines
    /// keep the original single-reader layout) and workers to
    /// `(cores - readers - 1).clamp(1, 8)`. The I/O backend defaults to
    /// [`IoBackend::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, node_config: NodeConfig) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        MuxClusterConfig {
            n,
            sharding: None,
            node_config,
            seed: 0xC0FFEE,
            workers: None,
            readers: None,
            io: IoBackend::auto(),
            directory: DirectorySpec::Static,
            trace_capacity: 0,
            metrics_addr: None,
            telemetry: true,
            query: QueryPlaneConfig::default(),
            rpc_addr: None,
        }
    }

    /// Describes ONE shard of a cross-socket cluster: this process hosts
    /// `table.shard_range(local_shard)` and binds
    /// `table.shard_addr(local_shard)`; frames for foreign vnodes go to
    /// the owning shard's address. Every shard must be spawned with the
    /// same table, protocol config, and seed.
    ///
    /// # Panics
    ///
    /// Panics if `local_shard` is out of range.
    pub fn sharded(table: PeerTable, local_shard: usize, node_config: NodeConfig) -> Self {
        assert!(
            local_shard < table.shard_count(),
            "shard {local_shard} out of range ({} shards)",
            table.shard_count()
        );
        let mut config = MuxClusterConfig::new(table.total(), node_config);
        config.sharding = Some((table, local_shard));
        config
    }

    /// Overrides the randomness seed shared by the cluster (the same
    /// meaning as [`crate::runtime::ClusterConfig::with_seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = Some(workers);
        self
    }

    /// Overrides the reader socket/thread count. `1` reproduces the
    /// original single-socket runtime exactly; larger counts home local
    /// vnode `i` on socket `i % readers` (clamped at spawn to the local
    /// vnode count — extra sockets would never receive anything).
    ///
    /// # Panics
    ///
    /// Panics if `readers == 0`.
    pub fn with_readers(mut self, readers: usize) -> Self {
        assert!(readers > 0, "need at least one reader");
        self.readers = Some(readers);
        self
    }

    /// Overrides the datagram I/O backend (default: [`IoBackend::auto`],
    /// i.e. syscall batching wherever the platform supports it).
    pub fn with_io(mut self, io: IoBackend) -> Self {
        self.io = io;
        self
    }

    /// Selects the membership directory every vnode runs (default:
    /// [`DirectorySpec::Static`]).
    pub fn with_directory(mut self, directory: DirectorySpec) -> Self {
        self.directory = directory;
        self
    }

    /// Enables protocol event tracing with a bounded ring of `capacity`
    /// events per vnode (per plane); drain with
    /// [`MuxCluster::take_trace`]. Default: disabled.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Serves the registry as a Prometheus-text `/metrics` endpoint on
    /// `addr` for the cluster's lifetime (port 0 picks an ephemeral
    /// port; read it back via [`MuxCluster::metrics_addr`]).
    pub fn with_metrics_addr(mut self, addr: SocketAddr) -> Self {
        self.metrics_addr = Some(addr);
        self
    }

    /// Stubs out the metrics registry entirely: every counter, gauge,
    /// and histogram becomes a disconnected no-op handle. This is the
    /// control leg for measuring instrumentation overhead;
    /// [`MuxCluster::syscall_counts`] reads zero in this mode.
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry = false;
        self
    }

    /// Overrides the query-plane parameters every vnode runs (default:
    /// [`QueryPlaneConfig::default`]).
    pub fn with_query_config(mut self, query: QueryPlaneConfig) -> Self {
        self.query = query;
        self
    }

    /// Serves client query RPCs (install/remove/submit/read, wire tags
    /// 13/14) on a dedicated UDP listener at `addr` (port 0 picks an
    /// ephemeral port; read it back via [`MuxCluster::rpc_addr`]).
    /// Requests are routed round-robin over the shard's vnodes — every
    /// node holds the aggregate, so any node is a valid endpoint.
    pub fn with_rpc_addr(mut self, addr: SocketAddr) -> Self {
        self.rpc_addr = Some(addr);
        self
    }

    /// Cluster-wide number of virtual nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the cluster would be empty (never: `new` rejects
    /// `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// What kind of frame a queued send is — decides which traffic-plane
/// ledger its bytes land on at flush time.
#[derive(Debug, Clone, Copy)]
enum FrameKind {
    Aggregation,
    Membership,
    /// An aggregation frame carrying a membership trailer of this many
    /// bytes; the trailer bytes are charged to the membership plane.
    Piggybacked {
        trailer: u32,
    },
    /// A query-plane frame: catalog gossip or a named-query exchange.
    Query,
}

/// One unit of protocol work, executed by whichever worker claims it.
/// Node indices are local (shard-relative).
#[derive(Debug)]
enum Work {
    /// A timer deadline fired for the node.
    Wake(u32),
    /// A datagram arrived for the node.
    Deliver(u32, WirePayload),
}

/// FIFO work queue the reader and timer threads feed and the workers
/// drain.
#[derive(Debug, Default)]
struct WorkQueue {
    items: Mutex<VecDeque<Work>>,
    available: Condvar,
    /// `worker.queue_depth` — sampled on every push, so a scrape sees
    /// how far the workers are falling behind the reader/timer threads.
    depth: Gauge,
}

impl WorkQueue {
    fn push(&self, work: Work) {
        let mut items = self.items.lock().unwrap();
        items.push_back(work);
        self.depth.set(items.len() as f64);
        drop(items);
        self.available.notify_one();
    }

    /// Pops the next item if one is immediately available — lets a worker
    /// keep filling its send batches while the queue is hot without ever
    /// sleeping on frames it has not flushed yet.
    fn try_pop(&self) -> Option<Work> {
        self.items.lock().unwrap().pop_front()
    }

    /// Pops the next item, blocking until one arrives or `stop` is set.
    fn pop(&self, stop: &AtomicBool) -> Option<Work> {
        let mut items = self.items.lock().unwrap();
        loop {
            if let Some(work) = items.pop_front() {
                return Some(work);
            }
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(items, Duration::from_millis(50))
                .unwrap();
            items = guard;
        }
    }
}

/// A virtual node: the sans-io state machine, its membership directory,
/// and the earliest timer deadline already parked for it.
#[derive(Debug)]
struct VNode {
    gossip: GossipNode,
    directory: Box<dyn PeerDirectory>,
    /// The node's multi-tenant query plane: catalog replica plus one
    /// gossip instance per live named query.
    plane: QueryPlane,
    /// Earliest deadline with a live wheel entry for this node, or
    /// `u64::MAX` when none is known — lets workers skip redundant
    /// schedule requests (stale extra wake-ups are harmless but cost
    /// queue traffic).
    next_wake: u64,
}

impl VNode {
    /// The earliest tick any plane needs a wake-up at.
    fn deadline(&self) -> u64 {
        self.gossip
            .next_deadline()
            .min(self.directory.next_deadline())
            .min(self.plane.next_deadline())
    }
}

/// Cumulative kernel-boundary crossings of a running cluster — the
/// denominator of the syscalls-per-datagram metric the batch backends
/// exist to shrink. Backed by the `io.recv_syscalls` / `io.send_syscalls`
/// registry counters, so both read zero under
/// [`MuxClusterConfig::without_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscallCounts {
    /// Receive syscalls issued by the reader threads (`recvmmsg` or
    /// `recv_from`, including calls that ended in a read timeout).
    pub recv_calls: u64,
    /// Send syscalls issued by the worker threads (`sendmmsg` or
    /// `send_to`).
    pub send_calls: u64,
}

#[derive(Debug)]
struct Shared {
    /// The reader socket set; local vnode `i` is homed on socket
    /// `i % sockets.len()`. Socket 0 is the shard's advertised address.
    sockets: Vec<UdpSocket>,
    /// Local address of each reader socket, in socket order.
    reader_addrs: Vec<SocketAddr>,
    io: IoBackend,
    stop: AtomicBool,
    /// Cluster-wide id of local node 0.
    base: usize,
    table: PeerTable,
    nodes: Vec<Mutex<VNode>>,
    work: WorkQueue,
    /// Schedule requests `(deadline_ms, local node)` bound for the timer
    /// thread's wheel, one inbox per reader shard (indexed like the
    /// sockets, by `node % readers`) so workers on different shards never
    /// contend on one lock.
    timer_inboxes: Vec<Mutex<Vec<(u64, u32)>>>,
    /// Per-local-node traffic accounting.
    traffic: Vec<TrafficCell>,
    /// The unified metrics registry every handle below is connected to
    /// (or [`Registry::disabled`] under `without_telemetry`).
    registry: Registry,
    /// `io.recv_syscalls{backend=…}` — reader-thread kernel crossings.
    recv_calls: Counter,
    /// `io.send_syscalls{backend=…}` — worker-thread kernel crossings.
    send_calls: Counter,
    /// `io.recv_timeouts` — the subset of recv syscalls that returned
    /// empty-handed (read-timeout wakeups for the stop-flag check).
    recv_timeouts: Counter,
    /// `agg.exchanges` — push-pull exchanges initiated by local vnodes.
    agg_exchanges: Counter,
    /// `membership.delta_bytes` — wire bytes of delta-encoded view
    /// frames plus piggybacked membership trailers.
    delta_bytes: Counter,
    /// `timer.fire_lag_us` — how late the wheel fired each deadline.
    fire_lag: Histogram,
    /// `io.syscalls_per_datagram` — refreshed by the timer thread's
    /// maintenance tick.
    syscalls_per_datagram: Gauge,
    /// `membership.view_mean_size` — sampled round-robin over vnodes.
    view_mean_size: Gauge,
    /// `membership.view_dead_fraction` — stale-entry share of the same
    /// sampled view.
    view_dead_fraction: Gauge,
    /// Derives `epoch.variance_reduction_rho` / `epoch.estimate_drift`
    /// from the epoch reports passing through [`MuxCluster::take_reports`].
    rho: Mutex<RhoTracker>,
    /// `rpc.requests` — client RPC datagrams the listener served.
    rpc_requests: Counter,
    /// `rpc.rejects` — the subset answered with a non-`Ok` status.
    rpc_rejects: Counter,
    /// Derives `epoch.estimate_drift{query=…}` per named query from the
    /// completed query epochs the workers drain.
    query_drift: Mutex<QueryDriftTracker>,
    /// Per-reader-socket datagram arrivals (total, from-remote-shard) —
    /// the observable proof that cross-shard senders fan across the whole
    /// published socket set.
    socket_recvs: Vec<SocketRecvCell>,
    start: Instant,
}

/// Folds per-epoch estimate snapshots into the paper's convergence
/// figure: the observed per-cycle variance reduction factor
/// ρ = (var_E / var_0)^(1/γ) (Eq. (3) run backwards), published as the
/// `epoch.variance_reduction_rho` gauge next to the theoretical
/// 1/(2√e) ≈ 0.3033 bound in `epoch.rho_theory`.
#[derive(Debug)]
struct RhoTracker {
    /// Variance of the spawn-time local values — the var_0 every epoch
    /// restarts from (each epoch re-seeds estimates from local values).
    var0: f64,
    gamma: f64,
    /// Per-epoch estimate accumulators, pruned to a recent window so a
    /// long-running cluster holds O(1) state.
    epochs: Vec<(u64, OnlineStats)>,
    rho: Gauge,
    drift: Gauge,
}

impl RhoTracker {
    /// Number of recent epochs kept live in the window.
    const WINDOW: u64 = 4;

    fn observe(&mut self, epoch: u64, estimate: f64) {
        let stats = match self.epochs.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, s)) => s,
            None => {
                self.epochs.push((epoch, OnlineStats::new()));
                &mut self.epochs.last_mut().unwrap().1
            }
        };
        stats.push(estimate);
        // Publish from the newest epoch with at least two estimates —
        // a single report has no variance to speak of.
        if let Some((_, s)) = self
            .epochs
            .iter()
            .filter(|(_, s)| s.count() >= 2)
            .max_by_key(|(e, _)| *e)
        {
            let var_e = s.population_variance();
            if self.var0 > 0.0 && var_e > 0.0 {
                self.rho.set((var_e / self.var0).powf(1.0 / self.gamma));
            }
            self.drift.set(s.spread());
        }
        if let Some(newest) = self.epochs.iter().map(|(e, _)| *e).max() {
            self.epochs
                .retain(|(e, _)| *e + RhoTracker::WINDOW > newest);
        }
    }
}

/// The per-query twin of [`RhoTracker`]'s drift gauge: for every named
/// query, publishes `epoch.estimate_drift{query=…}` — the spread of the
/// newest completed epoch's estimates across local vnodes.
#[derive(Debug)]
struct QueryDriftTracker {
    registry: Registry,
    queries: BTreeMap<String, (Vec<(u64, OnlineStats)>, Gauge)>,
}

impl QueryDriftTracker {
    fn observe(&mut self, query: &str, epoch: u64, estimate: f64) {
        let registry = &self.registry;
        let (epochs, gauge) = self.queries.entry(query.to_string()).or_insert_with(|| {
            (
                Vec::new(),
                registry.gauge_with("epoch.estimate_drift", &[("query", query)]),
            )
        });
        let stats = match epochs.iter_mut().find(|(e, _)| *e == epoch) {
            Some((_, s)) => s,
            None => {
                epochs.push((epoch, OnlineStats::new()));
                &mut epochs.last_mut().unwrap().1
            }
        };
        stats.push(estimate);
        // Publish from the newest epoch with at least two estimates —
        // a single report has no spread to speak of.
        if let Some((_, s)) = epochs
            .iter()
            .filter(|(_, s)| s.count() >= 2)
            .max_by_key(|(e, _)| *e)
        {
            gauge.set(s.spread());
        }
        if let Some(newest) = epochs.iter().map(|(e, _)| *e).max() {
            epochs.retain(|(e, _)| *e + RhoTracker::WINDOW > newest);
        }
    }
}

/// Atomic twin of [`SocketRecvCounts`], one per reader socket.
#[derive(Debug, Default)]
struct SocketRecvCell {
    datagrams: AtomicU64,
    remote_datagrams: AtomicU64,
}

/// Datagram arrivals on one reader socket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketRecvCounts {
    /// Every datagram this socket received.
    pub datagrams: u64,
    /// The subset whose source address was NOT one of this shard's own
    /// sockets — i.e. cross-shard traffic.
    pub remote_datagrams: u64,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn schedule(&self, deadline: u64, node: u32) {
        let inbox = &self.timer_inboxes[node as usize % self.timer_inboxes.len()];
        inbox.lock().unwrap().push((deadline, node));
    }

    /// Home socket of local vnode `local`.
    fn socket_of(&self, local: usize) -> usize {
        local % self.sockets.len()
    }

    /// Where a frame for cluster-wide vnode `vnode` must be sent: a local
    /// vnode's home socket, a foreign vnode's shard address (its shard's
    /// socket 0 — every reader routes by frame id, so landing on the
    /// primary socket is always correct), or `None` for an out-of-range
    /// id.
    fn dest_addr(&self, vnode: usize) -> Option<SocketAddr> {
        if let Some(local) = vnode.checked_sub(self.base) {
            if local < self.nodes.len() {
                return Some(self.reader_addrs[self.socket_of(local)]);
            }
        }
        self.table.addr_of(vnode)
    }
}

/// Handle to a running multiplexed cluster (or one shard of one).
///
/// Dropping the handle shuts the cluster down (all threads exit within
/// one poll interval), mirroring [`crate::runtime::UdpNode`].
#[derive(Debug)]
pub struct MuxCluster {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// The `/metrics` HTTP endpoint, when configured; shut down (and its
    /// thread joined) when the cluster handle drops.
    metrics: Option<MetricsServer>,
    /// Bound address of the client RPC listener, when configured.
    rpc_addr: Option<SocketAddr>,
}

impl MuxCluster {
    /// Binds the shard's socket set, builds its virtual nodes with local
    /// values `values(id)` (`id` is the *cluster-wide* vnode id), and
    /// starts the reader, timer, and worker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, timeout setup).
    pub fn spawn(
        config: MuxClusterConfig,
        values: impl Fn(usize) -> f64,
    ) -> io::Result<MuxCluster> {
        let MuxClusterConfig {
            n,
            sharding,
            node_config,
            seed,
            workers,
            readers,
            io,
            directory,
            trace_capacity,
            metrics_addr,
            telemetry,
            query,
            rpc_addr,
        } = config;
        // Mux membership is id-routed: a join aimed at an address (or at
        // a vnode outside the cluster) could never be framed, and with no
        // introducers at all nobody ever joins anybody — either way the
        // cluster silently fails to bootstrap. Reject it up front.
        if let DirectorySpec::Gossip(g) = &directory {
            if g.introducers.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "gossip directory needs at least one introducer",
                ));
            }
            for intro in &g.introducers {
                match *intro {
                    Introducer::Node(id) if (id as usize) < n => {}
                    Introducer::Node(id) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!("introducer vnode {id} outside the cluster (n = {n})"),
                        ))
                    }
                    Introducer::Addr(addr) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            format!(
                                "mux introducers must be vnode ids (frames route by id), \
                                 got address {addr}"
                            ),
                        ))
                    }
                }
            }
        }
        let (primary, table, local_range, local_shard) = match sharding {
            None => {
                let socket = UdpSocket::bind(("127.0.0.1", 0))?;
                let addr = socket.local_addr()?;
                (socket, PeerTable::single(n, addr), 0..n, 0)
            }
            Some((table, shard)) => {
                let socket = UdpSocket::bind(table.shard_addr(shard))?;
                let range = table.shard_range(shard);
                (socket, table, range, shard)
            }
        };
        let base = local_range.start;
        // Core-aware thread-count resolution; explicit overrides win.
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(2);
        // Every published shard socket MUST be bound — other shards fan
        // cross-shard frames across the full advertised set — so the
        // reader count can only grow past the published set, never below.
        let published = table.shard_sockets(local_shard).to_vec();
        let readers = readers
            .unwrap_or((cores / 4).clamp(1, 4))
            .clamp(1, local_range.len())
            .max(published.len());
        let workers = workers.unwrap_or(cores.saturating_sub(readers + 1).clamp(1, 8));
        // Readers beyond the published set bind ephemeral ports on the
        // shard's advertised IP; they receive only locally-homed traffic
        // (cross-shard senders know nothing about them), which is
        // correct — readers route by frame id.
        let mut sockets = vec![primary];
        for addr in &published[1..] {
            sockets.push(UdpSocket::bind(*addr)?);
        }
        for _ in published.len()..readers {
            sockets.push(UdpSocket::bind((sockets[0].local_addr()?.ip(), 0))?);
        }
        let mut reader_addrs = Vec::with_capacity(readers);
        for socket in &sockets {
            socket.set_read_timeout(Some(Duration::from_millis(20)))?;
            reader_addrs.push(socket.local_addr()?);
        }
        let registry = if telemetry {
            Registry::new()
        } else {
            Registry::disabled()
        };
        // Bind the scrape endpoint before the protocol threads start, so
        // a bind failure leaks nothing.
        let metrics = match metrics_addr {
            Some(addr) => Some(MetricsServer::bind(addr, registry.clone())?),
            None => None,
        };
        let mut spawn_stats = OnlineStats::new();
        let nodes: Vec<Mutex<VNode>> = local_range
            .clone()
            .map(|global| {
                let id = NodeId::new(global as u64);
                let mut dir: Box<dyn PeerDirectory> = match &directory {
                    DirectorySpec::Static => Box::new(StaticDirectory::id_routed(n, id, seed)),
                    DirectorySpec::Gossip(g) => Box::new(GossipDirectory::id_routed(id, g, seed)),
                };
                let value = values(global);
                spawn_stats.push(value);
                let mut gossip = GossipNode::founder(id, node_config.clone(), value, seed);
                if trace_capacity > 0 {
                    gossip.set_trace_capacity(trace_capacity);
                    dir.set_trace_capacity(trace_capacity);
                }
                Mutex::new(VNode {
                    gossip,
                    directory: dir,
                    plane: QueryPlane::new(id, query, seed, registry.clone()),
                    next_wake: u64::MAX,
                })
            })
            .collect();
        let local_n = nodes.len();
        let backend = &[("backend", io.as_str())];
        registry
            .gauge("epoch.rho_theory")
            .set(0.5 / std::f64::consts::E.sqrt());
        let work = WorkQueue {
            depth: registry.gauge("worker.queue_depth"),
            ..WorkQueue::default()
        };
        let shared = Arc::new(Shared {
            sockets,
            reader_addrs,
            io,
            stop: AtomicBool::new(false),
            base,
            table,
            nodes,
            work,
            timer_inboxes: (0..readers).map(|_| Mutex::new(Vec::new())).collect(),
            traffic: (0..local_n).map(|_| TrafficCell::default()).collect(),
            recv_calls: registry.counter_with("io.recv_syscalls", backend),
            send_calls: registry.counter_with("io.send_syscalls", backend),
            recv_timeouts: registry.counter("io.recv_timeouts"),
            agg_exchanges: registry.counter("agg.exchanges"),
            delta_bytes: registry.counter("membership.delta_bytes"),
            fire_lag: registry.histogram("timer.fire_lag_us"),
            syscalls_per_datagram: registry.gauge("io.syscalls_per_datagram"),
            view_mean_size: registry.gauge("membership.view_mean_size"),
            view_dead_fraction: registry.gauge("membership.view_dead_fraction"),
            rho: Mutex::new(RhoTracker {
                var0: spawn_stats.population_variance(),
                gamma: f64::from(node_config.gamma()),
                epochs: Vec::new(),
                rho: registry.gauge("epoch.variance_reduction_rho"),
                drift: registry.gauge("epoch.estimate_drift"),
            }),
            rpc_requests: registry.counter("rpc.requests"),
            rpc_rejects: registry.counter("rpc.rejects"),
            query_drift: Mutex::new(QueryDriftTracker {
                registry: registry.clone(),
                queries: BTreeMap::new(),
            }),
            registry,
            socket_recvs: (0..readers).map(|_| SocketRecvCell::default()).collect(),
            start: Instant::now(),
        });
        // Prime every node with an initial wake so its first deadline is
        // computed and parked (and gossip directories send their joins).
        for i in 0..local_n {
            shared.work.push(Work::Wake(i as u32));
        }

        // Bind the client RPC listener (if any) before the protocol
        // threads start, so a bind failure leaks nothing.
        let rpc_socket = match rpc_addr {
            Some(addr) => {
                let socket = UdpSocket::bind(addr)?;
                socket.set_read_timeout(Some(Duration::from_millis(20)))?;
                Some(socket)
            }
            None => None,
        };
        let rpc_addr = match &rpc_socket {
            Some(socket) => Some(socket.local_addr()?),
            None => None,
        };

        let mut threads =
            Vec::with_capacity(workers + readers + 1 + usize::from(rpc_socket.is_some()));
        let cycle = node_config.cycle_length();
        let spawned = (|| -> io::Result<()> {
            for k in 0..readers {
                let reader_shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("mux-reader-{k}"))
                        .spawn(move || reader_loop(&reader_shared, k))?,
                );
            }
            let timer_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mux-timer".into())
                    .spawn(move || timer_loop(&timer_shared, cycle))?,
            );
            for k in 0..workers {
                let worker_shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("mux-worker-{k}"))
                        .spawn(move || worker_loop(&worker_shared))?,
                );
            }
            if let Some(socket) = rpc_socket {
                let rpc_shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name("mux-rpc".into())
                        .spawn(move || rpc_loop(&rpc_shared, &socket))?,
                );
            }
            Ok(())
        })();
        if let Err(e) = spawned {
            // A later spawn failed (e.g. thread exhaustion): stop and
            // join whatever already started instead of leaking detached
            // threads that would pin the socket and node state forever.
            shared.stop.store(true, Ordering::Relaxed);
            shared.work.available.notify_all();
            for handle in threads {
                let _ = handle.join();
            }
            return Err(e);
        }
        Ok(MuxCluster {
            shared,
            threads,
            metrics,
            rpc_addr,
        })
    }

    /// The bound address of the client RPC listener, if one was
    /// configured with [`MuxClusterConfig::with_rpc_addr`]. Clients send
    /// encoded [`epidemic_query::RpcRequest`] datagrams (wire tag 13)
    /// here and receive tag-14 responses from the same socket.
    pub fn rpc_addr(&self) -> Option<SocketAddr> {
        self.rpc_addr
    }

    /// The shard's advertised socket address (socket 0 of the reader set
    /// — the one the peer table publishes to other shards).
    pub fn addr(&self) -> SocketAddr {
        self.shared.reader_addrs[0]
    }

    /// Number of reader sockets (and reader threads) this shard runs.
    pub fn reader_count(&self) -> usize {
        self.shared.sockets.len()
    }

    /// The datagram I/O backend the cluster is moving bytes with.
    pub fn io_backend(&self) -> IoBackend {
        self.shared.io
    }

    /// Cumulative send/receive syscall counts across all threads since
    /// spawn — divide by [`TrafficCounts`] datagram totals for the
    /// syscalls-per-datagram figure the batched backend exists to shrink.
    pub fn syscall_counts(&self) -> SyscallCounts {
        SyscallCounts {
            recv_calls: self.shared.recv_calls.get(),
            send_calls: self.shared.send_calls.get(),
        }
    }

    /// The cluster's metrics registry — scrape it in-process with
    /// [`Registry::render_prometheus`], or read individual series with
    /// [`Registry::counter_value`] / [`Registry::gauge_value`].
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// The bound address of the `/metrics` HTTP endpoint, if one was
    /// configured with [`MuxClusterConfig::with_metrics_addr`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(MetricsServer::addr)
    }

    /// Drains the protocol event trace of local node `index` (both the
    /// aggregation and the membership plane); empty unless the cluster
    /// was spawned with [`MuxClusterConfig::with_trace`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take_trace(&self, index: usize) -> Vec<TraceEvent> {
        let mut vnode = self.shared.nodes[index].lock().unwrap();
        let mut events = vnode.gossip.take_trace();
        events.extend(vnode.directory.take_trace());
        events
    }

    /// Datagram arrivals per reader socket (indexed like
    /// [`Cluster::addrs`]), with the cross-shard subset counted
    /// separately — the receiver-side evidence that remote senders fan
    /// across the whole published socket set.
    pub fn socket_recv_counts(&self) -> Vec<SocketRecvCounts> {
        self.shared
            .socket_recvs
            .iter()
            .map(|cell| SocketRecvCounts {
                datagrams: cell.datagrams.load(Ordering::Relaxed),
                remote_datagrams: cell.remote_datagrams.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Number of virtual nodes hosted by THIS handle (the local shard).
    pub fn len(&self) -> usize {
        self.shared.nodes.len()
    }

    /// Returns `true` if this handle hosts no nodes (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.shared.nodes.is_empty()
    }

    /// Cluster-wide virtual-node count (across all shards).
    pub fn total_len(&self) -> usize {
        self.shared.table.total()
    }

    /// OS threads the cluster runs on: `workers + readers + 1` (the
    /// reader set plus one timer thread), plus one more when the client
    /// RPC listener is enabled.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Drains the epoch reports local node `index` produced since the
    /// last call.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take_reports(&self, index: usize) -> Vec<EpochReport> {
        let reports = self.shared.nodes[index]
            .lock()
            .unwrap()
            .gossip
            .take_reports();
        // Fold the drained estimates into the convergence-health gauges:
        // every report is one node's end-of-epoch estimate, so the
        // cross-node variance of one epoch's reports against the spawn
        // variance yields the observed per-cycle ρ.
        if self.shared.registry.is_enabled() && !reports.is_empty() {
            let mut rho = self.shared.rho.lock().unwrap();
            for r in &reports {
                if let Some(est) = r.scalar(0) {
                    rho.observe(r.epoch, est);
                }
            }
        }
        reports
    }

    /// Updates local node `index`'s local value (takes effect at its next
    /// epoch, exactly like [`crate::runtime::UdpNode::set_local_value`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_local_value(&self, index: usize, value: f64) {
        self.shared.nodes[index]
            .lock()
            .unwrap()
            .gossip
            .set_local_value(value);
    }

    /// Datagram counts of local node `index`, split by plane.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn datagram_counts(&self, index: usize) -> TrafficCounts {
        self.shared.traffic[index].snapshot()
    }

    /// Stops all threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Cluster for MuxCluster {
    type Config = MuxClusterConfig;

    fn spawn_cluster(config: MuxClusterConfig, values: &dyn Fn(usize) -> f64) -> io::Result<Self> {
        MuxCluster::spawn(config, values)
    }

    fn node_count(&self) -> usize {
        self.len()
    }

    fn node_id(&self, index: usize) -> NodeId {
        assert!(index < self.len(), "node index out of range");
        NodeId::new((self.shared.base + index) as u64)
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.shared.reader_addrs.clone()
    }

    fn take_reports(&self, index: usize) -> Vec<EpochReport> {
        MuxCluster::take_reports(self, index)
    }

    fn set_local_value(&self, index: usize, value: f64) {
        MuxCluster::set_local_value(self, index, value);
    }

    fn datagram_counts(&self, index: usize) -> TrafficCounts {
        MuxCluster::datagram_counts(self, index)
    }

    fn take_trace(&self, index: usize) -> Vec<TraceEvent> {
        MuxCluster::take_trace(self, index)
    }

    fn install_query(&self, index: usize, descriptor: QueryDescriptor) -> Result<(), QueryError> {
        let now = self.shared.now_ms();
        let result = self.shared.nodes[index]
            .lock()
            .unwrap()
            .plane
            .install(descriptor, now);
        // A fresh install must start gossiping before the node's next
        // parked deadline; a wake recomputes and re-parks it.
        self.shared.work.push(Work::Wake(index as u32));
        result
    }

    fn remove_query(&self, index: usize, name: &str) -> Result<(), QueryError> {
        let now = self.shared.now_ms();
        let result = self.shared.nodes[index]
            .lock()
            .unwrap()
            .plane
            .remove(name, now);
        self.shared.work.push(Work::Wake(index as u32));
        result
    }

    fn submit_query(&self, index: usize, name: &str, value: f64) -> Result<(), QueryError> {
        let now = self.shared.now_ms();
        self.shared.nodes[index]
            .lock()
            .unwrap()
            .plane
            .submit(name, value, now)
    }

    fn query_estimate(&self, index: usize, name: &str) -> Result<QueryEstimate, QueryError> {
        self.shared.nodes[index]
            .lock()
            .unwrap()
            .plane
            .estimate(name)
    }

    fn shutdown(self) {
        MuxCluster::shutdown(self);
    }
}

/// The trait's provided methods, also reachable without importing
/// [`Cluster`] (existing call sites predate the trait).
impl MuxCluster {
    /// Drains every local node's epoch reports, indexed by local node.
    pub fn take_all_reports(&self) -> Vec<Vec<EpochReport>> {
        (0..self.len()).map(|i| self.take_reports(i)).collect()
    }
}

impl Drop for MuxCluster {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Blocks on reader socket `reader` and routes datagrams to state
/// machines, draining up to [`BATCH`] per syscall on the batched backend.
fn reader_loop(shared: &Shared, reader: usize) {
    let socket = &shared.sockets[reader];
    let mut batch = RecvBatch::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match batch.recv(socket, shared.io) {
            Ok(count) => {
                shared.recv_calls.inc();
                let socket_cell = &shared.socket_recvs[reader];
                for i in 0..count {
                    socket_cell.datagrams.fetch_add(1, Ordering::Relaxed);
                    // A source address outside our own socket set means
                    // another shard sent this — count it against this
                    // socket so cross-shard fan-out is observable.
                    if let Some(src) = batch.src(i) {
                        if !shared.reader_addrs.contains(&src) {
                            socket_cell.remote_datagrams.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let Ok((to, payload)) = decode_mux_datagram(batch.datagram(i)) else {
                        continue; // corrupt datagram: drop, stay alive
                    };
                    let Some(local) = to.index().checked_sub(shared.base) else {
                        continue; // foreign shard's vnode: misrouted, drop
                    };
                    if local < shared.nodes.len() {
                        // A piggybacked frame is an aggregation datagram
                        // (its membership trailer is charged in bytes on
                        // the send side, not as a datagram).
                        match &payload {
                            WirePayload::Directory(_) => {
                                shared.traffic[local].count_received(true);
                            }
                            WirePayload::Catalog { .. } | WirePayload::Query { .. } => {
                                shared.traffic[local].count_query_received();
                            }
                            _ => shared.traffic[local].count_received(false),
                        }
                        shared.work.push(Work::Deliver(local as u32, payload));
                    }
                }
            }
            // Read timeout (or spurious wake): re-check the stop flag.
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                shared.recv_calls.inc();
                shared.recv_timeouts.inc();
                continue;
            }
            Err(_) => continue,
        }
    }
}

/// Owns the timer wheels (one shard per reader): drains each shard's
/// schedule inbox, fires due deadlines as [`Work::Wake`] items.
fn timer_loop(shared: &Shared, cycle_ms: u64) {
    let mut wheel = ShardedTimerWheel::for_cycle(shared.timer_inboxes.len(), cycle_ms.max(1));
    let mut scratch: Vec<(u64, u32)> = Vec::new();
    let mut ticks = 0u64;
    let mut health_cursor = 0usize;
    while !shared.stop.load(Ordering::Relaxed) {
        for inbox in &shared.timer_inboxes {
            std::mem::swap(&mut scratch, &mut inbox.lock().unwrap());
            // Tokens route to wheel shard `node % shards` — the same
            // shard whose inbox they arrived through.
            for (deadline, node) in scratch.drain(..) {
                wheel.schedule(deadline, node);
            }
        }
        let now = shared.now_ms();
        wheel.advance_entries(now, |deadline, node| {
            shared.fire_lag.record(now.saturating_sub(deadline) * 1_000);
            shared.work.push(Work::Wake(node));
        });
        ticks += 1;
        // The wheel ticks every millisecond; derived gauges only need to
        // move on scrape timescales, so refresh them every ~quarter
        // second instead of on every tick.
        if ticks % 256 == 0 {
            refresh_derived_gauges(shared, now, &mut health_cursor);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Recomputes the gauges that are ratios or samples over shared state:
/// `io.syscalls_per_datagram` from the syscall counters and traffic
/// cells, and the `membership.view_*` health pair from one vnode's
/// directory per call (round-robin, skipping vnodes a worker holds
/// locked — a gauge sample must never stall the protocol path).
fn refresh_derived_gauges(shared: &Shared, now: u64, health_cursor: &mut usize) {
    if !shared.registry.is_enabled() {
        return;
    }
    let syscalls = shared.recv_calls.get() + shared.send_calls.get();
    let datagrams: u64 = shared
        .traffic
        .iter()
        .map(|cell| {
            let counts = cell.snapshot();
            counts.sent() + counts.received()
        })
        .sum();
    if datagrams > 0 {
        shared
            .syscalls_per_datagram
            .set(syscalls as f64 / datagrams as f64);
    }
    for _ in 0..shared.nodes.len().min(8) {
        let index = *health_cursor % shared.nodes.len();
        *health_cursor += 1;
        let Ok(vnode) = shared.nodes[index].try_lock() else {
            continue;
        };
        if let Some(health) = vnode.directory.view_health(now) {
            shared.view_mean_size.set(health.mean_size);
            shared.view_dead_fraction.set(health.dead_entry_fraction);
        }
        break;
    }
}

/// Executes per-node protocol steps until shutdown. Outbound frames are
/// queued per home socket and flushed as one burst (`sendmmsg` on the
/// batched backend) once the work queue runs dry or [`BATCH`] frames have
/// accumulated — frames never wait on a sleeping worker.
fn worker_loop(shared: &Shared) {
    let mut dir_out: Vec<DirectoryMessage> = Vec::new();
    // One send batch per reader socket; meta = (local node, frame kind).
    let mut pending: Vec<SendBatch<(u32, FrameKind)>> = (0..shared.sockets.len())
        .map(|_| SendBatch::new())
        .collect();
    while let Some(mut work) = shared.work.pop(&shared.stop) {
        let mut queued = 0usize;
        loop {
            queued += step_vnode(shared, work, &mut dir_out, &mut pending);
            if queued >= BATCH {
                break;
            }
            match shared.work.try_pop() {
                Some(next) => work = next,
                None => break,
            }
        }
        flush_pending(shared, &mut pending);
    }
}

/// Runs one unit of work against its vnode, queueing outbound frames on
/// the vnode's home-socket batch. Returns how many frames were queued.
fn step_vnode(
    shared: &Shared,
    work: Work,
    dir_out: &mut Vec<DirectoryMessage>,
    pending: &mut [SendBatch<(u32, FrameKind)>],
) -> usize {
    let (index, is_wake) = match &work {
        Work::Wake(i) => (*i as usize, true),
        Work::Deliver(i, _) => (*i as usize, false),
    };
    let mut vnode = shared.nodes[index].lock().unwrap();
    let now = shared.now_ms();
    let mut query_out: Vec<QueryOutbound> = Vec::new();
    let outbound = match work {
        Work::Wake(_) => {
            // This wake consumed whatever wheel entry was parked.
            vnode.next_wake = u64::MAX;
            let VNode {
                gossip,
                directory,
                plane,
                ..
            } = &mut *vnode;
            let out = gossip.poll_sampler(now, directory);
            query_out = plane.poll(now, directory);
            directory.poll(now, dir_out);
            out
        }
        Work::Deliver(_, WirePayload::Aggregation(msg)) => vnode.gossip.handle(&msg, now),
        Work::Deliver(_, WirePayload::Piggybacked(msg, pb)) => {
            let VNode {
                gossip, directory, ..
            } = &mut *vnode;
            directory.absorb_piggyback(&pb, None, now);
            gossip.handle(&msg, now)
        }
        Work::Deliver(_, WirePayload::Directory(payload)) => {
            vnode.directory.handle(&payload, None, now, dir_out);
            None
        }
        Work::Deliver(_, WirePayload::Catalog { entries, .. }) => {
            // Merging may install/remove queries, which moves the plane
            // deadline; the parking below picks that up.
            vnode.plane.handle_catalog(&entries, now);
            None
        }
        Work::Deliver(_, WirePayload::Query { query, message }) => {
            if let Some(reply) = vnode.plane.handle_aggregation(&query, &message, now) {
                query_out.push(reply);
            }
            None
        }
        // Client RPC rides the dedicated listener socket (`rpc_loop`);
        // one arriving as a mux frame is misrouted and dropped.
        Work::Deliver(_, WirePayload::Rpc(_) | WirePayload::RpcReply(_)) => None,
    };
    // Completed query epochs feed the per-query drift gauges (drained
    // unconditionally so a disabled registry never accumulates them).
    let query_epochs = vnode.plane.take_epochs();
    // An outbound aggregation frame is a free ride for membership news:
    // ask the directory for a trailer worth attaching (None in steady
    // state, and always None for a static directory).
    let piggyback = outbound
        .as_ref()
        .and_then(|out| vnode.directory.piggyback(out.to, now));
    shared.traffic[index].set_join_retries(vnode.directory.join_retries());
    // Park the node's next deadline unless an earlier (or equal)
    // wheel entry is already live. After a wake we always re-park.
    let deadline = vnode.deadline();
    if is_wake || deadline < vnode.next_wake {
        vnode.next_wake = deadline;
        shared.schedule(deadline, index as u32);
    }
    drop(vnode);
    if is_wake && outbound.is_some() {
        shared.agg_exchanges.inc();
    }
    if shared.registry.is_enabled() && !query_epochs.is_empty() {
        let mut drift = shared.query_drift.lock().unwrap();
        for e in &query_epochs {
            if let Some(est) = e.estimate {
                drift.observe(&e.query, e.epoch, est);
            }
        }
    }
    let batch = &mut pending[shared.socket_of(index)];
    let before = batch.len();
    if let Some(out) = outbound {
        if let Some(target) = shared.dest_addr(out.to.index()) {
            let (frame, kind) = match &piggyback {
                Some(pb) => {
                    let trailer = piggyback_trailer_len(pb) as u32;
                    shared.delta_bytes.add(u64::from(trailer));
                    (
                        encode_mux_piggyback_frame(out.to, &out.message, pb),
                        FrameKind::Piggybacked { trailer },
                    )
                }
                None => (
                    encode_mux_frame(out.to, &out.message),
                    FrameKind::Aggregation,
                ),
            };
            batch.push(frame, target, (index as u32, kind));
        }
    }
    for msg in dir_out.drain(..) {
        // Mux membership is id-routed; address destinations cannot be
        // framed (no vnode id to route by) and are dropped.
        let Destination::Node(to) = msg.to else {
            continue;
        };
        let Some(target) = shared.dest_addr(to.index()) else {
            continue;
        };
        let frame = encode_mux_directory_frame(to, &msg.payload);
        if matches!(msg.payload, DirectoryPayload::View { delta: true, .. }) {
            shared.delta_bytes.add(frame.len() as u64);
        }
        batch.push(frame, target, (index as u32, FrameKind::Membership));
    }
    let from = NodeId::new((shared.base + index) as u64);
    for out in query_out {
        let (to, frame) = match out {
            QueryOutbound::Aggregation { to, query, message } => {
                (to, encode_mux_query_frame(to, &query, &message))
            }
            QueryOutbound::Catalog { to, entries } => {
                (to, encode_mux_catalog_frame(to, from, &entries))
            }
        };
        let Some(target) = shared.dest_addr(to.index()) else {
            continue;
        };
        batch.push(frame, target, (index as u32, FrameKind::Query));
    }
    batch.len() - before
}

/// Transmits every queued frame, charging each sender's traffic cell on
/// success and its `send_errors` on kernel refusal.
fn flush_pending(shared: &Shared, pending: &mut [SendBatch<(u32, FrameKind)>]) {
    for (s, batch) in pending.iter_mut().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let syscalls = batch.flush(&shared.sockets[s], shared.io, |&(node, kind), len, ok| {
            let cell = &shared.traffic[node as usize];
            if !ok {
                cell.count_send_error();
                return;
            }
            match kind {
                FrameKind::Aggregation => cell.count_sent(false, len),
                FrameKind::Membership => cell.count_sent(true, len),
                FrameKind::Piggybacked { trailer } => {
                    cell.count_piggybacked_sent(len, trailer as usize)
                }
                FrameKind::Query => cell.count_query_sent(len),
            }
        });
        shared.send_calls.add(syscalls);
    }
}

/// Serves client query RPCs on the dedicated listener socket. Every node
/// holds the aggregate — any of them is a valid endpoint — so requests
/// are routed round-robin over the shard's vnodes and each response goes
/// straight back to the client's source address. Rejections surface both
/// in the response status and in the serving vnode's
/// [`TrafficCounts::rpc_rejects`] — never silently swallowed.
fn rpc_loop(shared: &Shared, socket: &UdpSocket) {
    let mut buf = [0u8; 64 * 1024];
    let mut next = 0usize;
    while !shared.stop.load(Ordering::Relaxed) {
        match socket.recv_from(&mut buf) {
            Ok((len, src)) => {
                let Ok(WirePayload::Rpc(request)) = decode_datagram(&buf[..len]) else {
                    continue; // not a client request: drop, stay alive
                };
                let index = next % shared.nodes.len();
                next = next.wrapping_add(1);
                let now = shared.now_ms();
                let response = shared.nodes[index]
                    .lock()
                    .unwrap()
                    .plane
                    .handle_rpc(&request, now);
                shared.rpc_requests.inc();
                if response.status.is_reject() {
                    shared.traffic[index].count_rpc_reject();
                    shared.rpc_rejects.inc();
                }
                // An install/remove moves the plane's gossip deadline;
                // a wake recomputes and re-parks it immediately.
                shared.work.push(Work::Wake(index as u32));
                let _ = socket.send_to(&encode_rpc_response(&response), src);
            }
            // Read timeout (or spurious wake): re-check the stop flag.
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::GossipDirectoryConfig;
    use epidemic_aggregation::InstanceSpec;

    fn node_config(gamma: u32, cycle_ms: u64) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(cycle_ms)
            .timeout(cycle_ms / 2)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    #[test]
    fn peer_table_splits_evenly_and_routes() {
        let addrs: Vec<SocketAddr> = (0..3)
            .map(|i| format!("127.0.0.1:{}", 9100 + i).parse().unwrap())
            .collect();
        let table = PeerTable::split(10, addrs.clone());
        assert_eq!(table.total(), 10);
        assert_eq!(table.shard_count(), 3);
        assert_eq!(table.shard_range(0), 0..4);
        assert_eq!(table.shard_range(1), 4..7);
        assert_eq!(table.shard_range(2), 7..10);
        assert_eq!(table.shard_of(0), Some(0));
        assert_eq!(table.shard_of(3), Some(0));
        assert_eq!(table.shard_of(4), Some(1));
        assert_eq!(table.shard_of(9), Some(2));
        assert_eq!(table.shard_of(10), None);
        assert_eq!(table.addr_of(8), Some(addrs[2]));
        assert_eq!(table.addr_of(99), None);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn peer_table_rejects_no_shards() {
        PeerTable::split(4, Vec::new());
    }

    #[test]
    fn peer_table_socket_sets_home_vnodes_across_readers() {
        // Shard 0 publishes two reader sockets, shard 1 publishes one:
        // frames for shard-0 vnodes alternate across its set by the same
        // `local % readers` rule the receiving shard homes with.
        let addr = |port: u16| -> SocketAddr { format!("127.0.0.1:{port}").parse().unwrap() };
        let table = PeerTable::split_sets(5, vec![vec![addr(9200), addr(9201)], vec![addr(9210)]]);
        assert_eq!(table.shard_range(0), 0..3);
        assert_eq!(table.shard_range(1), 3..5);
        assert_eq!(table.shard_addr(0), addr(9200));
        assert_eq!(table.shard_sockets(0), &[addr(9200), addr(9201)]);
        assert_eq!(table.addr_of(0), Some(addr(9200)));
        assert_eq!(table.addr_of(1), Some(addr(9201)));
        assert_eq!(table.addr_of(2), Some(addr(9200)));
        assert_eq!(table.addr_of(3), Some(addr(9210)));
        assert_eq!(table.addr_of(4), Some(addr(9210)));
        assert_eq!(table.addr_of(5), None);
    }

    #[test]
    fn loopback_split_readers_publishes_full_socket_sets() {
        let table = PeerTable::loopback_split_readers(8, 2, 3).unwrap();
        assert_eq!(table.shard_count(), 2);
        let mut all = Vec::new();
        for s in 0..2 {
            let set = table.shard_sockets(s);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], table.shard_addr(s));
            all.extend_from_slice(set);
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 6, "published sockets must be distinct");
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn peer_table_rejects_empty_socket_set() {
        PeerTable::split_sets(4, vec![vec!["127.0.0.1:9300".parse().unwrap()], vec![]]);
    }

    #[test]
    fn thread_budget_is_workers_plus_readers_plus_one() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(64, node_config(4, 40))
                .with_workers(3)
                .with_readers(1),
            |_| 0.0,
        )
        .unwrap();
        assert_eq!(cluster.len(), 64);
        assert_eq!(cluster.total_len(), 64);
        assert_eq!(cluster.reader_count(), 1);
        // readers = 1 keeps the original workers + 2 budget.
        assert_eq!(cluster.thread_count(), 3 + 2);
        assert_eq!(cluster.addrs(), vec![cluster.addr()]);
        cluster.shutdown();

        let wide = MuxCluster::spawn(
            MuxClusterConfig::new(64, node_config(4, 40))
                .with_workers(3)
                .with_readers(4),
            |_| 0.0,
        )
        .unwrap();
        assert_eq!(wide.reader_count(), 4);
        assert_eq!(wide.thread_count(), 3 + 4 + 1);
        let addrs = Cluster::addrs(&wide);
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], wide.addr());
        assert_eq!(
            addrs.iter().collect::<std::collections::HashSet<_>>().len(),
            4,
            "reader sockets must have distinct addresses"
        );
        wide.shutdown();
    }

    #[test]
    fn readers_clamp_to_local_node_count() {
        // One vnode cannot use four sockets: three would never receive.
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(1, node_config(2, 30))
                .with_workers(1)
                .with_readers(4),
            |_| 0.0,
        )
        .unwrap();
        assert_eq!(cluster.reader_count(), 1);
        cluster.shutdown();
    }

    #[test]
    fn multi_reader_cluster_converges_and_counts_syscalls() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(8, node_config(8, 25))
                .with_workers(2)
                .with_readers(2),
            |i| i as f64, // truth 3.5
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(900));
        let reports = cluster.take_all_reports();
        let counts = cluster.syscall_counts();
        let totals = cluster.total_datagram_counts();
        cluster.shutdown();
        let finals: Vec<f64> = reports
            .iter()
            .filter_map(|r| r.last())
            .map(|r| r.scalar(0).unwrap())
            .collect();
        assert!(finals.len() >= 6, "only {} nodes reported", finals.len());
        for est in finals {
            assert!((est - 3.5).abs() < 0.5, "estimate {est} (truth 3.5)");
        }
        assert!(counts.recv_calls > 0, "no recv syscalls counted");
        assert!(counts.send_calls > 0, "no send syscalls counted");
        assert!(
            counts.send_calls <= totals.sent() + totals.send_errors,
            "send syscalls ({}) exceed datagrams attempted ({})",
            counts.send_calls,
            totals.sent() + totals.send_errors,
        );
    }

    #[test]
    fn portable_backend_converges_like_batched() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(2, node_config(8, 25))
                .with_workers(1)
                .with_readers(1)
                .with_io(IoBackend::Portable),
            |i| (i as f64 + 1.0) * 10.0, // 10, 20: average 15
        )
        .unwrap();
        assert_eq!(cluster.io_backend(), IoBackend::Portable);
        std::thread::sleep(Duration::from_millis(900));
        let reports = cluster.take_all_reports();
        cluster.shutdown();
        let last = reports
            .iter()
            .flatten()
            .last()
            .and_then(|r| r.scalar(0))
            .expect("no epochs completed");
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
    }

    #[test]
    fn pair_converges_to_average() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(2, node_config(8, 25)).with_workers(2),
            |i| (i as f64 + 1.0) * 10.0, // 10, 20: average 15
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(900));
        let reports = cluster.take_all_reports();
        cluster.shutdown();
        let mut estimates = Vec::new();
        for node_reports in &reports {
            for r in node_reports {
                estimates.push(r.scalar(0).unwrap());
            }
        }
        assert!(!estimates.is_empty(), "no epochs completed");
        let last = *estimates.last().unwrap();
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
    }

    #[test]
    fn sharded_pair_converges_across_two_sockets() {
        // The smallest cross-socket cluster: vnode 0 on shard 0, vnode 1
        // on shard 1, every exchange crossing between the two sockets.
        let table = PeerTable::loopback_split(2, 2).unwrap();
        let config = node_config(8, 25);
        let shard0 = MuxCluster::spawn(
            MuxClusterConfig::sharded(table.clone(), 0, config.clone()).with_workers(1),
            |i| (i as f64 + 1.0) * 10.0,
        )
        .unwrap();
        let shard1 = MuxCluster::spawn(
            MuxClusterConfig::sharded(table, 1, config).with_workers(1),
            |i| (i as f64 + 1.0) * 10.0,
        )
        .unwrap();
        assert_eq!(shard0.len(), 1);
        assert_eq!(shard1.len(), 1);
        assert_eq!(shard0.total_len(), 2);
        assert_ne!(shard0.addr(), shard1.addr());
        std::thread::sleep(Duration::from_millis(900));
        let mut estimates = Vec::new();
        for shard in [&shard0, &shard1] {
            for r in shard.take_reports(0) {
                estimates.push(r.scalar(0).unwrap());
            }
        }
        let counts = shard0.datagram_counts(0);
        shard0.shutdown();
        shard1.shutdown();
        assert!(!estimates.is_empty(), "no epochs completed");
        let last = *estimates.last().unwrap();
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
        assert!(counts.aggregation_sent > 0 && counts.aggregation_received > 0);
    }

    #[test]
    fn cross_shard_sends_fan_across_the_remote_socket_set() {
        // Two shards of two vnodes each, two reader sockets per shard.
        // Every shard-0 → shard-1 frame must land on the destination
        // vnode's home socket, so BOTH shard-1 sockets see remote
        // traffic — the old behavior piled everything onto the first.
        let table = PeerTable::loopback_split_readers(4, 2, 2).unwrap();
        let config = node_config(8, 25);
        let spawn = |shard: usize| {
            MuxCluster::spawn(
                MuxClusterConfig::sharded(table.clone(), shard, config.clone())
                    .with_workers(1)
                    .with_readers(2),
                |i| i as f64,
            )
            .unwrap()
        };
        let shard0 = spawn(0);
        let shard1 = spawn(1);
        assert_eq!(shard0.reader_count(), 2);
        assert_eq!(shard1.reader_count(), 2);
        assert_eq!(Cluster::addrs(&shard1), table.shard_sockets(1));
        std::thread::sleep(Duration::from_millis(900));
        let recvs = shard1.socket_recv_counts();
        shard0.shutdown();
        shard1.shutdown();
        assert_eq!(recvs.len(), 2);
        for (i, socket) in recvs.iter().enumerate() {
            assert!(
                socket.remote_datagrams > 0,
                "socket {i} of shard 1 never saw cross-shard traffic: {recvs:?}"
            );
            assert!(socket.datagrams >= socket.remote_datagrams);
        }
    }

    #[test]
    fn gossip_directory_cluster_converges_without_static_table() {
        // No static peer table anywhere: vnode 0 introduces, everyone
        // else bootstraps over the wire and gossips views as mux frames.
        let spec = DirectorySpec::Gossip(GossipDirectoryConfig::new(8, 20).with_introducer_node(0));
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(6, node_config(8, 30))
                .with_workers(2)
                .with_directory(spec),
            |i| i as f64, // truth 2.5
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(1_500));
        let reports = cluster.take_all_reports();
        let totals = cluster.total_datagram_counts();
        cluster.shutdown();
        let mut finals = Vec::new();
        for node_reports in &reports {
            if let Some(r) = node_reports.last() {
                if r.epoch >= 1 {
                    finals.push(r.scalar(0).unwrap());
                }
            }
        }
        assert!(finals.len() >= 4, "only {} nodes reported", finals.len());
        for est in finals {
            assert!((est - 2.5).abs() < 0.75, "estimate {est} (truth 2.5)");
        }
        assert!(totals.membership_sent > 0, "no membership traffic");
        assert!(totals.membership_received > 0);
    }

    #[test]
    fn single_node_completes_epochs_alone() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(1, node_config(2, 30)).with_workers(1),
            |_| 7.0,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let reports = cluster.take_reports(0);
        cluster.shutdown();
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.scalar(0), Some(7.0));
        }
    }

    #[test]
    fn datagram_counters_move_per_node() {
        let mut cluster = MuxCluster::spawn(
            MuxClusterConfig::new(4, node_config(30, 20)).with_workers(2),
            |i| i as f64,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(400));
        // Quiesce before snapshotting: the per-node/cluster-wide equality
        // below is only sound once no worker is mid-send.
        cluster.stop_and_join();
        let totals = cluster.total_datagram_counts();
        let per_node: Vec<TrafficCounts> = (0..cluster.len())
            .map(|i| cluster.datagram_counts(i))
            .collect();
        drop(cluster);
        assert!(totals.sent() > 0, "cluster never sent");
        assert!(totals.received() > 0, "cluster never received");
        assert_eq!(
            per_node.iter().map(TrafficCounts::sent).sum::<u64>(),
            totals.sent(),
            "per-node counts disagree with the cluster-wide sum"
        );
        assert!(
            per_node.iter().filter(|c| c.sent() > 0).count() >= 3,
            "sends not attributed per node"
        );
    }

    #[test]
    fn set_local_value_applies_next_epoch() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(1, node_config(2, 20)).with_workers(1),
            |_| 1.0,
        )
        .unwrap();
        cluster.set_local_value(0, 100.0);
        std::thread::sleep(Duration::from_millis(400));
        let reports = cluster.take_reports(0);
        cluster.shutdown();
        let last = reports.last().and_then(|r| r.scalar(0)).unwrap();
        assert_eq!(last, 100.0, "local value update never took effect");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(8, node_config(4, 30)).with_workers(2),
            |_| 0.0,
        )
        .unwrap();
        drop(cluster); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        MuxClusterConfig::new(0, node_config(2, 20));
    }

    #[test]
    fn telemetry_registry_observes_running_cluster() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(4, node_config(4, 25))
                .with_workers(2)
                .with_trace(64)
                .with_metrics_addr("127.0.0.1:0".parse().unwrap()),
            |i| i as f64,
        )
        .unwrap();
        let addr = cluster.metrics_addr().expect("metrics endpoint bound");
        std::thread::sleep(Duration::from_millis(700));
        // Draining reports feeds the convergence gauges.
        let _ = cluster.take_all_reports();
        let registry = cluster.registry();
        assert!(registry.is_enabled());
        assert!(registry.counter_value("agg.exchanges") > 0);
        assert!(registry.counter_value("io.recv_syscalls") > 0);
        assert!(registry.counter_value("io.send_syscalls") > 0);
        let theory = registry.gauge_value("epoch.rho_theory").unwrap();
        assert!((theory - 0.3033).abs() < 1e-3);
        // Scrape over real HTTP and check the exposition mentions the
        // counters by their sanitized names.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        use std::io::{Read, Write};
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.contains("agg_exchanges"), "scrape missing counter");
        assert!(body.contains("epoch_rho_theory"), "scrape missing gauge");
        // Tracing was on: at least one vnode logged protocol events.
        let events: usize = (0..cluster.len())
            .map(|i| cluster.take_trace(i).len())
            .sum();
        assert!(events > 0, "no trace events recorded");
        cluster.shutdown();
    }

    #[test]
    fn without_telemetry_stubs_every_series() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(2, node_config(4, 25))
                .with_workers(1)
                .without_telemetry(),
            |i| i as f64,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let reports = cluster.take_all_reports();
        assert!(!cluster.registry().is_enabled());
        assert_eq!(cluster.syscall_counts(), SyscallCounts::default());
        assert_eq!(cluster.registry().counter_value("agg.exchanges"), 0);
        cluster.shutdown();
        // The protocol itself must be unaffected by the stub.
        assert!(reports.iter().any(|r| !r.is_empty()), "no epochs completed");
    }

    #[test]
    fn gossip_cluster_moves_delta_bytes_and_view_health() {
        let spec = DirectorySpec::Gossip(GossipDirectoryConfig::new(8, 20).with_introducer_node(0));
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(6, node_config(8, 30))
                .with_workers(2)
                .with_directory(spec),
            |i| i as f64,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(1_200));
        let registry = cluster.registry();
        assert!(
            registry.counter_value("membership.delta_bytes") > 0,
            "no delta/piggyback bytes counted"
        );
        assert!(
            registry
                .gauge_value("membership.view_mean_size")
                .unwrap_or(0.0)
                > 0.0,
            "view health never sampled"
        );
        cluster.shutdown();
    }

    #[test]
    fn misconfigured_gossip_introducers_fail_spawn() {
        // Address-named introducer: unframeable in the id-routed mux.
        let by_addr = DirectorySpec::Gossip(
            GossipDirectoryConfig::new(8, 20)
                .with_introducer_addr("127.0.0.1:9999".parse().unwrap()),
        );
        let err = MuxCluster::spawn(
            MuxClusterConfig::new(4, node_config(4, 30)).with_directory(by_addr),
            |_| 0.0,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        // Introducer id outside the cluster.
        let out_of_range =
            DirectorySpec::Gossip(GossipDirectoryConfig::new(8, 20).with_introducer_node(99));
        let err = MuxCluster::spawn(
            MuxClusterConfig::new(4, node_config(4, 30)).with_directory(out_of_range),
            |_| 0.0,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
