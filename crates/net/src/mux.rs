//! Multiplexed UDP cluster runtime: thousands of nodes, a handful of
//! threads.
//!
//! [`crate::runtime`] realizes the paper's Figure 1 literally — one OS
//! thread and one socket per node — which caps real-network experiments
//! at a few hundred nodes per host. This module hosts N virtual nodes
//! inside one process behind **one** socket and `workers + 2` OS threads:
//!
//! * a *reader* thread blocks on the shared socket and routes each
//!   datagram by the virtual-node id in its mux frame
//!   ([`crate::codec::encode_mux_frame`]);
//! * a *timer* thread drives a hashed [`TimerWheel`] over every node's
//!   self-reported deadline ([`GossipNode::next_deadline`]): cycle
//!   boundaries, pending-exchange timeouts, joiner activations;
//! * `workers` worker threads execute the per-node state machines. No
//!   thread ever blocks on an exchange: a node that initiated one simply
//!   parks a timeout deadline in the wheel and yields its worker — the
//!   pending exchange is a timer-guarded continuation inside the sans-io
//!   [`GossipNode`].
//!
//! Every datagram still crosses the kernel's UDP stack (loopback or
//! otherwise), so the runtime exercises the real codec, real sockets, and
//! real timing — only the thread-per-node cost model is gone. A node's
//! protocol behavior is identical to [`crate::runtime::UdpNode`]'s by
//! construction: same state machine, same seeds, and peer randomness
//! drawn lazily per *initiated exchange* ([`GossipNode::poll_with`]), so
//! a same-seed mux and thread-per-node cluster select the same peer
//! sequence per node.
//!
//! # Examples
//!
//! ```no_run
//! use epidemic_aggregation::{InstanceSpec, NodeConfig};
//! use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
//!
//! let node_config = NodeConfig::builder()
//!     .gamma(10)
//!     .cycle_length(50)
//!     .timeout(20)
//!     .instance(InstanceSpec::AVERAGE)
//!     .build()?;
//! // 1024 gossip nodes, one socket, 4 + 2 OS threads.
//! let cluster = MuxCluster::spawn(
//!     MuxClusterConfig::new(1024, node_config).with_workers(4),
//!     |i| i as f64,
//! )?;
//! std::thread::sleep(std::time::Duration::from_millis(1_200));
//! let reports = cluster.take_all_reports();
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::codec::{decode_mux_frame, encode_mux_frame};
use crate::runtime::uniform_peer;
use crate::timer::TimerWheel;
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, NodeConfig};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a multiplexed cluster: the node count and protocol
/// parameters (the mux twin of [`crate::runtime::ClusterConfig`]).
#[derive(Debug, Clone)]
pub struct MuxClusterConfig {
    n: usize,
    node_config: NodeConfig,
    seed: u64,
    workers: usize,
}

impl MuxClusterConfig {
    /// Describes a cluster of `n` virtual nodes sharing one loopback
    /// socket. Worker count defaults to `min(4, available_parallelism)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, node_config: NodeConfig) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let default_workers = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(2)
            .clamp(1, 4);
        MuxClusterConfig {
            n,
            node_config,
            seed: 0xC0FFEE,
            workers: default_workers,
        }
    }

    /// Overrides the randomness seed shared by the cluster (the same
    /// meaning as [`crate::runtime::ClusterConfig::with_seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }

    /// Number of virtual nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the cluster would be empty (never: `new` rejects
    /// `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// One unit of protocol work, executed by whichever worker claims it.
#[derive(Debug)]
enum Work {
    /// A timer deadline fired for the node.
    Wake(u32),
    /// A datagram arrived for the node.
    Deliver(u32, epidemic_aggregation::Message),
}

/// FIFO work queue the reader and timer threads feed and the workers
/// drain.
#[derive(Debug, Default)]
struct WorkQueue {
    items: Mutex<VecDeque<Work>>,
    available: Condvar,
}

impl WorkQueue {
    fn push(&self, work: Work) {
        self.items.lock().unwrap().push_back(work);
        self.available.notify_one();
    }

    /// Pops the next item, blocking until one arrives or `stop` is set.
    fn pop(&self, stop: &AtomicBool) -> Option<Work> {
        let mut items = self.items.lock().unwrap();
        loop {
            if let Some(work) = items.pop_front() {
                return Some(work);
            }
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, _timeout) = self
                .available
                .wait_timeout(items, Duration::from_millis(50))
                .unwrap();
            items = guard;
        }
    }
}

/// A virtual node: the sans-io state machine plus its peer-selection
/// stream and the earliest timer deadline already parked for it.
#[derive(Debug)]
struct VNode {
    gossip: GossipNode,
    peer_rng: Xoshiro256,
    /// Earliest deadline with a live wheel entry for this node, or
    /// `u64::MAX` when none is known — lets workers skip redundant
    /// schedule requests (stale extra wake-ups are harmless but cost
    /// queue traffic).
    next_wake: u64,
}

#[derive(Debug)]
struct Shared {
    socket: UdpSocket,
    addr: SocketAddr,
    stop: AtomicBool,
    nodes: Vec<Mutex<VNode>>,
    work: WorkQueue,
    /// Schedule requests `(deadline_ms, node)` bound for the timer
    /// thread's wheel.
    timer_inbox: Mutex<Vec<(u64, u32)>>,
    datagrams_in: AtomicUsize,
    datagrams_out: AtomicUsize,
    start: Instant,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn schedule(&self, deadline: u64, node: u32) {
        self.timer_inbox.lock().unwrap().push((deadline, node));
    }
}

/// Handle to a running multiplexed cluster.
///
/// Dropping the handle shuts the cluster down (all threads exit within
/// one poll interval), mirroring [`crate::runtime::UdpNode`].
#[derive(Debug)]
pub struct MuxCluster {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl MuxCluster {
    /// Binds the shared socket, builds the `n` virtual nodes with local
    /// values `values(i)`, and starts the reader, timer, and worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, timeout setup).
    pub fn spawn(
        config: MuxClusterConfig,
        values: impl Fn(usize) -> f64,
    ) -> io::Result<MuxCluster> {
        let MuxClusterConfig {
            n,
            node_config,
            seed,
            workers,
        } = config;
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let addr = socket.local_addr()?;
        let nodes: Vec<Mutex<VNode>> = (0..n)
            .map(|i| {
                let id = NodeId::new(i as u64);
                Mutex::new(VNode {
                    gossip: GossipNode::founder(id, node_config.clone(), values(i), seed),
                    peer_rng: Xoshiro256::stream(seed ^ 0x5EED, id.as_u64()),
                    next_wake: u64::MAX,
                })
            })
            .collect();
        let shared = Arc::new(Shared {
            socket,
            addr,
            stop: AtomicBool::new(false),
            nodes,
            work: WorkQueue::default(),
            timer_inbox: Mutex::new(Vec::new()),
            datagrams_in: AtomicUsize::new(0),
            datagrams_out: AtomicUsize::new(0),
            start: Instant::now(),
        });
        // Prime every node with an initial wake so its first deadline is
        // computed and parked.
        for i in 0..n {
            shared.work.push(Work::Wake(i as u32));
        }

        let mut threads = Vec::with_capacity(workers + 2);
        let cycle = node_config.cycle_length();
        let spawned = (|| -> io::Result<()> {
            let reader_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mux-reader".into())
                    .spawn(move || reader_loop(&reader_shared))?,
            );
            let timer_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mux-timer".into())
                    .spawn(move || timer_loop(&timer_shared, cycle))?,
            );
            for k in 0..workers {
                let worker_shared = Arc::clone(&shared);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("mux-worker-{k}"))
                        .spawn(move || worker_loop(&worker_shared))?,
                );
            }
            Ok(())
        })();
        if let Err(e) = spawned {
            // A later spawn failed (e.g. thread exhaustion): stop and
            // join whatever already started instead of leaking detached
            // threads that would pin the socket and node state forever.
            shared.stop.store(true, Ordering::Relaxed);
            shared.work.available.notify_all();
            for handle in threads {
                let _ = handle.join();
            }
            return Err(e);
        }
        Ok(MuxCluster { shared, threads })
    }

    /// The shared socket address every virtual node receives on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Number of virtual nodes hosted.
    pub fn len(&self) -> usize {
        self.shared.nodes.len()
    }

    /// Returns `true` if the cluster hosts no nodes (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.shared.nodes.is_empty()
    }

    /// OS threads the cluster runs on: `workers + 2` (reader + timer).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Drains the epoch reports node `index` produced since the last
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take_reports(&self, index: usize) -> Vec<EpochReport> {
        self.shared.nodes[index]
            .lock()
            .unwrap()
            .gossip
            .take_reports()
    }

    /// Drains every node's epoch reports, indexed by node.
    pub fn take_all_reports(&self) -> Vec<Vec<EpochReport>> {
        (0..self.len()).map(|i| self.take_reports(i)).collect()
    }

    /// Updates node `index`'s local value (takes effect at its next
    /// epoch, exactly like [`crate::runtime::UdpNode::set_local_value`]).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_local_value(&self, index: usize, value: f64) {
        self.shared.nodes[index]
            .lock()
            .unwrap()
            .gossip
            .set_local_value(value);
    }

    /// Datagrams received and sent so far, cluster-wide.
    pub fn datagram_counts(&self) -> (usize, usize) {
        (
            self.shared.datagrams_in.load(Ordering::Relaxed),
            self.shared.datagrams_out.load(Ordering::Relaxed),
        )
    }

    /// Stops all threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for MuxCluster {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Blocks on the shared socket and routes datagrams to state machines.
fn reader_loop(shared: &Shared) {
    let mut buf = [0u8; 64 * 1024];
    while !shared.stop.load(Ordering::Relaxed) {
        match shared.socket.recv_from(&mut buf) {
            Ok((len, _src)) => {
                shared.datagrams_in.fetch_add(1, Ordering::Relaxed);
                let Ok((to, msg)) = decode_mux_frame(&buf[..len]) else {
                    continue; // corrupt datagram: drop, stay alive
                };
                let dst = to.index();
                if dst < shared.nodes.len() {
                    shared.work.push(Work::Deliver(dst as u32, msg));
                }
            }
            // Read timeout (or spurious wake): re-check the stop flag.
            Err(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => continue,
        }
    }
}

/// Owns the timer wheel: drains schedule requests, fires due deadlines as
/// [`Work::Wake`] items.
fn timer_loop(shared: &Shared, cycle_ms: u64) {
    let mut wheel = TimerWheel::for_cycle(cycle_ms.max(1));
    let mut inbox: Vec<(u64, u32)> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        std::mem::swap(&mut inbox, &mut shared.timer_inbox.lock().unwrap());
        for (deadline, node) in inbox.drain(..) {
            wheel.schedule(deadline, node);
        }
        wheel.advance(shared.now_ms(), |node| {
            shared.work.push(Work::Wake(node));
        });
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Executes per-node protocol steps until shutdown.
fn worker_loop(shared: &Shared) {
    let n = shared.nodes.len();
    while let Some(work) = shared.work.pop(&shared.stop) {
        let (index, is_wake) = match &work {
            Work::Wake(i) => (*i as usize, true),
            Work::Deliver(i, _) => (*i as usize, false),
        };
        let mut vnode = shared.nodes[index].lock().unwrap();
        let now = shared.now_ms();
        let outbound = match work {
            Work::Wake(_) => {
                // This wake consumed whatever wheel entry was parked.
                vnode.next_wake = u64::MAX;
                let VNode {
                    gossip, peer_rng, ..
                } = &mut *vnode;
                gossip.poll_with(now, || uniform_peer(peer_rng, n, index))
            }
            Work::Deliver(_, msg) => vnode.gossip.handle(&msg, now),
        };
        // Park the node's next deadline unless an earlier (or equal)
        // wheel entry is already live. After a wake we always re-park.
        let deadline = vnode.gossip.next_deadline();
        if is_wake || deadline < vnode.next_wake {
            vnode.next_wake = deadline;
            shared.schedule(deadline, index as u32);
        }
        drop(vnode);
        if let Some(out) = outbound {
            let frame = encode_mux_frame(out.to, &out.message);
            if shared.socket.send_to(&frame, shared.addr).is_ok() {
                shared.datagrams_out.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::InstanceSpec;

    fn node_config(gamma: u32, cycle_ms: u64) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(cycle_ms)
            .timeout(cycle_ms / 2)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    #[test]
    fn thread_budget_is_workers_plus_two() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(64, node_config(4, 40)).with_workers(3),
            |_| 0.0,
        )
        .unwrap();
        assert_eq!(cluster.len(), 64);
        assert_eq!(cluster.thread_count(), 3 + 2);
        cluster.shutdown();
    }

    #[test]
    fn pair_converges_to_average() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(2, node_config(8, 25)).with_workers(2),
            |i| (i as f64 + 1.0) * 10.0, // 10, 20: average 15
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(900));
        let reports = cluster.take_all_reports();
        cluster.shutdown();
        let mut estimates = Vec::new();
        for node_reports in &reports {
            for r in node_reports {
                estimates.push(r.scalar(0).unwrap());
            }
        }
        assert!(!estimates.is_empty(), "no epochs completed");
        let last = *estimates.last().unwrap();
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
    }

    #[test]
    fn single_node_completes_epochs_alone() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(1, node_config(2, 30)).with_workers(1),
            |_| 7.0,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let reports = cluster.take_reports(0);
        cluster.shutdown();
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.scalar(0), Some(7.0));
        }
    }

    #[test]
    fn datagram_counters_move() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(4, node_config(30, 20)).with_workers(2),
            |i| i as f64,
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(400));
        let (rx, tx) = cluster.datagram_counts();
        cluster.shutdown();
        assert!(tx > 0, "cluster never sent");
        assert!(rx > 0, "cluster never received");
    }

    #[test]
    fn set_local_value_applies_next_epoch() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(1, node_config(2, 20)).with_workers(1),
            |_| 1.0,
        )
        .unwrap();
        cluster.set_local_value(0, 100.0);
        std::thread::sleep(Duration::from_millis(400));
        let reports = cluster.take_reports(0);
        cluster.shutdown();
        let last = reports.last().and_then(|r| r.scalar(0)).unwrap();
        assert_eq!(last, 100.0, "local value update never took effect");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cluster = MuxCluster::spawn(
            MuxClusterConfig::new(8, node_config(4, 30)).with_workers(2),
            |_| 0.0,
        )
        .unwrap();
        drop(cluster); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_rejected() {
        MuxClusterConfig::new(0, node_config(2, 20));
    }
}
