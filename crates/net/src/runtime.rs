//! UDP node runtime.
//!
//! One OS thread per node realizes the paper's Figure 1: the *active*
//! behavior initiates one exchange per cycle with a random peer from the
//! peer table, the *passive* behavior answers incoming datagrams. Both run
//! in a single event loop over a non-blocking socket, driving the sans-io
//! [`GossipNode`] with wall-clock milliseconds.
//!
//! Membership is provided by a static peer table ([`ClusterConfig`]), which
//! stands in for the out-of-band discovery service the paper assumes; the
//! NEWSCAST crate provides the dynamic alternative in simulations.

use crate::codec::{decode_message, encode_message};
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, NodeConfig};
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared description of a cluster: the peer table mapping dense node ids
/// to socket addresses, plus the common protocol configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    peers: Vec<SocketAddr>,
    node_config: NodeConfig,
    seed: u64,
}

impl ClusterConfig {
    /// Creates a cluster of `n` loopback nodes on ephemeral ports by
    /// binding (and immediately releasing) `n` sockets.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn loopback(n: usize, node_config: NodeConfig) -> io::Result<Self> {
        let mut peers = Vec::with_capacity(n);
        let mut held = Vec::with_capacity(n);
        for _ in 0..n {
            let sock = UdpSocket::bind(("127.0.0.1", 0))?;
            peers.push(sock.local_addr()?);
            held.push(sock); // hold all sockets until every port is chosen
        }
        drop(held);
        Ok(ClusterConfig {
            peers,
            node_config,
            seed: 0xC0FFEE,
        })
    }

    /// Creates a cluster from an explicit peer table.
    pub fn from_peers(peers: Vec<SocketAddr>, node_config: NodeConfig) -> Self {
        ClusterConfig {
            peers,
            node_config,
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the randomness seed shared by the cluster.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The peer table.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Per-node spawn configuration for node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize, local_value: f64) -> NodeHandleConfig {
        assert!(index < self.peers.len(), "node index out of range");
        NodeHandleConfig {
            index,
            local_value,
            cluster: self.clone(),
        }
    }
}

/// Everything needed to spawn one node of a cluster.
#[derive(Debug, Clone)]
pub struct NodeHandleConfig {
    index: usize,
    local_value: f64,
    cluster: ClusterConfig,
}

/// Handle to a running UDP gossip node.
///
/// Dropping the handle shuts the node down (the background thread exits
/// within one poll interval).
#[derive(Debug)]
pub struct UdpNode {
    addr: SocketAddr,
    id: NodeId,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    stop: AtomicBool,
    reports: Mutex<Vec<EpochReport>>,
    local_value: Mutex<Option<f64>>,
    datagrams_in: std::sync::atomic::AtomicUsize,
    datagrams_out: std::sync::atomic::AtomicUsize,
}

impl UdpNode {
    /// Binds the node's socket and spawns its gossip thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, non-blocking setup).
    pub fn spawn(config: NodeHandleConfig) -> io::Result<UdpNode> {
        let NodeHandleConfig {
            index,
            local_value,
            cluster,
        } = config;
        let addr = cluster.peers[index];
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let id = NodeId::new(index as u64);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            reports: Mutex::new(Vec::new()),
            local_value: Mutex::new(None),
            datagrams_in: std::sync::atomic::AtomicUsize::new(0),
            datagrams_out: std::sync::atomic::AtomicUsize::new(0),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(format!("gossip-{index}"))
            .spawn(move || {
                run_loop(socket, id, local_value, cluster, thread_shared);
            })?;
        Ok(UdpNode {
            addr,
            id,
            shared,
            thread: Some(thread),
        })
    }

    /// The node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's identifier (its index in the peer table).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Drains the epoch reports produced since the last call.
    pub fn take_reports(&self) -> Vec<EpochReport> {
        std::mem::take(&mut *self.shared.reports.lock().unwrap())
    }

    /// Updates the node's local value (takes effect at the next epoch).
    pub fn set_local_value(&self, value: f64) {
        *self.shared.local_value.lock().unwrap() = Some(value);
    }

    /// Datagrams received and sent so far.
    pub fn datagram_counts(&self) -> (usize, usize) {
        (
            self.shared.datagrams_in.load(Ordering::Relaxed),
            self.shared.datagrams_out.load(Ordering::Relaxed),
        )
    }

    /// Stops the gossip thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Draws a uniformly random peer among `n` nodes, excluding `me`.
/// Returns `None` when the node is alone.
///
/// Shared by the thread-per-node and multiplexed runtimes: combined with
/// lazy selection ([`GossipNode::poll_with`]), a node's peer sequence is a
/// deterministic function of `(seed, id, initiated-exchange count)` — the
/// property the mux-vs-threads parity tests rely on.
pub(crate) fn uniform_peer(rng: &mut Xoshiro256, n: usize, me: usize) -> Option<NodeId> {
    if n <= 1 {
        return None;
    }
    let raw = rng.index(n - 1);
    let p = if raw >= me { raw + 1 } else { raw };
    Some(NodeId::new(p as u64))
}

fn run_loop(
    socket: UdpSocket,
    id: NodeId,
    local_value: f64,
    cluster: ClusterConfig,
    shared: Arc<Shared>,
) {
    let mut node = GossipNode::founder(id, cluster.node_config.clone(), local_value, cluster.seed);
    let mut rng = Xoshiro256::stream(cluster.seed ^ 0x5EED, id.as_u64());
    let start = Instant::now();
    let mut buf = [0u8; 64 * 1024];
    let n_peers = cluster.peers.len();
    while !shared.stop.load(Ordering::Relaxed) {
        let now_ms = start.elapsed().as_millis() as u64;

        // Application-side local value updates.
        if let Some(v) = shared.local_value.lock().unwrap().take() {
            node.set_local_value(v);
        }

        // Active behavior: tick the protocol; initiate when a cycle
        // fires. The peer is drawn lazily — only for exchanges actually
        // initiated — so the draw sequence matches the mux runtime's.
        if let Some(out) = node.poll_with(now_ms, || uniform_peer(&mut rng, n_peers, id.index())) {
            let target = cluster.peers[out.to.index()];
            if socket
                .send_to(&encode_message(&out.message), target)
                .is_ok()
            {
                shared.datagrams_out.fetch_add(1, Ordering::Relaxed);
            }
        }

        // Passive behavior: drain the socket.
        loop {
            match socket.recv_from(&mut buf) {
                Ok((len, _src)) => {
                    shared.datagrams_in.fetch_add(1, Ordering::Relaxed);
                    let Ok(msg) = decode_message(&buf[..len]) else {
                        continue; // corrupt datagram: drop, stay alive
                    };
                    let now_ms = start.elapsed().as_millis() as u64;
                    if let Some(response) = node.handle(&msg, now_ms) {
                        let target = cluster.peers[response.to.index()];
                        if socket
                            .send_to(&encode_message(&response.message), target)
                            .is_ok()
                        {
                            shared.datagrams_out.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Publish finished epochs.
        let reports = node.take_reports();
        if !reports.is_empty() {
            shared.reports.lock().unwrap().extend(reports);
        }

        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::InstanceSpec;

    fn node_config(gamma: u32, cycle_ms: u64) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(cycle_ms)
            .timeout(cycle_ms / 2)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    #[test]
    fn loopback_cluster_ports_are_distinct() {
        let cluster = ClusterConfig::loopback(5, node_config(10, 50)).unwrap();
        let mut ports: Vec<u16> = cluster.peers().iter().map(|a| a.port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_index_validated() {
        let cluster = ClusterConfig::loopback(2, node_config(10, 50)).unwrap();
        cluster.node(5, 0.0);
    }

    #[test]
    fn single_node_runs_and_stops() {
        let cluster = ClusterConfig::loopback(1, node_config(2, 30)).unwrap();
        let node = UdpNode::spawn(cluster.node(0, 7.0)).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let reports = node.take_reports();
        node.shutdown();
        // Alone in the cluster it still completes epochs (no exchanges).
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.scalar(0), Some(7.0));
        }
    }

    #[test]
    fn pair_converges_to_average() {
        let cluster = ClusterConfig::loopback(2, node_config(8, 25)).unwrap();
        let a = UdpNode::spawn(cluster.node(0, 10.0)).unwrap();
        let b = UdpNode::spawn(cluster.node(1, 20.0)).unwrap();
        std::thread::sleep(Duration::from_millis(900));
        let mut estimates = Vec::new();
        for node in [&a, &b] {
            for r in node.take_reports() {
                estimates.push(r.scalar(0).unwrap());
            }
        }
        a.shutdown();
        b.shutdown();
        assert!(!estimates.is_empty(), "no epochs completed");
        // Later epochs must be at the true average.
        let last = *estimates.last().unwrap();
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
    }

    #[test]
    fn datagram_counters_move() {
        let cluster = ClusterConfig::loopback(2, node_config(30, 20)).unwrap();
        let a = UdpNode::spawn(cluster.node(0, 1.0)).unwrap();
        let b = UdpNode::spawn(cluster.node(1, 3.0)).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        let (in_a, out_a) = a.datagram_counts();
        a.shutdown();
        b.shutdown();
        assert!(out_a > 0, "node never sent");
        assert!(in_a > 0, "node never received");
    }

    #[test]
    fn set_local_value_applies_next_epoch() {
        let cluster = ClusterConfig::loopback(1, node_config(2, 20)).unwrap();
        let node = UdpNode::spawn(cluster.node(0, 1.0)).unwrap();
        node.set_local_value(100.0);
        std::thread::sleep(Duration::from_millis(400));
        let reports = node.take_reports();
        node.shutdown();
        let last = reports.last().and_then(|r| r.scalar(0)).unwrap();
        assert_eq!(last, 100.0, "local value update never took effect");
    }
}
