//! Thread-per-node UDP runtime.
//!
//! One OS thread per node realizes the paper's Figure 1: the *active*
//! behavior initiates one exchange per cycle with a random peer from its
//! [`PeerDirectory`], the *passive* behavior answers incoming datagrams.
//! Both run in a single event loop over a non-blocking socket, driving the
//! sans-io [`GossipNode`] with wall-clock milliseconds.
//!
//! Membership is pluggable (the `GETNEIGHBOR()` seam of
//! [`crate::directory`]): a [`StaticDirectory`] over the cluster's address
//! table by default, or a NEWSCAST [`GossipDirectory`] whose view gossip
//! and join/introduce bootstrap ride the same socket as the aggregation
//! traffic — the node then knows nothing but its introducers at start-up
//! and learns peer addresses from the wire.
//!
//! [`ThreadCluster`] wraps the per-node handles behind the
//! [`Cluster`](crate::cluster::Cluster) operator seam shared with the
//! multiplexed runtime ([`crate::mux`]).

use crate::cluster::{Cluster, TrafficCell, TrafficCounts};
use crate::codec::{
    decode_datagram, encode_catalog_message, encode_directory_message, encode_message,
    encode_piggyback_message, encode_query_message, encode_rpc_response, piggyback_trailer_len,
    WirePayload,
};
use crate::directory::{
    Destination, DirectoryMessage, DirectorySpec, GossipDirectory, GossipDirectoryConfig,
    Introducer, PeerDirectory, StaticDirectory,
};
use epidemic_aggregation::node::GossipNode;
use epidemic_aggregation::{EpochReport, Message, NodeConfig};
use epidemic_common::NodeId;
use epidemic_query::{
    QueryDescriptor, QueryError, QueryEstimate, QueryOutbound, QueryPlane, QueryPlaneConfig,
};
use epidemic_telemetry::{Registry, TraceEvent, ViewHealth};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared description of a cluster: the address table mapping dense node
/// ids to socket addresses, the common protocol configuration, and the
/// membership directory every node builds.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    peers: Arc<Vec<SocketAddr>>,
    node_config: NodeConfig,
    seed: u64,
    directory: DirectorySpec,
    trace_capacity: usize,
    query: QueryPlaneConfig,
}

impl ClusterConfig {
    /// Creates a cluster of `n` loopback nodes on ephemeral ports by
    /// binding (and immediately releasing) `n` sockets.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn loopback(n: usize, node_config: NodeConfig) -> io::Result<Self> {
        Ok(Self::from_peers(
            crate::cluster::reserve_loopback_addrs(n)?,
            node_config,
        ))
    }

    /// Creates a cluster from an explicit address table.
    pub fn from_peers(peers: Vec<SocketAddr>, node_config: NodeConfig) -> Self {
        ClusterConfig {
            peers: Arc::new(peers),
            node_config,
            seed: 0xC0FFEE,
            directory: DirectorySpec::Static,
            trace_capacity: 0,
            query: QueryPlaneConfig::default(),
        }
    }

    /// Overrides the query-plane parameters every node runs (default:
    /// [`QueryPlaneConfig::default`]).
    pub fn with_query_config(mut self, query: QueryPlaneConfig) -> Self {
        self.query = query;
        self
    }

    /// Overrides the randomness seed shared by the cluster.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables protocol event tracing: every node keeps a bounded ring of
    /// `capacity` structured events per plane (exchanges, timeouts, epoch
    /// transitions, view merges…), drained via [`UdpNode::take_trace`].
    /// Capacity 0 (the default) disables tracing entirely.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Selects the membership directory every node runs (default:
    /// [`DirectorySpec::Static`] over the address table).
    ///
    /// With [`DirectorySpec::Gossip`], the address table is used only as
    /// the *bind plan* (node `i` binds `peers[i]`) and to resolve
    /// [`Introducer::Node`] entries to addresses; peers are otherwise
    /// discovered exclusively over the wire.
    pub fn with_directory(mut self, directory: DirectorySpec) -> Self {
        self.directory = directory;
        self
    }

    /// The address table.
    pub fn peers(&self) -> &[SocketAddr] {
        &self.peers
    }

    /// Per-node spawn configuration for node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize, local_value: f64) -> NodeHandleConfig {
        assert!(index < self.peers.len(), "node index out of range");
        NodeHandleConfig {
            index,
            local_value,
            cluster: self.clone(),
        }
    }

    /// Builds node `index`'s directory per the configured spec.
    ///
    /// # Errors
    ///
    /// Rejects gossip configs naming an introducer outside the cluster
    /// (the error surfaces from `spawn`, not from inside the node's
    /// thread where a panic would be silently swallowed by `join`).
    fn build_directory(&self, id: NodeId) -> io::Result<Box<dyn PeerDirectory>> {
        match &self.directory {
            DirectorySpec::Static => Ok(Box::new(StaticDirectory::addr_routed(
                Arc::clone(&self.peers),
                id,
                self.seed,
            ))),
            DirectorySpec::Gossip(config) => {
                // With no introducers nobody ever joins anybody and the
                // cluster silently never exchanges; reject up front.
                if config.introducers.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "gossip directory needs at least one introducer",
                    ));
                }
                // Resolve id-named introducers through the bind plan; the
                // directory itself never sees the address table.
                let mut introducers = Vec::with_capacity(config.introducers.len());
                for intro in &config.introducers {
                    introducers.push(match *intro {
                        Introducer::Node(n) if (n as usize) < self.peers.len() => {
                            Introducer::Addr(self.peers[n as usize])
                        }
                        Introducer::Node(n) => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidInput,
                                format!(
                                    "introducer node {n} outside the cluster (n = {})",
                                    self.peers.len()
                                ),
                            ))
                        }
                        addr => addr,
                    });
                }
                let resolved = GossipDirectoryConfig {
                    introducers,
                    ..config.clone()
                };
                Ok(Box::new(GossipDirectory::addr_routed(
                    id,
                    self.peers[id.index()],
                    &resolved,
                    self.seed,
                )))
            }
        }
    }
}

/// Everything needed to spawn one node of a cluster.
#[derive(Debug, Clone)]
pub struct NodeHandleConfig {
    index: usize,
    local_value: f64,
    cluster: ClusterConfig,
}

/// Handle to a running UDP gossip node.
///
/// Dropping the handle shuts the node down (the background thread exits
/// within one poll interval).
#[derive(Debug)]
pub struct UdpNode {
    addr: SocketAddr,
    id: NodeId,
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    stop: AtomicBool,
    reports: Mutex<Vec<EpochReport>>,
    local_value: Mutex<Option<f64>>,
    traffic: TrafficCell,
    /// Trace events drained from the node's rings (empty when tracing is
    /// disabled).
    traces: Mutex<Vec<TraceEvent>>,
    /// Latest membership view-health snapshot (`None` for directories
    /// without a membership plane).
    view_health: Mutex<Option<ViewHealth>>,
    /// In-process query commands bound for the node's thread, with
    /// their ticketed replies — the thread-per-node twin of the mux
    /// runtime's RPC listener (wire-level RPC datagrams are answered
    /// directly in the node's recv loop).
    query_mailbox: Mutex<QueryMailbox>,
}

/// One in-process query command and its reply slot (see
/// [`UdpNode::install_query`] and friends).
#[derive(Debug)]
enum QueryCommand {
    Install(QueryDescriptor),
    Remove(String),
    Submit(String, f64),
    Estimate(String),
}

/// Ticketed request/reply queues between the application's thread and
/// the node's event loop.
#[derive(Debug, Default)]
struct QueryMailbox {
    next_ticket: u64,
    requests: Vec<(u64, QueryCommand)>,
    replies: Vec<(u64, Result<Option<QueryEstimate>, QueryError>)>,
}

impl UdpNode {
    /// Binds the node's socket and spawns its gossip thread.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, non-blocking setup).
    pub fn spawn(config: NodeHandleConfig) -> io::Result<UdpNode> {
        let NodeHandleConfig {
            index,
            local_value,
            cluster,
        } = config;
        let addr = cluster.peers[index];
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let id = NodeId::new(index as u64);
        // Built on the caller's thread so misconfiguration fails the
        // spawn instead of killing the node thread silently.
        let directory = cluster.build_directory(id)?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            reports: Mutex::new(Vec::new()),
            local_value: Mutex::new(None),
            traffic: TrafficCell::default(),
            traces: Mutex::new(Vec::new()),
            view_health: Mutex::new(None),
            query_mailbox: Mutex::new(QueryMailbox::default()),
        });
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(format!("gossip-{index}"))
            .spawn(move || {
                run_loop(socket, id, local_value, cluster, directory, thread_shared);
            })?;
        Ok(UdpNode {
            addr,
            id,
            shared,
            thread: Some(thread),
        })
    }

    /// The node's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's identifier (its index in the address table).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Drains the epoch reports produced since the last call.
    pub fn take_reports(&self) -> Vec<EpochReport> {
        std::mem::take(&mut *self.shared.reports.lock().unwrap())
    }

    /// Updates the node's local value (takes effect at the next epoch).
    pub fn set_local_value(&self, value: f64) {
        *self.shared.local_value.lock().unwrap() = Some(value);
    }

    /// Datagram counts so far, split by protocol plane.
    pub fn datagram_counts(&self) -> TrafficCounts {
        self.shared.traffic.snapshot()
    }

    /// Drains the protocol trace events recorded since the last call
    /// (always empty unless the cluster was built with
    /// [`ClusterConfig::with_trace`]).
    pub fn take_trace(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.shared.traces.lock().unwrap())
    }

    /// The latest membership view-health snapshot, or `None` when the
    /// node runs a static directory.
    pub fn view_health(&self) -> Option<ViewHealth> {
        *self.shared.view_health.lock().unwrap()
    }

    /// Installs a named query at this node; catalog gossip spreads it to
    /// the rest of the cluster.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryPlane::install`] failures.
    pub fn install_query(&self, descriptor: QueryDescriptor) -> Result<(), QueryError> {
        self.query_command(QueryCommand::Install(descriptor))
            .map(|_| ())
    }

    /// Removes (tombstones) a named query at this node.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryPlane::remove`] failures.
    pub fn remove_query(&self, name: &str) -> Result<(), QueryError> {
        self.query_command(QueryCommand::Remove(name.to_string()))
            .map(|_| ())
    }

    /// Submits this node's contribution to a named query, subject to the
    /// query's admission limits.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryPlane::submit`] failures.
    pub fn submit_query(&self, name: &str, value: f64) -> Result<(), QueryError> {
        self.query_command(QueryCommand::Submit(name.to_string(), value))
            .map(|_| ())
    }

    /// Reads the named query's current estimate at this node.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryPlane::estimate`] failures.
    pub fn query_estimate(&self, name: &str) -> Result<QueryEstimate, QueryError> {
        self.query_command(QueryCommand::Estimate(name.to_string()))?
            .ok_or(QueryError::NotReady)
    }

    /// Posts one command to the node thread's mailbox and waits for its
    /// ticketed reply. The thread pumps the mailbox every poll interval
    /// (~1 ms), so a simple sleep-poll wait keeps the hot loop free of
    /// condvars.
    fn query_command(&self, command: QueryCommand) -> Result<Option<QueryEstimate>, QueryError> {
        let ticket = {
            let mut mailbox = self.shared.query_mailbox.lock().unwrap();
            mailbox.next_ticket += 1;
            let ticket = mailbox.next_ticket;
            mailbox.requests.push((ticket, command));
            ticket
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(1));
            let mut mailbox = self.shared.query_mailbox.lock().unwrap();
            if let Some(pos) = mailbox.replies.iter().position(|(t, _)| *t == ticket) {
                return mailbox.replies.remove(pos).1;
            }
            drop(mailbox);
            // The node thread stopped (or wedged) before answering.
            if self.shared.stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                return Err(QueryError::NotReady);
            }
        }
    }

    /// Stops the gossip thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpNode {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Sends an encoded datagram, charging the node's traffic cell — or its
/// `send_errors` counter when the kernel refuses, so outbound
/// backpressure is visible instead of silent loss.
fn transmit(
    socket: &UdpSocket,
    shared: &Shared,
    target: SocketAddr,
    bytes: &[u8],
    membership: bool,
) {
    if socket.send_to(bytes, target).is_ok() {
        shared.traffic.count_sent(membership, bytes.len());
    } else {
        shared.traffic.count_send_error();
    }
}

/// Transmits an aggregation message to node `to`, piggybacking a
/// membership trailer (descriptors + learned addresses) when the
/// directory has one to offer. The datagram stays on the aggregation
/// plane; only the trailer bytes are charged to the membership ledger.
fn transmit_aggregation(
    socket: &UdpSocket,
    shared: &Shared,
    directory: &mut dyn PeerDirectory,
    to: NodeId,
    msg: &Message,
    now_ms: u64,
) {
    let Some(target) = directory.addr_of(to) else {
        return;
    };
    match directory.piggyback(to, now_ms) {
        Some(piggyback) => {
            let bytes = encode_piggyback_message(msg, &piggyback);
            if socket.send_to(&bytes, target).is_ok() {
                shared
                    .traffic
                    .count_piggybacked_sent(bytes.len(), piggyback_trailer_len(&piggyback));
            } else {
                shared.traffic.count_send_error();
            }
        }
        None => transmit(socket, shared, target, &encode_message(msg), false),
    }
}

/// Transmits one query-plane frame (a named-query exchange or catalog
/// gossip push), charging the query traffic ledger.
fn transmit_query_outbound(
    socket: &UdpSocket,
    shared: &Shared,
    directory: &dyn PeerDirectory,
    from: NodeId,
    out: QueryOutbound,
) {
    let (to, bytes) = match out {
        QueryOutbound::Aggregation { to, query, message } => {
            (to, encode_query_message(&query, &message))
        }
        QueryOutbound::Catalog { to, entries } => (to, encode_catalog_message(from, &entries)),
    };
    let Some(target) = directory.addr_of(to) else {
        return;
    };
    if socket.send_to(&bytes, target).is_ok() {
        shared.traffic.count_query_sent(bytes.len());
    } else {
        shared.traffic.count_send_error();
    }
}

/// Resolves and transmits the directory's pending messages.
fn flush_directory(
    socket: &UdpSocket,
    shared: &Shared,
    directory: &dyn PeerDirectory,
    out: &mut Vec<DirectoryMessage>,
) {
    for msg in out.drain(..) {
        let target = match msg.to {
            Destination::Addr(addr) => Some(addr),
            Destination::Node(id) => directory.addr_of(id),
        };
        if let Some(target) = target {
            let bytes = encode_directory_message(&msg.payload);
            transmit(socket, shared, target, &bytes, true);
        }
    }
}

fn run_loop(
    socket: UdpSocket,
    id: NodeId,
    local_value: f64,
    cluster: ClusterConfig,
    mut directory: Box<dyn PeerDirectory>,
    shared: Arc<Shared>,
) {
    let mut node = GossipNode::founder(id, cluster.node_config.clone(), local_value, cluster.seed);
    // Per-query metrics are the mux runtime's surface (one registry per
    // cluster); a thread-per-node cluster runs the identical plane
    // logic with disconnected handles.
    let mut plane = QueryPlane::new(id, cluster.query, cluster.seed, Registry::disabled());
    let tracing = cluster.trace_capacity > 0;
    if tracing {
        node.set_trace_capacity(cluster.trace_capacity);
        directory.set_trace_capacity(cluster.trace_capacity);
    }
    let start = Instant::now();
    let mut buf = [0u8; 64 * 1024];
    let mut dir_out: Vec<DirectoryMessage> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        let now_ms = start.elapsed().as_millis() as u64;

        // Application-side local value updates.
        if let Some(v) = shared.local_value.lock().unwrap().take() {
            node.set_local_value(v);
        }

        // Application-side query commands (the Cluster seam).
        let commands: Vec<(u64, QueryCommand)> =
            std::mem::take(&mut shared.query_mailbox.lock().unwrap().requests);
        for (ticket, command) in commands {
            let reply = match command {
                QueryCommand::Install(d) => plane.install(d, now_ms).map(|()| None),
                QueryCommand::Remove(name) => plane.remove(&name, now_ms).map(|()| None),
                QueryCommand::Submit(name, value) => {
                    plane.submit(&name, value, now_ms).map(|()| None)
                }
                QueryCommand::Estimate(name) => plane.estimate(&name).map(Some),
            };
            shared
                .query_mailbox
                .lock()
                .unwrap()
                .replies
                .push((ticket, reply));
        }

        // Active behavior: tick the protocol; initiate when a cycle
        // fires. The peer is drawn lazily — only for exchanges actually
        // initiated — so the draw sequence matches the mux runtime's.
        if let Some(out) = node.poll_sampler(now_ms, &mut directory) {
            transmit_aggregation(
                &socket,
                &shared,
                directory.as_mut(),
                out.to,
                &out.message,
                now_ms,
            );
        }

        // Membership behavior: view gossip and bootstrap ride the same
        // socket and clock.
        directory.poll(now_ms, &mut dir_out);
        flush_directory(&socket, &shared, directory.as_ref(), &mut dir_out);
        shared.traffic.set_join_retries(directory.join_retries());

        // Query plane: per-query exchanges and catalog gossip share the
        // socket, drawing peers from the same directory.
        for out in plane.poll(now_ms, &mut directory) {
            transmit_query_outbound(&socket, &shared, directory.as_ref(), id, out);
        }

        // Passive behavior: drain the socket.
        loop {
            match socket.recv_from(&mut buf) {
                Ok((len, src)) => {
                    let now_ms = start.elapsed().as_millis() as u64;
                    match decode_datagram(&buf[..len]) {
                        Ok(WirePayload::Aggregation(msg)) => {
                            shared.traffic.count_received(false);
                            // Every datagram names its sender: learn the
                            // (id, addr) binding passively.
                            directory.observe(msg.from, src);
                            if let Some(response) = node.handle(&msg, now_ms) {
                                transmit_aggregation(
                                    &socket,
                                    &shared,
                                    directory.as_mut(),
                                    response.to,
                                    &response.message,
                                    now_ms,
                                );
                            }
                        }
                        Ok(WirePayload::Piggybacked(msg, piggyback)) => {
                            shared.traffic.count_received(false);
                            directory.observe(msg.from, src);
                            directory.absorb_piggyback(&piggyback, Some(src), now_ms);
                            if let Some(response) = node.handle(&msg, now_ms) {
                                transmit_aggregation(
                                    &socket,
                                    &shared,
                                    directory.as_mut(),
                                    response.to,
                                    &response.message,
                                    now_ms,
                                );
                            }
                        }
                        Ok(WirePayload::Directory(payload)) => {
                            shared.traffic.count_received(true);
                            directory.handle(&payload, Some(src), now_ms, &mut dir_out);
                            flush_directory(&socket, &shared, directory.as_ref(), &mut dir_out);
                        }
                        Ok(WirePayload::Catalog { from, entries }) => {
                            shared.traffic.count_query_received();
                            directory.observe(from, src);
                            plane.handle_catalog(&entries, now_ms);
                        }
                        Ok(WirePayload::Query { query, message }) => {
                            shared.traffic.count_query_received();
                            directory.observe(message.from, src);
                            if let Some(reply) = plane.handle_aggregation(&query, &message, now_ms)
                            {
                                transmit_query_outbound(
                                    &socket,
                                    &shared,
                                    directory.as_ref(),
                                    id,
                                    reply,
                                );
                            }
                        }
                        Ok(WirePayload::Rpc(request)) => {
                            // A client datagram: every node is a valid
                            // RPC endpoint; reply to the source address.
                            let response = plane.handle_rpc(&request, now_ms);
                            if response.status.is_reject() {
                                shared.traffic.count_rpc_reject();
                            }
                            let _ = socket.send_to(&encode_rpc_response(&response), src);
                        }
                        // A response frame addresses a client, not us.
                        Ok(WirePayload::RpcReply(_)) => {}
                        Err(_) => continue, // corrupt datagram: drop, stay alive
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Publish finished epochs. Query epochs feed telemetry only in
        // the mux runtime; drain them here to bound memory.
        let reports = node.take_reports();
        if !reports.is_empty() {
            shared.reports.lock().unwrap().extend(reports);
        }
        let _ = plane.take_epochs();

        // Publish trace events and the membership health snapshot.
        if tracing {
            let mut events = node.take_trace();
            events.extend(directory.take_trace());
            if !events.is_empty() {
                shared.traces.lock().unwrap().extend(events);
            }
        }
        if let Some(health) = directory.view_health(now_ms) {
            *shared.view_health.lock().unwrap() = Some(health);
        }

        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The thread-per-node runtime behind the [`Cluster`] operator seam: one
/// [`UdpNode`] per cluster member, spawned and torn down together.
#[derive(Debug)]
pub struct ThreadCluster {
    nodes: Vec<UdpNode>,
}

impl ThreadCluster {
    /// Spawns one [`UdpNode`] per address-table entry; node `i` starts
    /// with local value `values(i)`.
    ///
    /// # Errors
    ///
    /// Propagates socket and thread-spawn errors (nodes already started
    /// are shut down on failure).
    pub fn spawn(config: ClusterConfig, values: impl Fn(usize) -> f64) -> io::Result<Self> {
        let n = config.peers.len();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            nodes.push(UdpNode::spawn(config.node(i, values(i)))?);
        }
        Ok(ThreadCluster { nodes })
    }

    /// The per-node handles.
    pub fn nodes(&self) -> &[UdpNode] {
        &self.nodes
    }
}

impl Cluster for ThreadCluster {
    type Config = ClusterConfig;

    fn spawn_cluster(config: ClusterConfig, values: &dyn Fn(usize) -> f64) -> io::Result<Self> {
        ThreadCluster::spawn(config, values)
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn node_id(&self, index: usize) -> NodeId {
        self.nodes[index].id()
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(UdpNode::addr).collect()
    }

    fn take_reports(&self, index: usize) -> Vec<EpochReport> {
        self.nodes[index].take_reports()
    }

    fn set_local_value(&self, index: usize, value: f64) {
        self.nodes[index].set_local_value(value);
    }

    fn datagram_counts(&self, index: usize) -> TrafficCounts {
        self.nodes[index].datagram_counts()
    }

    fn take_trace(&self, index: usize) -> Vec<TraceEvent> {
        self.nodes[index].take_trace()
    }

    fn install_query(&self, index: usize, descriptor: QueryDescriptor) -> Result<(), QueryError> {
        self.nodes[index].install_query(descriptor)
    }

    fn remove_query(&self, index: usize, name: &str) -> Result<(), QueryError> {
        self.nodes[index].remove_query(name)
    }

    fn submit_query(&self, index: usize, name: &str, value: f64) -> Result<(), QueryError> {
        self.nodes[index].submit_query(name, value)
    }

    fn query_estimate(&self, index: usize, name: &str) -> Result<QueryEstimate, QueryError> {
        self.nodes[index].query_estimate(name)
    }

    fn shutdown(self) {
        for node in self.nodes {
            node.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::InstanceSpec;

    fn node_config(gamma: u32, cycle_ms: u64) -> NodeConfig {
        NodeConfig::builder()
            .gamma(gamma)
            .cycle_length(cycle_ms)
            .timeout(cycle_ms / 2)
            .instance(InstanceSpec::AVERAGE)
            .build()
            .unwrap()
    }

    #[test]
    fn loopback_cluster_ports_are_distinct() {
        let cluster = ClusterConfig::loopback(5, node_config(10, 50)).unwrap();
        let mut ports: Vec<u16> = cluster.peers().iter().map(|a| a.port()).collect();
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_index_validated() {
        let cluster = ClusterConfig::loopback(2, node_config(10, 50)).unwrap();
        cluster.node(5, 0.0);
    }

    #[test]
    fn single_node_runs_and_stops() {
        let cluster = ClusterConfig::loopback(1, node_config(2, 30)).unwrap();
        let node = UdpNode::spawn(cluster.node(0, 7.0)).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let reports = node.take_reports();
        node.shutdown();
        // Alone in the cluster it still completes epochs (no exchanges).
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.scalar(0), Some(7.0));
        }
    }

    #[test]
    fn pair_converges_to_average() {
        let cluster = ClusterConfig::loopback(2, node_config(8, 25)).unwrap();
        let a = UdpNode::spawn(cluster.node(0, 10.0)).unwrap();
        let b = UdpNode::spawn(cluster.node(1, 20.0)).unwrap();
        std::thread::sleep(Duration::from_millis(900));
        let mut estimates = Vec::new();
        for node in [&a, &b] {
            for r in node.take_reports() {
                estimates.push(r.scalar(0).unwrap());
            }
        }
        a.shutdown();
        b.shutdown();
        assert!(!estimates.is_empty(), "no epochs completed");
        // Later epochs must be at the true average.
        let last = *estimates.last().unwrap();
        assert!((last - 15.0).abs() < 0.5, "final estimate {last}");
    }

    #[test]
    fn datagram_counters_move_per_plane() {
        let cluster = ClusterConfig::loopback(2, node_config(30, 20)).unwrap();
        let a = UdpNode::spawn(cluster.node(0, 1.0)).unwrap();
        let b = UdpNode::spawn(cluster.node(1, 3.0)).unwrap();
        std::thread::sleep(Duration::from_millis(400));
        let counts = a.datagram_counts();
        a.shutdown();
        b.shutdown();
        assert!(counts.aggregation_sent > 0, "node never sent");
        assert!(counts.aggregation_received > 0, "node never received");
        assert!(counts.aggregation_bytes_sent > 0, "bytes uncharged");
        // A static directory produces no membership traffic.
        assert_eq!(counts.membership_sent, 0);
        assert_eq!(counts.membership_received, 0);
    }

    #[test]
    fn set_local_value_applies_next_epoch() {
        let cluster = ClusterConfig::loopback(1, node_config(2, 20)).unwrap();
        let node = UdpNode::spawn(cluster.node(0, 1.0)).unwrap();
        node.set_local_value(100.0);
        std::thread::sleep(Duration::from_millis(400));
        let reports = node.take_reports();
        node.shutdown();
        let last = reports.last().and_then(|r| r.scalar(0)).unwrap();
        assert_eq!(last, 100.0, "local value update never took effect");
    }

    #[test]
    fn thread_cluster_implements_the_operator_seam() {
        let config = ClusterConfig::loopback(3, node_config(6, 25)).unwrap();
        let cluster = ThreadCluster::spawn(config, |i| i as f64).unwrap();
        assert_eq!(cluster.node_count(), 3);
        assert_eq!(cluster.node_id(2), NodeId::new(2));
        assert_eq!(cluster.addrs().len(), 3);
        std::thread::sleep(Duration::from_millis(700));
        let reports = cluster.take_all_reports();
        let totals = cluster.total_datagram_counts();
        cluster.shutdown();
        assert!(reports.iter().any(|r| !r.is_empty()), "no epochs anywhere");
        assert!(totals.sent() > 0 && totals.received() > 0);
    }

    #[test]
    fn out_of_range_introducer_fails_spawn() {
        let spec = DirectorySpec::Gossip(GossipDirectoryConfig::new(8, 20).with_introducer_node(9));
        let config = ClusterConfig::loopback(4, node_config(4, 30))
            .unwrap()
            .with_directory(spec);
        let err = ThreadCluster::spawn(config, |_| 0.0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn gossip_directory_cluster_converges_from_introducer_only() {
        // NO static peer table: every node knows exactly one introducer
        // address; membership is NEWSCAST over the same sockets.
        let spec = DirectorySpec::Gossip(GossipDirectoryConfig::new(8, 20).with_introducer_node(0));
        let config = ClusterConfig::loopback(4, node_config(10, 30))
            .unwrap()
            .with_directory(spec);
        let cluster = ThreadCluster::spawn(config, |i| (i as f64 + 1.0) * 4.0).unwrap(); // avg 10
        std::thread::sleep(Duration::from_millis(1_800));
        let reports = cluster.take_all_reports();
        let totals = cluster.total_datagram_counts();
        cluster.shutdown();
        let mut finals = Vec::new();
        for node_reports in &reports {
            // Epoch 0 may predate bootstrap; judge the latest epoch.
            if let Some(r) = node_reports.last() {
                if r.epoch >= 1 {
                    finals.push(r.scalar(0).unwrap());
                }
            }
        }
        assert!(finals.len() >= 3, "only {} nodes reported", finals.len());
        for est in finals {
            assert!((est - 10.0).abs() < 1.0, "estimate {est} (truth 10)");
        }
        assert!(totals.membership_sent > 0, "no membership traffic");
        assert!(totals.membership_bytes_sent > 0);
    }
}
