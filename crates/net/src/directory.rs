//! The `GETNEIGHBOR()` seam: pluggable peer directories.
//!
//! The paper's aggregation protocol is overlay-agnostic — it only ever
//! asks the membership layer for *one random neighbor per exchange*. This
//! module makes that seam explicit for the real-network runtimes: a
//! [`PeerDirectory`] answers `GETNEIGHBOR()` ([`PeerSampler::draw_peer`]),
//! resolves peer addresses, and — when the membership itself is gossiped —
//! emits and consumes its own wire traffic through the same socket and
//! timer path as the aggregation protocol.
//!
//! Two implementations ship:
//!
//! * [`StaticDirectory`] — the classic static peer table. Draws are the
//!   deterministic `(seed, id, initiated-exchange count)` stream the
//!   mux-vs-threads parity tests rely on.
//! * [`GossipDirectory`] — one NEWSCAST [`MembershipNode`] per node.
//!   Views travel as codec tags 4/5 (full) or 8/9 (deltas: only the
//!   descriptors the partner is believed to lack, with a periodic
//!   full-view anti-entropy fallback), bootstrap as
//!   [`DirectoryPayload::Join`] (tag 6) / [`DirectoryPayload::Introduce`]
//!   (tag 7): a joiner contacts an *introducer*, which answers with a
//!   snapshot of its view (plus the addresses it knows, when the
//!   embedding routes by address). Join datagrams are retried with
//!   exponential backoff, rotating across introducers, so a lost tag-6
//!   datagram delays bootstrap instead of stranding the node. No static
//!   peer table exists anywhere; `GETNEIGHBOR()` is served from the live
//!   partial view.
//!
//! Directories may additionally *piggyback* membership on aggregation
//! datagrams already leaving the socket: the embedding asks
//! [`PeerDirectory::piggyback`] for a small [`Piggyback`] trailer
//! (descriptors plus peer addresses) when encoding an aggregation
//! message, and feeds received trailers to
//! [`PeerDirectory::absorb_piggyback`]. This spreads both views and
//! address books without dedicated datagrams.
//!
//! Directories are sans-io: the embedding (thread-per-node runtime or mux
//! runtime) owns sockets and clocks, calls [`PeerDirectory::poll`] on
//! timer wake-ups, feeds incoming membership datagrams to
//! [`PeerDirectory::handle`], and transmits whatever [`DirectoryMessage`]s
//! come back.

use epidemic_aggregation::node::PeerSampler;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::NodeId;
use epidemic_newscast::node::{MembershipConfig, MembershipNode, ViewPayload};
use epidemic_newscast::Descriptor;
use epidemic_telemetry::{TraceEvent, TraceKind, TraceRing, ViewHealth};
use std::collections::HashMap;
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

/// Salt decorrelating membership randomness from aggregation randomness
/// (both streams are derived from the cluster seed and the node id).
const GOSSIP_SEED_SALT: u64 = 0x4E45_5753; // "NEWS"

/// Salt for the static directory's peer-draw stream. Shared by every
/// runtime so that a same-seed cluster draws the same peer sequence
/// regardless of which runtime hosts it.
const DRAW_SEED_SALT: u64 = 0x5EED;

/// Where a directory wants a message delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// A node known by identifier; the embedding resolves the address
    /// (mux: peer table; threads: [`PeerDirectory::addr_of`]).
    Node(NodeId),
    /// An explicit socket address (introducer bootstrap before any
    /// identifier is known).
    Addr(SocketAddr),
}

/// One membership datagram to transmit.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectoryMessage {
    /// Where to send it.
    pub to: Destination,
    /// What to send.
    pub payload: DirectoryPayload,
}

/// The membership-plane wire payloads (codec tags 4–9).
#[derive(Debug, Clone, PartialEq)]
pub enum DirectoryPayload {
    /// A NEWSCAST view exchange (tags 4/5 full, 8/9 delta): the sender's
    /// view — or just the part the partner is believed to lack — plus a
    /// fresh self-descriptor. `reply` distinguishes the passive answer.
    View {
        /// Exchanged view contents.
        view: ViewPayload,
        /// `true` for the passive side's answer.
        reply: bool,
        /// `true` when the payload is a delta (tags 8/9): the receiver
        /// merges it into its record of the sender instead of replacing.
        delta: bool,
    },
    /// Bootstrap request (tag 6): "introduce me to the overlay".
    Join {
        /// The joiner's identifier.
        from: u32,
    },
    /// Bootstrap response (tag 7): a snapshot of the introducer's view,
    /// with addresses where the introducer knows them.
    Introduce {
        /// The introducer's identifier.
        from: u32,
        /// Snapshot entries (the introducer's view + itself).
        peers: Vec<IntroduceEntry>,
    },
}

/// One entry of an [`DirectoryPayload::Introduce`] snapshot: a membership
/// descriptor plus the peer's socket address, when known. Address-routed
/// embeddings use the address to seed their books; id-routed embeddings
/// (the mux runtime, which resolves addresses through its peer table)
/// leave it `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntroduceEntry {
    /// Described node.
    pub node: u32,
    /// Freshness timestamp of the descriptor.
    pub timestamp: u32,
    /// The node's socket address, if the introducer knows it.
    pub addr: Option<SocketAddr>,
}

/// How many descriptors a directory will piggyback per aggregation
/// datagram. Small on purpose: the trailer rides traffic that is already
/// paying a header, so a few descriptors per datagram compound quickly
/// without ever doubling a datagram's size.
pub const PIGGYBACK_BUDGET: usize = 3;

/// A membership trailer attached to an aggregation datagram (codec tag
/// 10): a few descriptors the destination is believed to lack, plus the
/// senders' addresses for them where known (address-routed embeddings
/// only — this is how address books spread without introducer re-joins).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Piggyback {
    /// The sending node's membership identifier.
    pub from: u32,
    /// Descriptors worth forwarding to this destination.
    pub descriptors: Vec<Descriptor>,
    /// Socket addresses for a subset of the descriptors' nodes.
    pub addrs: Vec<(u32, SocketAddr)>,
}

/// A membership service below the aggregation plane.
///
/// Extends [`PeerSampler`] — `draw_peer` *is* `GETNEIGHBOR()` — with the
/// machinery a real network needs: address resolution, its own timers,
/// and its own wire traffic.
pub trait PeerDirectory: PeerSampler + Send + fmt::Debug {
    /// Earliest tick at which [`poll`](Self::poll) wants to run again
    /// (`u64::MAX` when the directory is purely passive).
    fn next_deadline(&self) -> u64 {
        u64::MAX
    }

    /// Advances the directory's timers to `now`, pushing any membership
    /// datagrams to transmit into `out`.
    fn poll(&mut self, now: u64, out: &mut Vec<DirectoryMessage>) {
        let _ = (now, out);
    }

    /// Processes an incoming membership datagram. `src` is the datagram's
    /// source address when the embedding knows it (thread-per-node
    /// runtime); responses are pushed into `out`.
    fn handle(
        &mut self,
        payload: &DirectoryPayload,
        src: Option<SocketAddr>,
        now: u64,
        out: &mut Vec<DirectoryMessage>,
    );

    /// Resolves a peer's socket address, or `None` when the embedding
    /// routes by identifier (the mux runtime's peer table) or the address
    /// is simply unknown.
    fn addr_of(&self, peer: NodeId) -> Option<SocketAddr> {
        let _ = peer;
        None
    }

    /// Records that a datagram from `from` arrived from `src` — passive
    /// address learning, the UDP equivalent of reading the envelope.
    fn observe(&mut self, from: NodeId, src: SocketAddr) {
        let _ = (from, src);
    }

    /// A membership trailer worth attaching to an aggregation datagram
    /// headed to `to` right now, or `None` when the destination already
    /// knows everything worth telling (the common steady-state case — the
    /// embedding then sends a plain aggregation frame).
    fn piggyback(&mut self, to: NodeId, now: u64) -> Option<Piggyback> {
        let _ = (to, now);
        None
    }

    /// Absorbs a piggybacked membership trailer received alongside an
    /// aggregation message.
    fn absorb_piggyback(&mut self, piggyback: &Piggyback, src: Option<SocketAddr>, now: u64) {
        let _ = (piggyback, src, now);
    }

    /// How many times this directory re-sent its bootstrap `Join` after
    /// the first attempt went unanswered (0 for directories that never
    /// join). Surfaced in `TrafficCounts` so a lossy bootstrap path shows
    /// up in metrics instead of as a silent hang.
    fn join_retries(&self) -> u64 {
        0
    }

    /// Enables protocol event tracing on the membership plane (join
    /// retries, piggyback emissions, view merges). Directories without a
    /// membership plane ignore it.
    fn set_trace_capacity(&mut self, capacity: usize) {
        let _ = capacity;
    }

    /// Drains the directory's recorded trace events (empty unless tracing
    /// was enabled via [`PeerDirectory::set_trace_capacity`]).
    fn take_trace(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }

    /// A snapshot of the partial view's health, or `None` for directories
    /// without a membership plane. Descriptor freshness stands in for
    /// liveness on the wire: an entry is counted dead when its timestamp
    /// lags `now` by more than [`STALE_VIEW_CYCLES`] gossip periods.
    fn view_health(&self, now: u64) -> Option<ViewHealth> {
        let _ = now;
        None
    }
}

/// How many gossip periods a view descriptor may lag `now` before the
/// wire-side health snapshot ([`PeerDirectory::view_health`]) counts it as
/// dead. NEWSCAST refreshes every live node's descriptor once per cycle in
/// expectation, so a lag of several periods marks a node that stopped
/// gossiping rather than one that is merely unlucky.
pub const STALE_VIEW_CYCLES: u64 = 8;

/// `Box<dyn PeerDirectory>` is itself a sampler (stand-in for `dyn`
/// upcasting, unavailable at this crate's MSRV), so runtimes can pass
/// their boxed directory straight to `GossipNode::poll_sampler`.
impl PeerSampler for Box<dyn PeerDirectory> {
    fn draw_peer(&mut self) -> Option<NodeId> {
        (**self).draw_peer()
    }
}

/// Draws a uniformly random peer among `n` nodes, excluding `me`.
/// Returns `None` when the node is alone.
///
/// Shared by every runtime through [`StaticDirectory`]: combined with
/// lazy selection (`GossipNode::poll_with`), a node's peer sequence is a
/// deterministic function of `(seed, id, initiated-exchange count)` — the
/// property the cross-runtime parity tests rely on.
pub(crate) fn uniform_peer(rng: &mut Xoshiro256, n: usize, me: usize) -> Option<NodeId> {
    if n <= 1 {
        return None;
    }
    let raw = rng.index(n - 1);
    let p = if raw >= me { raw + 1 } else { raw };
    Some(NodeId::new(p as u64))
}

/// The classic static peer table: every node knows every other node out
/// of band, `GETNEIGHBOR()` draws uniformly from the table.
#[derive(Debug)]
pub struct StaticDirectory {
    me: usize,
    n: usize,
    rng: Xoshiro256,
    /// Peer addresses in id order; `None` in id-routed embeddings.
    addrs: Option<Arc<Vec<SocketAddr>>>,
}

impl StaticDirectory {
    /// A static directory for an id-routed embedding (the mux runtime):
    /// draws over `0..n`, never resolves addresses.
    pub fn id_routed(n: usize, me: NodeId, seed: u64) -> Self {
        StaticDirectory {
            me: me.index(),
            n,
            rng: Xoshiro256::stream(seed ^ DRAW_SEED_SALT, me.as_u64()),
            addrs: None,
        }
    }

    /// A static directory over an explicit address table (the
    /// thread-per-node runtime): node `i`'s address is `peers[i]`.
    pub fn addr_routed(peers: Arc<Vec<SocketAddr>>, me: NodeId, seed: u64) -> Self {
        StaticDirectory {
            me: me.index(),
            n: peers.len(),
            rng: Xoshiro256::stream(seed ^ DRAW_SEED_SALT, me.as_u64()),
            addrs: Some(peers),
        }
    }
}

impl PeerSampler for StaticDirectory {
    fn draw_peer(&mut self) -> Option<NodeId> {
        uniform_peer(&mut self.rng, self.n, self.me)
    }
}

impl PeerDirectory for StaticDirectory {
    fn handle(
        &mut self,
        _payload: &DirectoryPayload,
        _src: Option<SocketAddr>,
        _now: u64,
        _out: &mut Vec<DirectoryMessage>,
    ) {
        // A static table has no membership plane; stray view traffic
        // (e.g. from a misconfigured peer) is dropped.
    }

    fn addr_of(&self, peer: NodeId) -> Option<SocketAddr> {
        self.addrs
            .as_ref()
            .and_then(|a| a.get(peer.index()).copied())
    }
}

/// How a [`GossipDirectory`] finds the running overlay at start-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Introducer {
    /// An introducer known by node id (resolvable via the mux peer
    /// table, or via a thread-runtime address plan at build time).
    Node(u64),
    /// An introducer known only by socket address (true out-of-band
    /// bootstrap).
    Addr(SocketAddr),
}

/// Configuration of a [`GossipDirectory`].
#[derive(Debug, Clone)]
pub struct GossipDirectoryConfig {
    /// NEWSCAST view size `c`.
    pub view_size: usize,
    /// Membership gossip period in milliseconds.
    pub cycle_length: u64,
    /// Bootstrap contacts. Nodes that are themselves introducers simply
    /// wait to be joined.
    pub introducers: Vec<Introducer>,
    /// Gossip view deltas (tags 8/9) instead of full views every cycle.
    /// On by default; [`GossipDirectoryConfig::with_full_views`] restores
    /// the always-full-view wire behavior for A/B comparison.
    pub delta_views: bool,
    /// Delta-knowledge LRU capacity: how many recent partners each node
    /// remembers what it told. Deltas degrade to full views for partners
    /// outside this horizon, so size it near the expected overlay size
    /// when memory allows (~350 B per tracked partner).
    pub knowledge_peers: usize,
}

impl GossipDirectoryConfig {
    /// A config with the given view size and gossip period and no
    /// introducers yet. Delta view gossip is on.
    pub fn new(view_size: usize, cycle_length: u64) -> Self {
        GossipDirectoryConfig {
            view_size,
            cycle_length,
            introducers: Vec::new(),
            delta_views: true,
            knowledge_peers: MembershipConfig::new(view_size, cycle_length).knowledge_peers,
        }
    }

    /// Ships full views every exchange (tags 4/5 only, no piggybacked
    /// trailers) — the pre-delta wire behavior, kept for byte-overhead
    /// A/B measurements.
    pub fn with_full_views(mut self) -> Self {
        self.delta_views = false;
        self
    }

    /// Sets the delta-knowledge LRU capacity (see
    /// [`GossipDirectoryConfig::knowledge_peers`]).
    pub fn with_knowledge_peers(mut self, peers: usize) -> Self {
        self.knowledge_peers = peers;
        self
    }

    /// Adds an introducer known by node id.
    pub fn with_introducer_node(mut self, id: u64) -> Self {
        self.introducers.push(Introducer::Node(id));
        self
    }

    /// Adds an introducer known by socket address.
    pub fn with_introducer_addr(mut self, addr: SocketAddr) -> Self {
        self.introducers.push(Introducer::Addr(addr));
        self
    }
}

/// NEWSCAST-gossiped membership: `GETNEIGHBOR()` from a live partial
/// view, no static peer table anywhere.
#[derive(Debug)]
pub struct GossipDirectory {
    me: u32,
    membership: MembershipNode,
    /// Bootstrap contacts (self already filtered out).
    introducers: Vec<Destination>,
    /// Learned id → address book; `None` in id-routed embeddings.
    addrs: Option<HashMap<u32, SocketAddr>>,
    /// Our own address, included in introduction snapshots we hand out
    /// (address-routed embeddings only).
    my_addr: Option<SocketAddr>,
    /// Next tick at which an (re-)join may fire.
    next_join_at: u64,
    join_interval: u64,
    /// Join datagrams sent so far (0 until the first fires). Attempt `k`
    /// targets introducer `(k-1) / JOIN_ROTATE_EVERY` (mod the list), so
    /// a dead or partitioned first introducer is routed around instead of
    /// retried forever.
    join_attempts: u64,
    /// Directory-plane trace ring (join retries, piggyback emissions);
    /// disabled (capacity 0) unless the embedding opts in.
    trace: TraceRing,
}

/// Consecutive join attempts aimed at one introducer before rotating to
/// the next (second-introducer fallback for lossy or dead introducers).
const JOIN_ROTATE_EVERY: u64 = 3;

/// Cap on the join backoff exponent: retries back off `1×, 2×, 4×, 8×`
/// the join interval and then stay at `8×`.
const JOIN_BACKOFF_CAP: u32 = 3;

impl GossipDirectory {
    /// A gossip directory for an id-routed embedding (the mux runtime):
    /// all peers are reachable by id, no address book is kept.
    pub fn id_routed(me: NodeId, config: &GossipDirectoryConfig, seed: u64) -> Self {
        Self::build(me, config, seed, None)
    }

    /// A gossip directory that learns peer addresses itself (the
    /// thread-per-node runtime): from join sources, introduction
    /// snapshots, and passively from every incoming datagram.
    pub fn addr_routed(
        me: NodeId,
        my_addr: SocketAddr,
        config: &GossipDirectoryConfig,
        seed: u64,
    ) -> Self {
        Self::build(me, config, seed, Some(my_addr))
    }

    fn build(
        me: NodeId,
        config: &GossipDirectoryConfig,
        seed: u64,
        my_addr: Option<SocketAddr>,
    ) -> Self {
        let id = me.as_u64() as u32;
        let membership = MembershipNode::new(
            id,
            MembershipConfig {
                view_size: config.view_size,
                cycle_length: config.cycle_length,
                delta_views: config.delta_views,
                knowledge_peers: config.knowledge_peers,
            },
            seed ^ GOSSIP_SEED_SALT,
        );
        let introducers = config
            .introducers
            .iter()
            .filter_map(|intro| match *intro {
                Introducer::Node(n) if n == me.as_u64() => None,
                Introducer::Node(n) => Some(Destination::Node(NodeId::new(n))),
                Introducer::Addr(a) if Some(a) == my_addr => None,
                Introducer::Addr(a) => Some(Destination::Addr(a)),
            })
            .collect();
        GossipDirectory {
            me: id,
            membership,
            introducers,
            addrs: my_addr.map(|_| HashMap::new()),
            my_addr,
            next_join_at: 0,
            join_interval: config.cycle_length.max(1),
            join_attempts: 0,
            trace: TraceRing::disabled(),
        }
    }

    /// The live partial view (for tests and metrics).
    pub fn view(&self) -> &epidemic_newscast::View {
        self.membership.view()
    }

    fn learn(&mut self, peer: u32, addr: SocketAddr) {
        if peer == self.me {
            return;
        }
        if let Some(book) = &mut self.addrs {
            book.insert(peer, addr);
        }
    }

    fn lookup(&self, peer: u32) -> Option<SocketAddr> {
        if peer == self.me {
            return self.my_addr;
        }
        self.addrs
            .as_ref()
            .and_then(|book| book.get(&peer).copied())
    }

    /// `true` while the node should (re-)contact an introducer: its view
    /// is empty, or (address-routed only) it holds view entries whose
    /// address it cannot resolve yet.
    fn wants_join(&self) -> bool {
        if self.introducers.is_empty() {
            return false;
        }
        if self.membership.view().is_empty() {
            return true;
        }
        match &self.addrs {
            Some(book) => self
                .membership
                .view()
                .entries()
                .iter()
                .any(|d| !book.contains_key(&d.node)),
            None => false,
        }
    }

    /// The destination to answer `from` at: the datagram's source address
    /// when we route by address, the sender id otherwise.
    fn reply_dest(&self, src: Option<SocketAddr>, from: u32) -> Destination {
        match (self.addrs.is_some(), src) {
            (true, Some(addr)) => Destination::Addr(addr),
            _ => Destination::Node(NodeId::new(u64::from(from))),
        }
    }

    fn record(&mut self, kind: TraceKind, peer: Option<u64>, detail: u64) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.record(TraceEvent {
            node: u64::from(self.me),
            kind,
            epoch: 0,
            cycle: 0,
            peer,
            detail,
        });
    }
}

impl PeerSampler for GossipDirectory {
    fn draw_peer(&mut self) -> Option<NodeId> {
        // In address-routed mode a view entry learned by gossip may not
        // have a resolvable address yet; skip those (bounded retries so a
        // draw never loops). Re-joins refresh the book over time.
        let attempts = self.membership.view().len().max(1);
        for _ in 0..attempts {
            let peer = self.membership.sample_peer()?;
            if self.addrs.is_none() || self.lookup(peer).is_some() {
                return Some(NodeId::new(u64::from(peer)));
            }
        }
        None
    }
}

impl PeerDirectory for GossipDirectory {
    fn next_deadline(&self) -> u64 {
        let mut deadline = self.membership.next_cycle_at();
        if self.wants_join() {
            deadline = deadline.min(self.next_join_at);
        }
        deadline
    }

    fn poll(&mut self, now: u64, out: &mut Vec<DirectoryMessage>) {
        if self.wants_join() && now >= self.next_join_at {
            // One introducer per attempt, rotating every JOIN_ROTATE_EVERY
            // tries, with exponential backoff: a lost Join datagram costs
            // one interval, a dead introducer a few, and a stable overlay
            // is never spammed with duplicate bootstrap traffic.
            let pick = (self.join_attempts / JOIN_ROTATE_EVERY) as usize % self.introducers.len();
            let backoff = self.join_attempts.min(u64::from(JOIN_BACKOFF_CAP));
            self.join_attempts += 1;
            self.next_join_at = now + (self.join_interval << backoff);
            let to = self.introducers[pick];
            if self.join_attempts > 1 {
                let peer = match to {
                    Destination::Node(n) => Some(n.as_u64()),
                    Destination::Addr(_) => None,
                };
                self.record(TraceKind::JoinRetry, peer, self.join_attempts - 1);
            }
            out.push(DirectoryMessage {
                to,
                payload: DirectoryPayload::Join { from: self.me },
            });
        }
        if let Some((peer, view, full)) = self.membership.poll_exchange(now) {
            // An unreachable partner would waste the cycle; prefer a
            // reachable one when routing by address.
            let reachable = self.addrs.is_none() || self.lookup(peer).is_some();
            if reachable {
                out.push(DirectoryMessage {
                    to: Destination::Node(NodeId::new(u64::from(peer))),
                    payload: DirectoryPayload::View {
                        view,
                        reply: false,
                        delta: !full,
                    },
                });
            }
        }
    }

    fn handle(
        &mut self,
        payload: &DirectoryPayload,
        src: Option<SocketAddr>,
        now: u64,
        out: &mut Vec<DirectoryMessage>,
    ) {
        match payload {
            DirectoryPayload::Join { from } => {
                if *from == self.me {
                    return;
                }
                if let Some(addr) = src {
                    self.learn(*from, addr);
                }
                // The joiner becomes part of the overlay immediately…
                self.membership.add_seed(*from, now);
                // …and receives a snapshot of our view (plus ourselves).
                let snapshot = self.membership.view_payload(now);
                let peers = snapshot
                    .descriptors
                    .iter()
                    .map(|d| IntroduceEntry {
                        node: d.node,
                        timestamp: d.timestamp,
                        addr: self.lookup(d.node),
                    })
                    .collect();
                out.push(DirectoryMessage {
                    to: self.reply_dest(src, *from),
                    payload: DirectoryPayload::Introduce {
                        from: self.me,
                        peers,
                    },
                });
            }
            DirectoryPayload::Introduce { from, peers } => {
                if let Some(addr) = src {
                    self.learn(*from, addr);
                }
                let mut descriptors = Vec::with_capacity(peers.len());
                for entry in peers {
                    if let Some(addr) = entry.addr {
                        self.learn(entry.node, addr);
                    }
                    descriptors.push(Descriptor::new(entry.node, entry.timestamp));
                }
                self.membership.bootstrap(&descriptors);
            }
            DirectoryPayload::View { view, reply, delta } => {
                if let Some(addr) = src {
                    self.learn(view.from, addr);
                }
                if *reply {
                    self.membership.absorb_reply_delta(view, !*delta, now);
                } else {
                    let (answer, full) = self.membership.handle_exchange_delta(view, !*delta, now);
                    out.push(DirectoryMessage {
                        to: self.reply_dest(src, view.from),
                        payload: DirectoryPayload::View {
                            view: answer,
                            reply: true,
                            delta: !full,
                        },
                    });
                }
            }
        }
    }

    fn addr_of(&self, peer: NodeId) -> Option<SocketAddr> {
        self.lookup(peer.as_u64() as u32)
    }

    fn observe(&mut self, from: NodeId, src: SocketAddr) {
        self.learn(from.as_u64() as u32, src);
    }

    fn piggyback(&mut self, to: NodeId, now: u64) -> Option<Piggyback> {
        let peer = to.as_u64() as u32;
        let descriptors = self
            .membership
            .piggyback_descriptors(peer, now, PIGGYBACK_BUDGET);
        if descriptors.is_empty() {
            return None;
        }
        // Address-routed embeddings attach the addresses they know for the
        // picked nodes (lookup of our own id yields our own address, so a
        // piggybacked self-descriptor spreads our address book entry too).
        let addrs = if self.addrs.is_some() {
            descriptors
                .iter()
                .filter_map(|d| self.lookup(d.node).map(|a| (d.node, a)))
                .collect()
        } else {
            Vec::new()
        };
        self.record(
            TraceKind::PiggybackEmit,
            Some(to.as_u64()),
            descriptors.len() as u64,
        );
        Some(Piggyback {
            from: self.me,
            descriptors,
            addrs,
        })
    }

    fn absorb_piggyback(&mut self, piggyback: &Piggyback, src: Option<SocketAddr>, now: u64) {
        if piggyback.from == self.me {
            return;
        }
        if let Some(addr) = src {
            self.learn(piggyback.from, addr);
        }
        for &(node, addr) in &piggyback.addrs {
            self.learn(node, addr);
        }
        self.membership
            .absorb_descriptors(piggyback.from, &piggyback.descriptors, now);
    }

    fn join_retries(&self) -> u64 {
        self.join_attempts.saturating_sub(1)
    }

    fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace.set_capacity(capacity);
        self.membership.set_trace_capacity(capacity);
    }

    fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut events = self.trace.drain();
        events.extend(self.membership.take_trace());
        events
    }

    fn view_health(&self, now: u64) -> Option<ViewHealth> {
        let entries = self.membership.view().entries();
        let stale_bound = (now as u32).saturating_sub(
            (STALE_VIEW_CYCLES * self.join_interval).min(u64::from(u32::MAX)) as u32,
        );
        let dead = entries.iter().filter(|d| d.timestamp < stale_bound).count();
        Some(ViewHealth {
            views: 1,
            mean_size: entries.len() as f64,
            dead_entry_fraction: if entries.is_empty() {
                0.0
            } else {
                dead as f64 / entries.len() as f64
            },
        })
    }
}

/// Which [`PeerDirectory`] a cluster config builds for each of its nodes.
#[derive(Debug, Clone, Default)]
pub enum DirectorySpec {
    /// A [`StaticDirectory`] over the cluster's peer table.
    #[default]
    Static,
    /// A [`GossipDirectory`] per node.
    Gossip(GossipDirectoryConfig),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gossip_config(introducer: u64) -> GossipDirectoryConfig {
        GossipDirectoryConfig::new(8, 50).with_introducer_node(introducer)
    }

    /// Drives `msg` into the addressed directory (out of `dirs`, indexed
    /// by id), returning any responses.
    fn deliver(
        dirs: &mut [GossipDirectory],
        msg: &DirectoryMessage,
        now: u64,
    ) -> Vec<DirectoryMessage> {
        let Destination::Node(to) = msg.to else {
            panic!("id-routed test sent to an address: {msg:?}");
        };
        let mut out = Vec::new();
        dirs[to.index()].handle(&msg.payload, None, now, &mut out);
        out
    }

    #[test]
    fn static_directory_draws_the_shared_uniform_stream() {
        let seed = 42;
        let mut dir = StaticDirectory::id_routed(16, NodeId::new(3), seed);
        let mut rng = Xoshiro256::stream(seed ^ DRAW_SEED_SALT, 3);
        for _ in 0..64 {
            assert_eq!(dir.draw_peer(), uniform_peer(&mut rng, 16, 3));
        }
    }

    #[test]
    fn static_directory_alone_draws_none() {
        let mut dir = StaticDirectory::id_routed(1, NodeId::new(0), 1);
        assert_eq!(dir.draw_peer(), None);
    }

    #[test]
    fn static_directory_resolves_table_addresses() {
        let peers: Arc<Vec<SocketAddr>> = Arc::new(vec![
            "127.0.0.1:9001".parse().unwrap(),
            "127.0.0.1:9002".parse().unwrap(),
        ]);
        let dir = StaticDirectory::addr_routed(Arc::clone(&peers), NodeId::new(0), 1);
        assert_eq!(dir.addr_of(NodeId::new(1)), Some(peers[1]));
        assert_eq!(dir.addr_of(NodeId::new(7)), None);

        let id_routed = StaticDirectory::id_routed(2, NodeId::new(0), 1);
        assert_eq!(id_routed.addr_of(NodeId::new(1)), None);
    }

    #[test]
    fn join_introduce_bootstraps_an_id_routed_pair() {
        let mut dirs = vec![
            GossipDirectory::id_routed(NodeId::new(0), &gossip_config(0), 7),
            GossipDirectory::id_routed(NodeId::new(1), &gossip_config(0), 7),
        ];
        // Node 1 wants to join (empty view, knows introducer 0); node 0
        // is the introducer and never joins.
        assert!(dirs[1].wants_join());
        assert!(!dirs[0].wants_join());

        let mut out = Vec::new();
        dirs[1].poll(0, &mut out);
        let join = out
            .iter()
            .find(|m| matches!(m.payload, DirectoryPayload::Join { .. }))
            .expect("join sent")
            .clone();
        assert_eq!(join.to, Destination::Node(NodeId::new(0)));

        // Introducer absorbs the joiner and answers with a snapshot.
        let responses = deliver(&mut dirs, &join, 1);
        assert!(dirs[0].view().contains(1));
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            responses[0].payload,
            DirectoryPayload::Introduce { from: 0, .. }
        ));

        // The joiner bootstraps from the snapshot: it now knows node 0.
        deliver(&mut dirs, &responses[0], 2);
        assert!(dirs[1].view().contains(0));
        assert!(!dirs[1].wants_join(), "bootstrapped node keeps joining");
        assert_eq!(dirs[1].draw_peer(), Some(NodeId::new(0)));
    }

    #[test]
    fn view_gossip_flows_between_bootstrapped_directories() {
        let mut dirs = vec![
            GossipDirectory::id_routed(NodeId::new(0), &gossip_config(0), 3),
            GossipDirectory::id_routed(NodeId::new(1), &gossip_config(0), 3),
            GossipDirectory::id_routed(NodeId::new(2), &gossip_config(0), 3),
        ];
        // Bootstrap 1 and 2 through the introducer, then gossip for a
        // few cycles; everyone ends up knowing everyone.
        let mut inflight: Vec<DirectoryMessage> = Vec::new();
        for t in 0..40u64 {
            let now = t * 25;
            for dir in dirs.iter_mut() {
                dir.poll(now, &mut inflight);
            }
            while let Some(msg) = inflight.pop() {
                let responses = deliver(&mut dirs, &msg, now);
                inflight.extend(responses);
            }
        }
        for dir in &dirs {
            assert_eq!(dir.view().len(), 2, "node {} view incomplete", dir.me);
        }
    }

    #[test]
    fn addr_routed_directory_learns_and_serves_addresses() {
        let intro_addr: SocketAddr = "127.0.0.1:7000".parse().unwrap();
        let joiner_addr: SocketAddr = "127.0.0.1:7001".parse().unwrap();
        let config = GossipDirectoryConfig::new(8, 50).with_introducer_addr(intro_addr);
        let mut introducer = GossipDirectory::addr_routed(NodeId::new(0), intro_addr, &config, 5);
        let mut joiner = GossipDirectory::addr_routed(NodeId::new(1), joiner_addr, &config, 5);

        let mut out = Vec::new();
        joiner.poll(0, &mut out);
        let join = out.pop().expect("join sent");
        assert_eq!(join.to, Destination::Addr(intro_addr));

        // The introducer learns the joiner's address from the datagram
        // source and answers at that source.
        let mut responses = Vec::new();
        introducer.handle(&join.payload, Some(joiner_addr), 1, &mut responses);
        assert_eq!(introducer.addr_of(NodeId::new(1)), Some(joiner_addr));
        assert_eq!(responses[0].to, Destination::Addr(joiner_addr));

        // The snapshot carries the introducer's own address.
        joiner.handle(&responses[0].payload, Some(intro_addr), 2, &mut Vec::new());
        assert_eq!(joiner.addr_of(NodeId::new(0)), Some(intro_addr));
        assert_eq!(joiner.draw_peer(), Some(NodeId::new(0)));
    }

    #[test]
    fn draw_peer_skips_unresolvable_entries() {
        let my_addr: SocketAddr = "127.0.0.1:7002".parse().unwrap();
        let config = GossipDirectoryConfig::new(8, 50);
        let mut dir = GossipDirectory::addr_routed(NodeId::new(9), my_addr, &config, 1);
        // A view entry learned by gossip, address unknown.
        dir.handle(
            &DirectoryPayload::Introduce {
                from: 3,
                peers: vec![IntroduceEntry {
                    node: 4,
                    timestamp: 10,
                    addr: None,
                }],
            },
            None,
            0,
            &mut Vec::new(),
        );
        assert!(dir.view().contains(4));
        assert_eq!(dir.draw_peer(), None, "drew an unreachable peer");
        // Resolving the address makes the peer drawable.
        dir.observe(NodeId::new(4), "127.0.0.1:7003".parse().unwrap());
        assert_eq!(dir.draw_peer(), Some(NodeId::new(4)));
    }

    #[test]
    fn join_retry_is_paced_by_the_deadline() {
        let config = gossip_config(0);
        let mut dir = GossipDirectory::id_routed(NodeId::new(5), &config, 2);
        assert_eq!(dir.next_deadline(), 0, "initial join not scheduled");
        let mut out = Vec::new();
        dir.poll(0, &mut out);
        assert_eq!(out.len(), 1);
        // Still unbootstrapped: the retry waits one join interval.
        assert!(dir.next_deadline() >= 1);
        out.clear();
        dir.poll(10, &mut out);
        assert!(out.is_empty(), "re-joined before the interval elapsed");
        dir.poll(60, &mut out); // one join interval (50 ms) later
        assert!(!out.is_empty(), "retry never fired");
    }

    #[test]
    fn join_retry_backs_off_and_rotates_introducers() {
        let config = GossipDirectoryConfig::new(8, 50)
            .with_introducer_node(0)
            .with_introducer_node(1);
        let mut dir = GossipDirectory::id_routed(NodeId::new(5), &config, 2);
        assert_eq!(dir.join_retries(), 0);

        let joins_at = |dir: &mut GossipDirectory, now: u64| -> Vec<Destination> {
            let mut out = Vec::new();
            dir.poll(now, &mut out);
            out.iter()
                .filter(|m| matches!(m.payload, DirectoryPayload::Join { .. }))
                .map(|m| m.to)
                .collect()
        };

        // Attempts 1–3 target introducer 0 at backoffs 1×, 2×, 4× the
        // join interval (t = 0, 50, 150, 350); attempt 4 rotates to
        // introducer 1.
        let mut dests = Vec::new();
        for at in [0u64, 50, 150, 350] {
            if at > 0 {
                assert!(
                    joins_at(&mut dir, at - 1).is_empty(),
                    "joined before the backoff elapsed (t = {at})"
                );
            }
            let joins = joins_at(&mut dir, at);
            assert_eq!(joins.len(), 1, "one join per attempt (t = {at})");
            dests.push(joins[0]);
        }
        let node = |id: u64| Destination::Node(NodeId::new(id));
        assert_eq!(dests, vec![node(0), node(0), node(0), node(1)]);
        assert_eq!(dir.join_retries(), 3);
        // The backoff caps at 8×: attempts 5 and 6 fire 400 ms apart.
        assert_eq!(joins_at(&mut dir, 750).len(), 1);
        assert!(joins_at(&mut dir, 1_149).is_empty());
        assert_eq!(joins_at(&mut dir, 1_150).len(), 1);
        // A successful bootstrap stops the retries cold.
        dir.handle(
            &DirectoryPayload::Introduce {
                from: 1,
                peers: vec![IntroduceEntry {
                    node: 1,
                    timestamp: 9,
                    addr: None,
                }],
            },
            None,
            1_200,
            &mut Vec::new(),
        );
        assert!(!dir.wants_join());
    }

    /// Runs the id-routed gossip loop for `rounds` cycles, returning the
    /// `(delta, descriptor_count)` of every view message that flowed.
    fn run_gossip(dirs: &mut [GossipDirectory], rounds: u64) -> Vec<(bool, usize)> {
        let mut flavors = Vec::new();
        let mut inflight: Vec<DirectoryMessage> = Vec::new();
        for t in 0..rounds {
            let now = t * 25;
            for dir in dirs.iter_mut() {
                dir.poll(now, &mut inflight);
            }
            while let Some(msg) = inflight.pop() {
                if let DirectoryPayload::View { view, delta, .. } = &msg.payload {
                    flavors.push((*delta, view.descriptors.len()));
                }
                let responses = deliver(dirs, &msg, now);
                inflight.extend(responses);
            }
        }
        flavors
    }

    #[test]
    fn delta_views_flow_once_partners_know_each_other() {
        let mut dirs = vec![
            GossipDirectory::id_routed(NodeId::new(0), &gossip_config(0), 3),
            GossipDirectory::id_routed(NodeId::new(1), &gossip_config(0), 3),
            GossipDirectory::id_routed(NodeId::new(2), &gossip_config(0), 3),
        ];
        let flavors = run_gossip(&mut dirs, 40);
        let deltas = flavors.iter().filter(|(d, _)| *d).count();
        let fulls = flavors.iter().filter(|(d, _)| !*d).count();
        assert!(deltas > 0, "no delta views in {} messages", flavors.len());
        assert!(fulls > 0, "anti-entropy full views never fired");
        // Deltas still converge to complete views.
        for dir in &dirs {
            assert_eq!(dir.view().len(), 2, "node {} view incomplete", dir.me);
        }
    }

    #[test]
    fn full_view_config_never_ships_deltas() {
        let config = gossip_config(0).with_full_views();
        let mut dirs = vec![
            GossipDirectory::id_routed(NodeId::new(0), &config, 3),
            GossipDirectory::id_routed(NodeId::new(1), &config, 3),
            GossipDirectory::id_routed(NodeId::new(2), &config, 3),
        ];
        let flavors = run_gossip(&mut dirs, 40);
        assert!(!flavors.is_empty());
        assert!(flavors.iter().all(|(delta, _)| !*delta));
        for dir in &dirs {
            assert_eq!(dir.view().len(), 2, "node {} view incomplete", dir.me);
        }
    }

    #[test]
    fn piggyback_spreads_descriptors_and_addresses_then_goes_quiet() {
        let intro_addr: SocketAddr = "127.0.0.1:7100".parse().unwrap();
        let a1: SocketAddr = "127.0.0.1:7101".parse().unwrap();
        let a2: SocketAddr = "127.0.0.1:7102".parse().unwrap();
        let config = GossipDirectoryConfig::new(8, 50).with_introducer_addr(intro_addr);
        let mut introducer = GossipDirectory::addr_routed(NodeId::new(0), intro_addr, &config, 5);
        let mut node1 = GossipDirectory::addr_routed(NodeId::new(1), a1, &config, 5);

        // Nodes 1 and 2 join; the introducer now knows both by address.
        let mut sink = Vec::new();
        introducer.handle(&DirectoryPayload::Join { from: 1 }, Some(a1), 1, &mut sink);
        introducer.handle(&DirectoryPayload::Join { from: 2 }, Some(a2), 2, &mut sink);

        // An aggregation datagram to node 1 carries the introducer's own
        // descriptor and node 2's — with addresses for both.
        let pb = introducer
            .piggyback(NodeId::new(1), 5)
            .expect("first piggyback carries news");
        let nodes: Vec<u32> = pb.descriptors.iter().map(|d| d.node).collect();
        assert!(nodes.contains(&0) && nodes.contains(&2), "picked {nodes:?}");
        assert!(!nodes.contains(&1), "told node 1 about itself");
        assert!(pb.addrs.contains(&(0, intro_addr)));
        assert!(pb.addrs.contains(&(2, a2)));

        // Node 1 absorbs it: view and address book both grow, so node 2
        // is immediately drawable without any introducer round-trip.
        node1.absorb_piggyback(&pb, Some(intro_addr), 6);
        assert!(node1.view().contains(2));
        assert_eq!(node1.addr_of(NodeId::new(2)), Some(a2));
        assert_eq!(node1.addr_of(NodeId::new(0)), Some(intro_addr));

        // Nothing new to tell node 1 → no trailer at all.
        assert!(introducer.piggyback(NodeId::new(1), 5).is_none());
    }

    #[test]
    fn id_routed_piggyback_omits_addresses() {
        let mut dirs = [
            GossipDirectory::id_routed(NodeId::new(0), &gossip_config(0), 7),
            GossipDirectory::id_routed(NodeId::new(1), &gossip_config(0), 7),
        ];
        let mut sink = Vec::new();
        dirs[0].handle(&DirectoryPayload::Join { from: 2 }, None, 1, &mut sink);
        let pb = dirs[0].piggyback(NodeId::new(1), 3).expect("news to share");
        assert!(!pb.descriptors.is_empty());
        assert!(pb.addrs.is_empty(), "id-routed trailer carried addresses");
        dirs[1].absorb_piggyback(&pb, None, 4);
        assert!(dirs[1].view().contains(2));
    }

    #[test]
    fn introducer_with_no_contacts_is_quiet() {
        let config = GossipDirectoryConfig::new(8, 50).with_introducer_node(5);
        let mut dir = GossipDirectory::id_routed(NodeId::new(5), &config, 2);
        let mut out = Vec::new();
        dir.poll(0, &mut out);
        dir.poll(1_000, &mut out);
        assert!(out.is_empty(), "self-introducer produced traffic: {out:?}");
    }
}
