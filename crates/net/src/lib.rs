//! Real-network runtime for epidemic aggregation.
//!
//! The paper presents the aggregation protocol as a deployable system
//! (Figure 1: an active thread gossiping every δ and a passive thread
//! answering). This crate provides exactly that embedding for the sans-io
//! [`epidemic_aggregation::GossipNode`]:
//!
//! * [`codec`] — a compact, versioned binary wire format for protocol
//!   messages (hand-rolled little-endian framing, no codec dependency),
//!   including NEWSCAST view exchanges, virtual-node-routed mux frames,
//!   and exact `*_len` size twins for traffic accounting.
//! * [`runtime`] — a UDP runtime: one OS thread per node runs the active
//!   and passive loops over a non-blocking socket, with a static peer
//!   table playing the role of the membership service.
//! * [`mux`] — the multiplexed runtime: N virtual nodes behind **one**
//!   socket and `workers + 2` threads, driven by a reader thread and a
//!   hashed [`timer::TimerWheel`]; scales localhost experiments to
//!   thousands of real-socket nodes per process.
//! * [`timer`] — the hashed timer wheel backing [`mux`].
//!
//! # Examples
//!
//! A two-node loopback cluster computing an average:
//!
//! ```no_run
//! use epidemic_aggregation::{InstanceSpec, NodeConfig};
//! use epidemic_net::runtime::{ClusterConfig, UdpNode};
//!
//! let node_config = NodeConfig::builder()
//!     .gamma(10)
//!     .cycle_length(50)   // milliseconds
//!     .timeout(20)
//!     .instance(InstanceSpec::AVERAGE)
//!     .build()?;
//! let cluster = ClusterConfig::loopback(2, node_config)?;
//! let mut nodes: Vec<UdpNode> = Vec::new();
//! for i in 0..2 {
//!     nodes.push(UdpNode::spawn(cluster.node(i, (i * 10) as f64))?);
//! }
//! std::thread::sleep(std::time::Duration::from_millis(1200));
//! for node in &nodes {
//!     for report in node.take_reports() {
//!         println!("epoch {} -> {:?}", report.epoch, report.scalar(0));
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod mux;
pub mod runtime;
pub mod timer;

pub use codec::{decode_message, encode_message, DecodeError};
pub use mux::{MuxCluster, MuxClusterConfig};
pub use runtime::{ClusterConfig, NodeHandleConfig, UdpNode};
