//! Real-network runtime for epidemic aggregation.
//!
//! The paper presents the aggregation protocol as a deployable system
//! (Figure 1: an active thread gossiping every δ and a passive thread
//! answering) over an overlay-agnostic membership service — all the
//! protocol ever asks of it is `GETNEIGHBOR()`. This crate provides
//! exactly that embedding for the sans-io
//! [`epidemic_aggregation::GossipNode`], factored along two seams:
//!
//! * [`directory`] — the **membership seam**: [`directory::PeerDirectory`]
//!   answers `GETNEIGHBOR()` and resolves peer addresses. Implementations:
//!   [`directory::StaticDirectory`] (a static table, the out-of-band
//!   discovery the paper assumes) and [`directory::GossipDirectory`]
//!   (NEWSCAST membership gossiped over the same sockets, bootstrapped
//!   from introducers — no static table anywhere).
//! * [`cluster`] — the **operator seam**: the [`cluster::Cluster`] trait
//!   (spawn, addresses, reports, local values, per-node
//!   [`cluster::TrafficCounts`], shutdown), implemented by both runtimes
//!   so tests, benches, and examples are written once.
//! * [`codec`] — a compact, versioned binary wire format for protocol
//!   messages (hand-rolled little-endian framing, no codec dependency):
//!   aggregation exchanges, NEWSCAST view exchanges, join/introduce
//!   bootstrap, virtual-node-routed mux frames, and exact `*_len` size
//!   twins for traffic accounting.
//! * [`runtime`] — the thread-per-node UDP runtime
//!   ([`runtime::ThreadCluster`]): one OS thread and socket per node.
//! * [`mux`] — the multiplexed runtime ([`mux::MuxCluster`]): N virtual
//!   nodes behind a small **reader socket set** (vnode `i` homed on
//!   socket `i % readers`) and `workers + readers + 1` threads, driven
//!   by per-socket reader threads and a sharded hashed timer wheel
//!   ([`timer::ShardedTimerWheel`]) — and shardable across sockets,
//!   processes, and hosts via a [`mux::PeerTable`] mapping vnode-id
//!   ranges to shard addresses.
//! * [`batch`] — syscall-batched datagram I/O ([`batch::IoBackend`]):
//!   `recvmmsg`/`sendmmsg` on Linux with a portable one-per-syscall
//!   fallback, runtime-selectable for A/B measurement.
//! * [`timer`] — the hashed timer wheel backing [`mux`].
//!
//! # Examples
//!
//! A two-node loopback cluster computing an average, driven through the
//! operator seam:
//!
//! ```no_run
//! use epidemic_aggregation::{InstanceSpec, NodeConfig};
//! use epidemic_net::cluster::Cluster;
//! use epidemic_net::runtime::{ClusterConfig, ThreadCluster};
//!
//! let node_config = NodeConfig::builder()
//!     .gamma(10)
//!     .cycle_length(50)   // milliseconds
//!     .timeout(20)
//!     .instance(InstanceSpec::AVERAGE)
//!     .build()?;
//! let config = ClusterConfig::loopback(2, node_config)?;
//! let cluster = ThreadCluster::spawn(config, |i| (i * 10) as f64)?;
//! std::thread::sleep(std::time::Duration::from_millis(1200));
//! for (node, reports) in cluster.take_all_reports().into_iter().enumerate() {
//!     for report in reports {
//!         println!("node {node} epoch {} -> {:?}", report.epoch, report.scalar(0));
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same protocol with **no static peer table**: membership is
//! NEWSCAST gossip bootstrapped from one introducer, riding the same
//! socket as the aggregation traffic:
//!
//! ```no_run
//! use epidemic_aggregation::{InstanceSpec, NodeConfig};
//! use epidemic_net::cluster::Cluster;
//! use epidemic_net::directory::{DirectorySpec, GossipDirectoryConfig};
//! use epidemic_net::mux::{MuxCluster, MuxClusterConfig};
//!
//! let node_config = NodeConfig::builder()
//!     .gamma(10)
//!     .cycle_length(50)
//!     .timeout(20)
//!     .instance(InstanceSpec::AVERAGE)
//!     .build()?;
//! let directory = DirectorySpec::Gossip(
//!     GossipDirectoryConfig::new(20, 40).with_introducer_node(0),
//! );
//! let cluster = MuxCluster::spawn(
//!     MuxClusterConfig::new(256, node_config).with_directory(directory),
//!     |i| i as f64,
//! )?;
//! # cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod cluster;
pub mod codec;
pub mod directory;
pub mod mux;
pub mod runtime;
pub mod timer;

pub use batch::IoBackend;
pub use cluster::{Cluster, TrafficCounts};
pub use codec::{decode_message, encode_message, DecodeError};
pub use directory::{
    DirectorySpec, GossipDirectory, GossipDirectoryConfig, PeerDirectory, StaticDirectory,
};
pub use mux::{MuxCluster, MuxClusterConfig, PeerTable, SyscallCounts};
pub use runtime::{ClusterConfig, NodeHandleConfig, ThreadCluster, UdpNode};

// The telemetry plane's vocabulary, re-exported so operators of this
// crate need no direct `epidemic-telemetry` dependency.
pub use epidemic_telemetry::{
    write_jsonl, write_snapshot, MetricsServer, Registry, TraceEvent, TraceKind, ViewHealth,
};
