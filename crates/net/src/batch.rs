//! Syscall-batched datagram I/O: `recvmmsg`/`sendmmsg` with a portable
//! fallback.
//!
//! The multiplexed runtime ([`crate::mux`]) moves one datagram per
//! syscall when it uses `recv_from`/`send_to` — at 10⁴–10⁵ virtual nodes
//! the kernel boundary, not the protocol, becomes the ceiling. On Linux
//! both directions batch: a reader drains up to [`BATCH`] datagrams per
//! `recvmmsg` call, and workers accumulate outbound frames per socket and
//! flush them with one `sendmmsg` per [`BATCH`].
//!
//! The build environment has no crates.io access, so the two syscall
//! wrappers are declared here directly (glibc exports both on every
//! supported Linux target) behind `#[cfg(target_os = "linux")]`. A
//! portable one-datagram-per-syscall path compiles everywhere and is
//! selectable at runtime ([`IoBackend::Portable`]) for A/B measurement
//! and for keeping the non-Linux code path tested on Linux CI.
//!
//! Selection: [`IoBackend::auto`] picks `Batched` on Linux and
//! `Portable` elsewhere; the `EPIDEMIC_NET_IO` environment variable
//! (`batched` / `portable`) overrides it, which is how CI forces the
//! fallback path on a Linux runner.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Datagrams moved per batched syscall (both directions).
pub const BATCH: usize = 32;

/// Largest datagram a receive slot can hold — matches the 64 KiB UDP
/// maximum the runtimes have always assumed.
const MAX_DATAGRAM: usize = 64 * 1024;

/// How a runtime moves datagrams across the kernel boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoBackend {
    /// `recvmmsg`/`sendmmsg`: up to [`BATCH`] datagrams per syscall.
    /// Only effective on Linux; elsewhere it degrades to `Portable`.
    Batched,
    /// One `recv_from`/`send_to` per datagram — compiles and runs
    /// everywhere, and preserves the pre-batching syscall pattern
    /// exactly (the A/B baseline).
    Portable,
}

impl IoBackend {
    /// The platform default: `Batched` on Linux, `Portable` elsewhere —
    /// unless the `EPIDEMIC_NET_IO` environment variable names a backend
    /// explicitly.
    pub fn auto() -> Self {
        if let Ok(value) = std::env::var("EPIDEMIC_NET_IO") {
            if let Some(forced) = IoBackend::from_override(&value) {
                return forced;
            }
        }
        if cfg!(target_os = "linux") {
            IoBackend::Batched
        } else {
            IoBackend::Portable
        }
    }

    /// Parses an override string (the `EPIDEMIC_NET_IO` value or an
    /// `--io` CLI flag): `batched` / `portable`, case-insensitive.
    pub fn from_override(value: &str) -> Option<Self> {
        match value.to_ascii_lowercase().as_str() {
            "batched" => Some(IoBackend::Batched),
            "portable" => Some(IoBackend::Portable),
            _ => None,
        }
    }

    /// Whether this backend actually batches on the current platform.
    pub fn is_batched(self) -> bool {
        self == IoBackend::Batched && cfg!(target_os = "linux")
    }

    /// The backend's name, in the same lowercase form
    /// [`IoBackend::from_override`] parses — used as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            IoBackend::Batched => "batched",
            IoBackend::Portable => "portable",
        }
    }
}

/// Reusable receive buffers for one socket: up to [`BATCH`] datagrams per
/// [`RecvBatch::recv`] call on the batched backend, exactly one on the
/// portable backend.
#[derive(Debug)]
pub struct RecvBatch {
    /// `BATCH` slots of `MAX_DATAGRAM` bytes, flat.
    bufs: Box<[u8]>,
    /// Received length per slot (valid for `0..count` of the last call).
    lens: [usize; BATCH],
    /// Source address per slot (valid for `0..count` of the last call);
    /// `None` when the kernel reported an address family we don't parse.
    srcs: [Option<SocketAddr>; BATCH],
}

impl Default for RecvBatch {
    fn default() -> Self {
        RecvBatch::new()
    }
}

impl RecvBatch {
    /// Allocates the slot buffers (`BATCH * 64 KiB`, reused for the life
    /// of the reader).
    pub fn new() -> Self {
        RecvBatch {
            bufs: vec![0u8; BATCH * MAX_DATAGRAM].into_boxed_slice(),
            lens: [0; BATCH],
            srcs: [None; BATCH],
        }
    }

    /// Receives at least one datagram (blocking per the socket's read
    /// timeout), draining whatever else is immediately available on the
    /// batched backend. Returns how many slots were filled — exactly one
    /// syscall was performed either way.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a read timeout surfaces as
    /// `WouldBlock`/`TimedOut` exactly like `recv_from`.
    pub fn recv(&mut self, socket: &UdpSocket, backend: IoBackend) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        if backend == IoBackend::Batched {
            return self.recv_batched(socket);
        }
        let _ = backend;
        let (len, src) = socket.recv_from(&mut self.bufs[..MAX_DATAGRAM])?;
        self.lens[0] = len;
        self.srcs[0] = Some(src);
        Ok(1)
    }

    /// The bytes of datagram `i` of the last [`RecvBatch::recv`] call.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BATCH` (callers index `0..count`).
    pub fn datagram(&self, i: usize) -> &[u8] {
        &self.bufs[i * MAX_DATAGRAM..i * MAX_DATAGRAM + self.lens[i]]
    }

    /// The source address of datagram `i` of the last
    /// [`RecvBatch::recv`] call — the sender's socket, as reported by the
    /// kernel. `None` only for an unparseable address family.
    ///
    /// # Panics
    ///
    /// Panics if `i >= BATCH` (callers index `0..count`).
    pub fn src(&self, i: usize) -> Option<SocketAddr> {
        self.srcs[i]
    }

    #[cfg(target_os = "linux")]
    fn recv_batched(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        let mut iovecs = [sys::IoVec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        }; BATCH];
        let mut hdrs = [sys::MmsgHdr::zeroed(); BATCH];
        let mut names = [sys::SockaddrStorage::zeroed(); BATCH];
        for (slot, (iov, hdr)) in iovecs.iter_mut().zip(hdrs.iter_mut()).enumerate() {
            iov.iov_base = self.bufs[slot * MAX_DATAGRAM..].as_mut_ptr().cast();
            iov.iov_len = MAX_DATAGRAM;
            hdr.msg_hdr.msg_iov = iov;
            hdr.msg_hdr.msg_iovlen = 1;
            hdr.msg_hdr.msg_name = names[slot].bytes.as_mut_ptr().cast();
            hdr.msg_hdr.msg_namelen = sys::SockaddrStorage::LEN;
        }
        // SAFETY: every header points at a distinct live slot of `bufs`,
        // at its own iovec, and at its own sockaddr storage; all three
        // arrays outlive the call. The socket fd is valid for the
        // borrow's duration.
        let got = unsafe {
            sys::recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                BATCH as u32,
                sys::MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        for (i, hdr) in hdrs.iter().enumerate().take(got as usize) {
            self.lens[i] = hdr.msg_len as usize;
            self.srcs[i] = names[i].decode();
        }
        Ok(got as usize)
    }
}

/// Outbound frames accumulated for ONE socket, flushed with `sendmmsg`
/// (or a `send_to` loop on the portable backend). `M` is caller metadata
/// carried per frame — the mux runtime stores `(node, membership)` so a
/// flush can charge each node's traffic cell.
#[derive(Debug, Default)]
pub struct SendBatch<M> {
    frames: Vec<(Vec<u8>, SocketAddr)>,
    meta: Vec<M>,
}

impl<M> SendBatch<M> {
    /// An empty batch.
    pub fn new() -> Self {
        SendBatch {
            frames: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Queued frame count.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Queues one frame for `target`.
    pub fn push(&mut self, bytes: Vec<u8>, target: SocketAddr, meta: M) {
        self.frames.push((bytes, target));
        self.meta.push(meta);
    }

    /// Transmits every queued frame through `socket`, invoking
    /// `on_result(&meta, wire_len, ok)` once per frame (in push order),
    /// then clears the batch. Returns the number of send syscalls used.
    ///
    /// A frame the kernel rejects (e.g. `sendmmsg` stopping early, or a
    /// `send_to` error) reports `ok = false` and transmission continues
    /// with the next frame — one bad destination cannot stall the rest
    /// of the burst.
    pub fn flush(
        &mut self,
        socket: &UdpSocket,
        backend: IoBackend,
        mut on_result: impl FnMut(&M, usize, bool),
    ) -> u64 {
        let syscalls = self.transmit(socket, backend, &mut on_result);
        self.frames.clear();
        self.meta.clear();
        syscalls
    }

    fn transmit(
        &mut self,
        socket: &UdpSocket,
        backend: IoBackend,
        on_result: &mut impl FnMut(&M, usize, bool),
    ) -> u64 {
        #[cfg(target_os = "linux")]
        if backend == IoBackend::Batched {
            return self.transmit_batched(socket, on_result);
        }
        let _ = backend;
        let mut syscalls = 0u64;
        for ((bytes, target), meta) in self.frames.iter().zip(&self.meta) {
            syscalls += 1;
            let ok = socket.send_to(bytes, *target).is_ok();
            on_result(meta, bytes.len(), ok);
        }
        syscalls
    }

    #[cfg(target_os = "linux")]
    fn transmit_batched(
        &mut self,
        socket: &UdpSocket,
        on_result: &mut impl FnMut(&M, usize, bool),
    ) -> u64 {
        use std::os::fd::AsRawFd;
        let mut syscalls = 0u64;
        let mut start = 0usize;
        while start < self.frames.len() {
            let chunk = (self.frames.len() - start).min(BATCH);
            let mut addrs = [sys::SockaddrStorage::zeroed(); BATCH];
            let mut iovecs = [sys::IoVec {
                iov_base: std::ptr::null_mut(),
                iov_len: 0,
            }; BATCH];
            let mut hdrs = [sys::MmsgHdr::zeroed(); BATCH];
            for i in 0..chunk {
                let (bytes, target) = &mut self.frames[start + i];
                let namelen = addrs[i].encode(target);
                iovecs[i].iov_base = bytes.as_mut_ptr().cast();
                iovecs[i].iov_len = bytes.len();
                hdrs[i].msg_hdr.msg_name = addrs[i].bytes.as_mut_ptr().cast();
                hdrs[i].msg_hdr.msg_namelen = namelen;
                hdrs[i].msg_hdr.msg_iov = &mut iovecs[i];
                hdrs[i].msg_hdr.msg_iovlen = 1;
            }
            // SAFETY: headers 0..chunk each point at a distinct live
            // frame buffer, its own iovec, and its own sockaddr storage,
            // all outliving the call; the fd is valid for the borrow.
            let sent =
                unsafe { sys::sendmmsg(socket.as_raw_fd(), hdrs.as_mut_ptr(), chunk as u32, 0) };
            syscalls += 1;
            if sent > 0 {
                for i in start..start + sent as usize {
                    on_result(&self.meta[i], self.frames[i].0.len(), true);
                }
                start += sent as usize;
            } else {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                // The first frame of the chunk failed; report it and move
                // on so one dead destination cannot wedge the burst.
                on_result(&self.meta[start], self.frames[start].0.len(), false);
                start += 1;
            }
        }
        syscalls
    }
}

/// Raw Linux syscall surface: hand-declared externs and ABI structs (the
/// environment has no crates.io access, so no `libc` crate). Layouts
/// follow the x86-64/AArch64 glibc definitions; `#[repr(C)]` reproduces
/// the kernel's padding from the field types alone.
#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;
    use std::net::SocketAddr;

    /// `recvmmsg(2)` flag: return once at least one datagram arrived,
    /// taking whatever else is immediately available.
    pub const MSG_WAITFORONE: i32 = 0x10000;

    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub iov_base: *mut c_void,
        pub iov_len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub msg_name: *mut c_void,
        pub msg_namelen: u32,
        pub msg_iov: *mut IoVec,
        pub msg_iovlen: usize,
        pub msg_control: *mut c_void,
        pub msg_controllen: usize,
        pub msg_flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MmsgHdr {
        pub msg_hdr: MsgHdr,
        pub msg_len: u32,
    }

    impl MmsgHdr {
        pub fn zeroed() -> Self {
            // SAFETY: all fields are integers or raw pointers; the
            // all-zero bit pattern is a valid value for each.
            unsafe { std::mem::zeroed() }
        }
    }

    /// Room for a `sockaddr_in6` (the larger of the two families).
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct SockaddrStorage {
        pub bytes: [u8; 28],
    }

    impl SockaddrStorage {
        /// Byte size of the storage (room for a `sockaddr_in6`).
        pub const LEN: u32 = 28;

        pub fn zeroed() -> Self {
            SockaddrStorage { bytes: [0; 28] }
        }

        /// Parses the kernel-written `sockaddr_in`/`sockaddr_in6` back
        /// into a [`SocketAddr`] (`None` for any other family).
        pub fn decode(&self) -> Option<SocketAddr> {
            let family = u16::from_ne_bytes([self.bytes[0], self.bytes[1]]);
            let port = u16::from_be_bytes([self.bytes[2], self.bytes[3]]);
            match family {
                AF_INET => {
                    let mut ip = [0u8; 4];
                    ip.copy_from_slice(&self.bytes[4..8]);
                    Some(SocketAddr::from((ip, port)))
                }
                AF_INET6 => {
                    let mut ip = [0u8; 16];
                    ip.copy_from_slice(&self.bytes[8..24]);
                    Some(SocketAddr::from((ip, port)))
                }
                _ => None,
            }
        }

        /// Writes `addr` as a kernel `sockaddr_in`/`sockaddr_in6`,
        /// returning the `msg_namelen` to pass alongside.
        pub fn encode(&mut self, addr: &SocketAddr) -> u32 {
            match addr {
                SocketAddr::V4(v4) => {
                    self.bytes[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                    self.bytes[2..4].copy_from_slice(&v4.port().to_be_bytes());
                    self.bytes[4..8].copy_from_slice(&v4.ip().octets());
                    self.bytes[8..16].fill(0); // sin_zero
                    16
                }
                SocketAddr::V6(v6) => {
                    self.bytes[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                    self.bytes[2..4].copy_from_slice(&v6.port().to_be_bytes());
                    self.bytes[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
                    self.bytes[8..24].copy_from_slice(&v6.ip().octets());
                    self.bytes[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                    28
                }
            }
        }
    }

    extern "C" {
        pub fn recvmmsg(
            sockfd: i32,
            msgvec: *mut MmsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut c_void,
        ) -> i32;

        pub fn sendmmsg(sockfd: i32, msgvec: *mut MmsgHdr, vlen: u32, flags: i32) -> i32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        let b = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let to = b.local_addr().unwrap();
        (a, b, to)
    }

    fn backends() -> Vec<IoBackend> {
        if cfg!(target_os = "linux") {
            vec![IoBackend::Batched, IoBackend::Portable]
        } else {
            vec![IoBackend::Portable]
        }
    }

    #[test]
    fn override_parsing() {
        assert_eq!(
            IoBackend::from_override("batched"),
            Some(IoBackend::Batched)
        );
        assert_eq!(
            IoBackend::from_override("Portable"),
            Some(IoBackend::Portable)
        );
        assert_eq!(IoBackend::from_override("turbo"), None);
        assert_eq!(IoBackend::from_override(""), None);
    }

    #[test]
    fn batched_is_linux_only() {
        assert_eq!(IoBackend::Batched.is_batched(), cfg!(target_os = "linux"),);
        assert!(!IoBackend::Portable.is_batched());
    }

    #[test]
    fn round_trips_a_burst_on_every_backend() {
        for backend in backends() {
            let (tx, rx, to) = pair();
            let mut batch: SendBatch<usize> = SendBatch::new();
            let total = BATCH + 7; // forces a second sendmmsg chunk
            for i in 0..total {
                batch.push(format!("datagram-{i}").into_bytes(), to, i);
            }
            let mut sent = Vec::new();
            let syscalls = batch.flush(&tx, backend, |&i, len, ok| {
                assert!(ok, "send {i} failed");
                assert_eq!(len, format!("datagram-{i}").len());
                sent.push(i);
            });
            assert_eq!(sent, (0..total).collect::<Vec<_>>());
            assert!(batch.is_empty(), "flush must clear the batch");
            if backend.is_batched() {
                assert_eq!(syscalls, 2, "expected ceil({total}/{BATCH}) syscalls");
            } else {
                assert_eq!(syscalls, total as u64);
            }

            let from = tx.local_addr().unwrap();
            let mut recv = RecvBatch::new();
            let mut got = Vec::new();
            let mut recv_syscalls = 0u64;
            while got.len() < total {
                let count = recv.recv(&rx, backend).expect("burst lost");
                recv_syscalls += 1;
                for d in 0..count {
                    got.push(String::from_utf8(recv.datagram(d).to_vec()).unwrap());
                    assert_eq!(recv.src(d), Some(from), "{backend:?}: wrong source");
                }
            }
            got.sort();
            let mut want: Vec<String> = (0..total).map(|i| format!("datagram-{i}")).collect();
            want.sort();
            assert_eq!(got, want);
            if backend.is_batched() {
                assert!(
                    recv_syscalls < total as u64,
                    "batched recv used {recv_syscalls} syscalls for {total} datagrams"
                );
            }
        }
    }

    #[test]
    fn recv_times_out_like_recv_from() {
        for backend in backends() {
            let rx = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
            rx.set_read_timeout(Some(Duration::from_millis(30)))
                .unwrap();
            let mut recv = RecvBatch::new();
            let err = recv.recv(&rx, backend).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ),
                "{backend:?}: unexpected timeout kind {:?}",
                err.kind()
            );
        }
    }

    #[test]
    fn failed_sends_are_reported_without_stalling_the_burst() {
        for backend in backends() {
            let (tx, _rx, to) = pair();
            // An IPv6 destination on an IPv4 socket: the kernel rejects
            // it, the surrounding IPv4 frames must still go through.
            let bad: SocketAddr = "[::1]:9".parse().unwrap();
            let mut batch: SendBatch<u8> = SendBatch::new();
            batch.push(b"ok-0".to_vec(), to, 0);
            batch.push(b"bad".to_vec(), bad, 1);
            batch.push(b"ok-2".to_vec(), to, 2);
            let mut results = Vec::new();
            batch.flush(&tx, backend, |&tag, _len, ok| results.push((tag, ok)));
            assert_eq!(
                results,
                vec![(0, true), (1, false), (2, true)],
                "{backend:?}"
            );
        }
    }
}
