//! Binary wire format.
//!
//! One datagram carries one [`Message`]. The format is little-endian,
//! versioned, and deliberately simple:
//!
//! ```text
//! u8  version (=1)
//! u8  body tag: 0 request, 1 reply, 2 epoch notice, 3 refuse
//! u64 sender id
//! u64 epoch
//! -- request/reply only --
//! u16 instance count
//!   per instance: u8 state tag (0 scalar, 1 map)
//!     scalar: f64
//!     map:    u16 entry count, then (u64 leader, f64 estimate)*
//! ```

use epidemic_aggregation::value::InstanceMap;
use epidemic_aggregation::{InstanceState, Message, MessageBody};
use epidemic_common::NodeId;
use std::error::Error;
use std::fmt;

/// Wire format version emitted by [`encode_message`].
pub const WIRE_VERSION: u8 = 1;

/// Error raised when a datagram cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The datagram was shorter than the fixed header.
    Truncated,
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown body or state tag.
    BadTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
        }
    }
}

impl Error for DecodeError {}

/// Little-endian write helpers over a plain byte vector (stand-in for the
/// `bytes` crate's `BufMut`, which is unavailable offline).
trait WireWrite {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u64_le(&mut self, v: u64);
    fn put_f64_le(&mut self, v: f64);
}

impl WireWrite for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian read helpers that advance a byte slice (stand-in for the
/// `bytes` crate's `Buf`). Callers must check `remaining()` first; the
/// getters panic on underflow like their `bytes` counterparts.
trait WireRead {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u64_le(&mut self) -> u64;
    fn get_f64_le(&mut self) -> f64;
}

impl WireRead for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Encodes a message into a fresh buffer.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    let (tag, states): (u8, Option<&[InstanceState]>) = match &msg.body {
        MessageBody::Request(s) => (0, Some(s)),
        MessageBody::Reply(s) => (1, Some(s)),
        MessageBody::EpochNotice => (2, None),
        MessageBody::Refuse => (3, None),
    };
    buf.put_u8(tag);
    buf.put_u64_le(msg.from.as_u64());
    buf.put_u64_le(msg.epoch);
    if let Some(states) = states {
        buf.put_u16_le(states.len() as u16);
        for state in states {
            match state {
                InstanceState::Scalar(v) => {
                    buf.put_u8(0);
                    buf.put_f64_le(*v);
                }
                InstanceState::Map(map) => {
                    buf.put_u8(1);
                    buf.put_u16_le(map.len() as u16);
                    for (leader, estimate) in map.iter() {
                        buf.put_u64_le(leader);
                        buf.put_f64_le(estimate);
                    }
                }
            }
        }
    }
    buf
}

/// Decodes a datagram produced by [`encode_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the datagram is truncated, has an unknown
/// version, or contains an unknown tag.
pub fn decode_message(mut data: &[u8]) -> Result<Message, DecodeError> {
    if data.remaining() < 18 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    let from = NodeId::new(data.get_u64_le());
    let epoch = data.get_u64_le();
    let body = match tag {
        2 => MessageBody::EpochNotice,
        3 => MessageBody::Refuse,
        0 | 1 => {
            if data.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let count = data.get_u16_le() as usize;
            let mut states = Vec::with_capacity(count);
            for _ in 0..count {
                if data.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                match data.get_u8() {
                    0 => {
                        if data.remaining() < 8 {
                            return Err(DecodeError::Truncated);
                        }
                        states.push(InstanceState::Scalar(data.get_f64_le()));
                    }
                    1 => {
                        if data.remaining() < 2 {
                            return Err(DecodeError::Truncated);
                        }
                        let entries = data.get_u16_le() as usize;
                        if data.remaining() < entries * 16 {
                            return Err(DecodeError::Truncated);
                        }
                        let mut pairs = Vec::with_capacity(entries);
                        for _ in 0..entries {
                            let leader = data.get_u64_le();
                            let estimate = data.get_f64_le();
                            pairs.push((leader, estimate));
                        }
                        states.push(InstanceState::Map(InstanceMap::from_entries(pairs)));
                    }
                    t => return Err(DecodeError::BadTag(t)),
                }
            }
            if tag == 0 {
                MessageBody::Request(states)
            } else {
                MessageBody::Reply(states)
            }
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok(Message { from, epoch, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) {
        let encoded = encode_message(msg);
        let decoded = decode_message(&encoded).expect("decode");
        assert_eq!(&decoded, msg);
    }

    #[test]
    fn round_trip_scalar_request() {
        round_trip(&Message::request(
            NodeId::new(7),
            42,
            vec![InstanceState::Scalar(3.25), InstanceState::Scalar(-1.5)],
        ));
    }

    #[test]
    fn round_trip_map_reply() {
        let map = InstanceMap::from_entries([(3, 0.125), (900, 1.0), (u64::MAX, 1e-30)]);
        round_trip(&Message::reply(
            NodeId::new(u64::MAX),
            u64::MAX,
            vec![InstanceState::Map(map), InstanceState::Scalar(0.0)],
        ));
    }

    #[test]
    fn round_trip_control_messages() {
        round_trip(&Message::epoch_notice(NodeId::new(0), 0));
        round_trip(&Message::refuse(NodeId::new(1), 9));
    }

    #[test]
    fn round_trip_empty_states_and_map() {
        round_trip(&Message::request(NodeId::new(2), 1, vec![]));
        round_trip(&Message::request(
            NodeId::new(2),
            1,
            vec![InstanceState::Map(InstanceMap::new())],
        ));
    }

    #[test]
    fn round_trip_special_floats() {
        round_trip(&Message::request(
            NodeId::new(3),
            2,
            vec![
                InstanceState::Scalar(f64::MAX),
                InstanceState::Scalar(f64::MIN_POSITIVE),
                InstanceState::Scalar(f64::INFINITY),
            ],
        ));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let msg = Message::request(
            NodeId::new(7),
            42,
            vec![
                InstanceState::Scalar(1.0),
                InstanceState::Map(InstanceMap::from_entries([(1, 0.5)])),
            ],
        );
        let encoded = encode_message(&msg);
        for len in 0..encoded.len() {
            let err = decode_message(&encoded[..len]).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "prefix of length {len}");
        }
        assert!(decode_message(&encoded).is_ok());
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut encoded = encode_message(&Message::refuse(NodeId::new(1), 0));
        encoded[0] = 99;
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn decode_rejects_bad_tags() {
        let mut encoded = encode_message(&Message::refuse(NodeId::new(1), 0));
        encoded[1] = 9;
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadTag(9)));

        let mut encoded = encode_message(&Message::request(
            NodeId::new(1),
            0,
            vec![InstanceState::Scalar(1.0)],
        ));
        encoded[20] = 7; // the state tag
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn encoding_is_compact() {
        // The paper argues COUNT messages stay small ("a few hundred
        // bytes" for 20 instances); verify the format's arithmetic.
        let map = InstanceMap::from_entries((0..20u64).map(|l| (l, 1.0 / 20.0)));
        let msg = Message::request(NodeId::new(1), 5, vec![InstanceState::Map(map)]);
        let encoded = encode_message(&msg);
        assert!(encoded.len() < 350, "encoded size {}", encoded.len());
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadVersion(3).to_string().contains('3'));
        assert!(DecodeError::BadTag(9).to_string().contains('9'));
    }
}
