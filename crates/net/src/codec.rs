//! Binary wire format.
//!
//! One datagram carries one [`Message`]. The format is little-endian,
//! versioned, and deliberately simple:
//!
//! ```text
//! u8  version (=4; 2 is reserved for the mux routing prefix below)
//! u8  body tag: 0 request, 1 reply, 2 epoch notice, 3 refuse,
//!               4 view exchange, 5 view reply, 6 join, 7 introduce,
//!               8 delta view exchange, 9 delta view reply,
//!               10 piggybacked aggregation,
//!               11 catalog gossip, 12 query aggregation,
//!               13 rpc request, 14 rpc response
//! -- aggregation bodies (tags 0-3) --
//! u64 sender id
//! u64 epoch
//! -- request/reply only --
//! u16 instance count
//!   per instance: u8 state tag (0 scalar, 1 map)
//!     scalar: f64
//!     map:    u16 entry count, then (u64 leader, f64 estimate)*
//! -- membership bodies (tags 4-5 full view, 8-9 delta view) --
//! u32 sender id
//! u16 descriptor count, then (u32 node, u32 timestamp)*
//! -- bootstrap bodies (tags 6-7) --
//! u32 sender id
//! -- introduce (tag 7) only --
//! u16 entry count, then per entry:
//!   u32 node, u32 timestamp,
//!   u8 addr kind (0 none, 4 IPv4, 6 IPv6), [ip bytes, u16 port]
//! -- piggybacked aggregation (tag 10) --
//! u32 sender membership id
//! u8 descriptor count, then (u32 node, u32 timestamp)*
//! u8 address count, then per entry:
//!   u32 node, u8 addr kind (4 IPv4, 6 IPv6), ip bytes, u16 port
//! ... then one complete aggregation message (version + tag 0-3) ...
//! -- catalog gossip (tag 11) --
//! u64 sender id
//! u16 entry count, then per entry:
//!   descriptor (u8 name len, name bytes, u8 kind code, u32 gamma,
//!               u64 cycle length, u64 timeout, u64 ttl,
//!               f64 default value, u32 admission rate, u32 burst)
//!   u32 entry version, u8 deleted, u64 installed at, u64 expires at
//! -- query aggregation (tag 12) --
//! u8 name len, name bytes
//! ... then one complete aggregation message (version + tag 0-3) ...
//! -- rpc request (tag 13) --
//! u64 request id
//! u8 op (0 install, 1 remove, 2 submit, 3 read)
//!   install: descriptor (as in tag 11)
//!   remove/read: u8 name len, name bytes
//!   submit: u8 name len, name bytes, f64 value
//! -- rpc response (tag 14) --
//! u64 request id, u8 status, f64 estimate, u64 epoch
//! ```
//!
//! Delta view messages (tags 8/9) share the full-view body layout; the
//! tag alone tells the receiver whether the payload is the sender's whole
//! view (replace your record of what it holds) or only the descriptors
//! you were not known to hold (extend it). Tag 10 lets a membership
//! trailer ride on an aggregation datagram already leaving the socket —
//! descriptors keep views fresh between gossip cycles and the optional
//! addresses spread the address book without introducer round trips.
//!
//! The multiplexed runtime ([`crate::mux`]) hosts many protocol nodes
//! behind one socket, so its datagrams carry a routing prefix in front of
//! the regular message ([`encode_mux_frame`]):
//!
//! ```text
//! u8  mux version (=2)
//! u64 destination virtual-node id
//! ... the v1 message bytes ...
//! ```
//!
//! Every encoder has an exact size twin (`*_len`) so traffic models can
//! charge wire bytes without materializing buffers; the property suite in
//! `tests/properties.rs` pins `encoded_len() == encode().len()`.

use crate::directory::{DirectoryPayload, IntroduceEntry, Piggyback};
use epidemic_aggregation::value::InstanceMap;
use epidemic_aggregation::{InstanceState, Message, MessageBody};
use epidemic_common::NodeId;
use epidemic_newscast::node::ViewPayload;
use epidemic_newscast::Descriptor;
use epidemic_query::descriptor::{kind_code, kind_from_code, AdmissionConfig, MAX_NAME_LEN};
use epidemic_query::{CatalogEntry, QueryDescriptor, RpcRequest, RpcResponse, RpcStatus};
use std::error::Error;
use std::fmt;
use std::net::{IpAddr, SocketAddr};

/// Wire format version emitted by [`encode_message`]. Version 1 lacked
/// the delta view and piggyback tags, version 3 the query plane
/// (tags 11–14); version 2 is permanently reserved for the mux routing
/// prefix so the two framings can never be confused.
pub const WIRE_VERSION: u8 = 4;

/// Wire version of the virtual-node-routed frames emitted by
/// [`encode_mux_frame`]. Distinct from [`WIRE_VERSION`] so a mux socket
/// and a plain socket can never misparse each other's datagrams.
pub const MUX_WIRE_VERSION: u8 = 2;

/// Error raised when a datagram cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The datagram was shorter than the fixed header.
    Truncated,
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown body or state tag.
    BadTag(u8),
    /// A carried string (query name) was not valid UTF-8.
    BadName,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "datagram truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
            DecodeError::BadName => write!(f, "query name is not valid UTF-8"),
        }
    }
}

impl Error for DecodeError {}

/// Little-endian write helpers over a plain byte vector (stand-in for the
/// `bytes` crate's `BufMut`, which is unavailable offline).
trait WireWrite {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f64_le(&mut self, v: f64);
}

impl WireWrite for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian read helpers that advance a byte slice (stand-in for the
/// `bytes` crate's `Buf`). Callers must check `remaining()` first; the
/// getters panic on underflow like their `bytes` counterparts.
trait WireRead {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f64_le(&mut self) -> f64;
}

impl WireRead for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes(head.try_into().unwrap())
    }
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes(head.try_into().unwrap())
    }
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes(head.try_into().unwrap())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Encodes a message into a fresh buffer.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u8(WIRE_VERSION);
    let (tag, states): (u8, Option<&[InstanceState]>) = match &msg.body {
        MessageBody::Request(s) => (0, Some(s)),
        MessageBody::Reply(s) => (1, Some(s)),
        MessageBody::EpochNotice => (2, None),
        MessageBody::Refuse => (3, None),
    };
    buf.put_u8(tag);
    buf.put_u64_le(msg.from.as_u64());
    buf.put_u64_le(msg.epoch);
    if let Some(states) = states {
        buf.put_u16_le(states.len() as u16);
        for state in states {
            match state {
                InstanceState::Scalar(v) => {
                    buf.put_u8(0);
                    buf.put_f64_le(*v);
                }
                InstanceState::Map(map) => {
                    buf.put_u8(1);
                    buf.put_u16_le(map.len() as u16);
                    for (leader, estimate) in map.iter() {
                        buf.put_u64_le(leader);
                        buf.put_f64_le(estimate);
                    }
                }
            }
        }
    }
    buf
}

/// Decodes a datagram produced by [`encode_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the datagram is truncated, has an unknown
/// version, or contains an unknown tag.
pub fn decode_message(mut data: &[u8]) -> Result<Message, DecodeError> {
    if data.remaining() < 18 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    let from = NodeId::new(data.get_u64_le());
    let epoch = data.get_u64_le();
    let body = match tag {
        2 => MessageBody::EpochNotice,
        3 => MessageBody::Refuse,
        0 | 1 => {
            if data.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let count = data.get_u16_le() as usize;
            let mut states = Vec::with_capacity(count);
            for _ in 0..count {
                if data.remaining() < 1 {
                    return Err(DecodeError::Truncated);
                }
                match data.get_u8() {
                    0 => {
                        if data.remaining() < 8 {
                            return Err(DecodeError::Truncated);
                        }
                        states.push(InstanceState::Scalar(data.get_f64_le()));
                    }
                    1 => {
                        if data.remaining() < 2 {
                            return Err(DecodeError::Truncated);
                        }
                        let entries = data.get_u16_le() as usize;
                        if data.remaining() < entries * 16 {
                            return Err(DecodeError::Truncated);
                        }
                        let mut pairs = Vec::with_capacity(entries);
                        for _ in 0..entries {
                            let leader = data.get_u64_le();
                            let estimate = data.get_f64_le();
                            pairs.push((leader, estimate));
                        }
                        states.push(InstanceState::Map(InstanceMap::from_entries(pairs)));
                    }
                    t => return Err(DecodeError::BadTag(t)),
                }
            }
            if tag == 0 {
                MessageBody::Request(states)
            } else {
                MessageBody::Reply(states)
            }
        }
        t => return Err(DecodeError::BadTag(t)),
    };
    Ok(Message { from, epoch, body })
}

/// Exact encoded size of [`encode_message`]'s output for `msg`, without
/// allocating. Lets traffic models charge wire bytes per message.
pub fn encoded_len(msg: &Message) -> usize {
    let states: Option<&[InstanceState]> = match &msg.body {
        MessageBody::Request(s) | MessageBody::Reply(s) => Some(s),
        MessageBody::EpochNotice | MessageBody::Refuse => None,
    };
    // version + tag + sender + epoch
    let mut len = 1 + 1 + 8 + 8;
    if let Some(states) = states {
        len += 2; // instance count
        for state in states {
            len += 1; // state tag
            len += match state {
                InstanceState::Scalar(_) => 8,
                InstanceState::Map(map) => 2 + 16 * map.len(),
            };
        }
    }
    len
}

/// Encodes a NEWSCAST view-exchange payload. `reply` distinguishes the
/// passive side's answer (absorbed without a response) from the
/// initiator's opening message; `delta` marks a payload carrying only the
/// descriptors the partner was not known to hold (tags 8/9) instead of
/// the sender's full view (tags 4/5).
pub fn encode_view_message(payload: &ViewPayload, reply: bool, delta: bool) -> Vec<u8> {
    let mut buf = Vec::with_capacity(view_encoded_len(payload));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(match (delta, reply) {
        (false, false) => 4,
        (false, true) => 5,
        (true, false) => 8,
        (true, true) => 9,
    });
    buf.put_u32_le(payload.from);
    buf.put_u16_le(payload.descriptors.len() as u16);
    for d in &payload.descriptors {
        buf.put_u32_le(d.node);
        buf.put_u32_le(d.timestamp);
    }
    buf
}

/// Decodes a datagram produced by [`encode_view_message`], returning the
/// payload plus the `(reply, delta)` flags carried by the tag.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version, or a tag
/// that is not a view exchange.
pub fn decode_view_message(mut data: &[u8]) -> Result<(ViewPayload, bool, bool), DecodeError> {
    if data.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let (reply, delta) = match data.get_u8() {
        4 => (false, false),
        5 => (true, false),
        8 => (false, true),
        9 => (true, true),
        t => return Err(DecodeError::BadTag(t)),
    };
    let from = data.get_u32_le();
    let count = data.get_u16_le() as usize;
    if data.remaining() < count * 8 {
        return Err(DecodeError::Truncated);
    }
    let mut descriptors = Vec::with_capacity(count);
    for _ in 0..count {
        let node = data.get_u32_le();
        let timestamp = data.get_u32_le();
        descriptors.push(Descriptor::new(node, timestamp));
    }
    Ok((ViewPayload { from, descriptors }, reply, delta))
}

/// Exact encoded size of [`encode_view_message`]'s output for `payload`.
pub fn view_encoded_len(payload: &ViewPayload) -> usize {
    view_message_len(payload.descriptors.len())
}

/// Encoded size of a view message carrying `descriptors` descriptors.
///
/// A full NEWSCAST exchange over a view of size `c` costs
/// `2 * view_message_len(c + 1)` wire bytes: each side sends its view plus
/// a fresh self-descriptor.
pub const fn view_message_len(descriptors: usize) -> usize {
    // version + tag + sender(u32) + count(u16) + (node, timestamp) pairs
    1 + 1 + 4 + 2 + 8 * descriptors
}

/// Encodes a bootstrap join request (tag 6): "introduce me, `from`".
pub fn encode_join_message(from: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(join_message_len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(6);
    buf.put_u32_le(from);
    buf
}

/// Exact encoded size of a join message.
pub const fn join_message_len() -> usize {
    1 + 1 + 4 // version + tag + sender
}

/// Encodes a bootstrap introduction (tag 7): a snapshot of the
/// introducer's view with optional peer addresses.
pub fn encode_introduce_message(from: u32, peers: &[IntroduceEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(introduce_message_len(peers));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(7);
    buf.put_u32_le(from);
    buf.put_u16_le(peers.len() as u16);
    for entry in peers {
        buf.put_u32_le(entry.node);
        buf.put_u32_le(entry.timestamp);
        match entry.addr {
            None => buf.put_u8(0),
            Some(SocketAddr::V4(a)) => {
                buf.put_u8(4);
                buf.extend_from_slice(&a.ip().octets());
                buf.put_u16_le(a.port());
            }
            Some(SocketAddr::V6(a)) => {
                buf.put_u8(6);
                buf.extend_from_slice(&a.ip().octets());
                buf.put_u16_le(a.port());
            }
        }
    }
    buf
}

/// Exact encoded size of [`encode_introduce_message`]'s output.
pub fn introduce_message_len(peers: &[IntroduceEntry]) -> usize {
    // version + tag + sender + entry count
    let mut len = 1 + 1 + 4 + 2;
    for entry in peers {
        len += 4 + 4 + 1; // node + timestamp + addr kind
        len += match entry.addr {
            None => 0,
            Some(SocketAddr::V4(_)) => 4 + 2,
            Some(SocketAddr::V6(_)) => 16 + 2,
        };
    }
    len
}

/// Encodes any membership-plane payload (tags 4–9).
pub fn encode_directory_message(payload: &DirectoryPayload) -> Vec<u8> {
    match payload {
        DirectoryPayload::View { view, reply, delta } => encode_view_message(view, *reply, *delta),
        DirectoryPayload::Join { from } => encode_join_message(*from),
        DirectoryPayload::Introduce { from, peers } => encode_introduce_message(*from, peers),
    }
}

/// Exact encoded size of [`encode_directory_message`]'s output.
pub fn directory_encoded_len(payload: &DirectoryPayload) -> usize {
    match payload {
        DirectoryPayload::View { view, .. } => view_encoded_len(view),
        DirectoryPayload::Join { .. } => join_message_len(),
        DirectoryPayload::Introduce { peers, .. } => introduce_message_len(peers),
    }
}

/// Decodes a membership-plane datagram (tags 4–9).
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version, or a tag
/// outside the membership plane.
pub fn decode_directory_message(data: &[u8]) -> Result<DirectoryPayload, DecodeError> {
    if data.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    match data[1] {
        6 | 7 => {
            let mut data = data;
            if data.remaining() < join_message_len() {
                return Err(DecodeError::Truncated);
            }
            let version = data.get_u8();
            if version != WIRE_VERSION {
                return Err(DecodeError::BadVersion(version));
            }
            let tag = data.get_u8();
            let from = data.get_u32_le();
            if tag == 6 {
                return Ok(DirectoryPayload::Join { from });
            }
            if data.remaining() < 2 {
                return Err(DecodeError::Truncated);
            }
            let count = data.get_u16_le() as usize;
            let mut peers = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                if data.remaining() < 9 {
                    return Err(DecodeError::Truncated);
                }
                let node = data.get_u32_le();
                let timestamp = data.get_u32_le();
                let addr = match data.get_u8() {
                    0 => None,
                    4 => {
                        if data.remaining() < 6 {
                            return Err(DecodeError::Truncated);
                        }
                        let mut octets = [0u8; 4];
                        for b in &mut octets {
                            *b = data.get_u8();
                        }
                        let port = data.get_u16_le();
                        Some(SocketAddr::new(IpAddr::from(octets), port))
                    }
                    6 => {
                        if data.remaining() < 18 {
                            return Err(DecodeError::Truncated);
                        }
                        let mut octets = [0u8; 16];
                        for b in &mut octets {
                            *b = data.get_u8();
                        }
                        let port = data.get_u16_le();
                        Some(SocketAddr::new(IpAddr::from(octets), port))
                    }
                    t => return Err(DecodeError::BadTag(t)),
                };
                peers.push(IntroduceEntry {
                    node,
                    timestamp,
                    addr,
                });
            }
            Ok(DirectoryPayload::Introduce { from, peers })
        }
        _ => {
            // Tags 4/5/8/9, plus version/tag error reporting for the rest.
            let (view, reply, delta) = decode_view_message(data)?;
            Ok(DirectoryPayload::View { view, reply, delta })
        }
    }
}

/// Encodes an aggregation message with a piggybacked membership trailer
/// (tag 10): a few descriptors (and optionally their addresses) riding on
/// a datagram that was leaving the socket anyway.
pub fn encode_piggyback_message(msg: &Message, piggyback: &Piggyback) -> Vec<u8> {
    let mut buf = Vec::with_capacity(piggyback_message_len(msg, piggyback));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(10);
    buf.put_u32_le(piggyback.from);
    buf.put_u8(piggyback.descriptors.len() as u8);
    for d in &piggyback.descriptors {
        buf.put_u32_le(d.node);
        buf.put_u32_le(d.timestamp);
    }
    buf.put_u8(piggyback.addrs.len() as u8);
    for &(node, addr) in &piggyback.addrs {
        buf.put_u32_le(node);
        match addr {
            SocketAddr::V4(a) => {
                buf.put_u8(4);
                buf.extend_from_slice(&a.ip().octets());
                buf.put_u16_le(a.port());
            }
            SocketAddr::V6(a) => {
                buf.put_u8(6);
                buf.extend_from_slice(&a.ip().octets());
                buf.put_u16_le(a.port());
            }
        }
    }
    buf.extend_from_slice(&encode_message(msg));
    buf
}

/// Decodes a datagram produced by [`encode_piggyback_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version or tag, or
/// when the carried aggregation message fails to decode.
pub fn decode_piggyback_message(mut data: &[u8]) -> Result<(Message, Piggyback), DecodeError> {
    if data.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    if tag != 10 {
        return Err(DecodeError::BadTag(tag));
    }
    let from = data.get_u32_le();
    let ndesc = data.get_u8() as usize;
    if data.remaining() < ndesc * 8 + 1 {
        return Err(DecodeError::Truncated);
    }
    let mut descriptors = Vec::with_capacity(ndesc);
    for _ in 0..ndesc {
        let node = data.get_u32_le();
        let timestamp = data.get_u32_le();
        descriptors.push(Descriptor::new(node, timestamp));
    }
    let naddr = data.get_u8() as usize;
    let mut addrs = Vec::with_capacity(naddr);
    for _ in 0..naddr {
        if data.remaining() < 5 {
            return Err(DecodeError::Truncated);
        }
        let node = data.get_u32_le();
        let addr = match data.get_u8() {
            4 => {
                if data.remaining() < 6 {
                    return Err(DecodeError::Truncated);
                }
                let mut octets = [0u8; 4];
                for b in &mut octets {
                    *b = data.get_u8();
                }
                let port = data.get_u16_le();
                SocketAddr::new(IpAddr::from(octets), port)
            }
            6 => {
                if data.remaining() < 18 {
                    return Err(DecodeError::Truncated);
                }
                let mut octets = [0u8; 16];
                for b in &mut octets {
                    *b = data.get_u8();
                }
                let port = data.get_u16_le();
                SocketAddr::new(IpAddr::from(octets), port)
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        addrs.push((node, addr));
    }
    let message = decode_message(data)?;
    Ok((
        message,
        Piggyback {
            from,
            descriptors,
            addrs,
        },
    ))
}

/// Exact encoded size of [`encode_piggyback_message`]'s output.
pub fn piggyback_message_len(msg: &Message, piggyback: &Piggyback) -> usize {
    piggyback_trailer_len(piggyback) + encoded_len(msg)
}

/// Wire bytes the membership trailer adds on top of the plain aggregation
/// message — the share traffic accounting charges to the membership
/// plane.
pub fn piggyback_trailer_len(piggyback: &Piggyback) -> usize {
    // version + tag + sender + descriptor count + descriptors + addr count
    let mut len = 1 + 1 + 4 + 1 + 8 * piggyback.descriptors.len() + 1;
    for &(_, addr) in &piggyback.addrs {
        len += 4 + 1; // node + addr kind
        len += match addr {
            SocketAddr::V4(_) => 4 + 2,
            SocketAddr::V6(_) => 16 + 2,
        };
    }
    len
}

// ---------------------------------------------------------------------
// Query plane (tags 11–14)
// ---------------------------------------------------------------------

fn put_name(buf: &mut Vec<u8>, name: &str) {
    debug_assert!(name.len() <= MAX_NAME_LEN);
    buf.put_u8(name.len() as u8);
    buf.extend_from_slice(name.as_bytes());
}

fn get_name(data: &mut &[u8]) -> Result<String, DecodeError> {
    if data.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    let len = data.get_u8() as usize;
    if data.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let (bytes, rest) = data.split_at(len);
    let name = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadName)?;
    *data = rest;
    Ok(name.to_string())
}

fn put_descriptor(buf: &mut Vec<u8>, d: &QueryDescriptor) {
    put_name(buf, &d.name);
    buf.put_u8(kind_code(d.kind));
    buf.put_u32_le(d.gamma);
    buf.put_u64_le(d.cycle_length);
    buf.put_u64_le(d.timeout);
    buf.put_u64_le(d.ttl_ms);
    buf.put_f64_le(d.default_value);
    buf.put_u32_le(d.admission.rate_per_sec);
    buf.put_u32_le(d.admission.burst);
}

fn get_descriptor(data: &mut &[u8]) -> Result<QueryDescriptor, DecodeError> {
    let name = get_name(data)?;
    if data.remaining() < 1 + 4 + 8 + 8 + 8 + 8 + 4 + 4 {
        return Err(DecodeError::Truncated);
    }
    let kind_byte = data.get_u8();
    let kind = kind_from_code(kind_byte).ok_or(DecodeError::BadTag(kind_byte))?;
    let mut descriptor = QueryDescriptor::new(name, kind);
    descriptor.gamma = data.get_u32_le();
    descriptor.cycle_length = data.get_u64_le();
    descriptor.timeout = data.get_u64_le();
    descriptor.ttl_ms = data.get_u64_le();
    descriptor.default_value = data.get_f64_le();
    let rate_per_sec = data.get_u32_le();
    let burst = data.get_u32_le();
    descriptor.admission = if rate_per_sec == 0 && burst == 0 {
        AdmissionConfig::UNLIMITED
    } else {
        AdmissionConfig::limited(rate_per_sec, burst)
    };
    Ok(descriptor)
}

fn descriptor_len(d: &QueryDescriptor) -> usize {
    // name len + name + kind + gamma + cycle + timeout + ttl + default
    // + rate + burst
    1 + d.name.len() + 1 + 4 + 8 + 8 + 8 + 8 + 4 + 4
}

/// Encodes a catalog gossip push (tag 11): the sender's full entry list,
/// tombstones included.
pub fn encode_catalog_message(from: NodeId, entries: &[CatalogEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(catalog_message_len(entries));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(11);
    buf.put_u64_le(from.as_u64());
    buf.put_u16_le(entries.len() as u16);
    for entry in entries {
        put_descriptor(&mut buf, &entry.descriptor);
        buf.put_u32_le(entry.version);
        buf.put_u8(u8::from(entry.deleted));
        buf.put_u64_le(entry.installed_at);
        buf.put_u64_le(entry.expires_at);
    }
    buf
}

/// Decodes a datagram produced by [`encode_catalog_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version or tag, an
/// unknown aggregate kind, or a malformed query name.
pub fn decode_catalog_message(mut data: &[u8]) -> Result<(NodeId, Vec<CatalogEntry>), DecodeError> {
    if data.remaining() < 12 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    if tag != 11 {
        return Err(DecodeError::BadTag(tag));
    }
    let from = NodeId::new(data.get_u64_le());
    let count = data.get_u16_le() as usize;
    let mut entries = Vec::with_capacity(count.min(256));
    for _ in 0..count {
        let descriptor = get_descriptor(&mut data)?;
        if data.remaining() < 4 + 1 + 8 + 8 {
            return Err(DecodeError::Truncated);
        }
        let entry_version = data.get_u32_le();
        let deleted = data.get_u8() != 0;
        let installed_at = data.get_u64_le();
        let expires_at = data.get_u64_le();
        entries.push(CatalogEntry {
            descriptor,
            version: entry_version,
            deleted,
            installed_at,
            expires_at,
        });
    }
    Ok((from, entries))
}

/// Exact encoded size of [`encode_catalog_message`]'s output.
pub fn catalog_message_len(entries: &[CatalogEntry]) -> usize {
    // version + tag + sender + entry count
    let mut len = 1 + 1 + 8 + 2;
    for entry in entries {
        // descriptor + version + deleted + installed_at + expires_at
        len += descriptor_len(&entry.descriptor) + 4 + 1 + 8 + 8;
    }
    len
}

/// Encodes a query-plane aggregation frame (tag 12): the owning query's
/// name followed by a complete aggregation message, so concurrent named
/// queries multiplex over one socket without interfering.
pub fn encode_query_message(query: &str, msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(query_message_len(query, msg));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(12);
    put_name(&mut buf, query);
    buf.extend_from_slice(&encode_message(msg));
    buf
}

/// Decodes a datagram produced by [`encode_query_message`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version or tag, a
/// malformed query name, or when the carried message fails to decode.
pub fn decode_query_message(mut data: &[u8]) -> Result<(String, Message), DecodeError> {
    if data.remaining() < 3 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    if tag != 12 {
        return Err(DecodeError::BadTag(tag));
    }
    let query = get_name(&mut data)?;
    let message = decode_message(data)?;
    Ok((query, message))
}

/// Exact encoded size of [`encode_query_message`]'s output.
pub fn query_message_len(query: &str, msg: &Message) -> usize {
    // version + tag + name len + name + carried message
    1 + 1 + 1 + query.len() + encoded_len(msg)
}

/// Encodes a client RPC request (tag 13).
pub fn encode_rpc_request(request: &RpcRequest) -> Vec<u8> {
    let mut buf = Vec::with_capacity(rpc_request_len(request));
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(13);
    buf.put_u64_le(request.id());
    buf.put_u8(request.op_code());
    match request {
        RpcRequest::Install { descriptor, .. } => put_descriptor(&mut buf, descriptor),
        RpcRequest::Remove { name, .. } | RpcRequest::Read { name, .. } => put_name(&mut buf, name),
        RpcRequest::Submit { name, value, .. } => {
            put_name(&mut buf, name);
            buf.put_f64_le(*value);
        }
    }
    buf
}

/// Decodes a datagram produced by [`encode_rpc_request`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version, tag, op,
/// or aggregate kind, or a malformed query name.
pub fn decode_rpc_request(mut data: &[u8]) -> Result<RpcRequest, DecodeError> {
    if data.remaining() < 11 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    if tag != 13 {
        return Err(DecodeError::BadTag(tag));
    }
    let id = data.get_u64_le();
    match data.get_u8() {
        0 => Ok(RpcRequest::Install {
            id,
            descriptor: get_descriptor(&mut data)?,
        }),
        1 => Ok(RpcRequest::Remove {
            id,
            name: get_name(&mut data)?,
        }),
        2 => {
            let name = get_name(&mut data)?;
            if data.remaining() < 8 {
                return Err(DecodeError::Truncated);
            }
            Ok(RpcRequest::Submit {
                id,
                name,
                value: data.get_f64_le(),
            })
        }
        3 => Ok(RpcRequest::Read {
            id,
            name: get_name(&mut data)?,
        }),
        op => Err(DecodeError::BadTag(op)),
    }
}

/// Exact encoded size of [`encode_rpc_request`]'s output.
pub fn rpc_request_len(request: &RpcRequest) -> usize {
    // version + tag + request id + op
    let header = 1 + 1 + 8 + 1;
    header
        + match request {
            RpcRequest::Install { descriptor, .. } => descriptor_len(descriptor),
            RpcRequest::Remove { name, .. } | RpcRequest::Read { name, .. } => 1 + name.len(),
            RpcRequest::Submit { name, .. } => 1 + name.len() + 8,
        }
}

/// Encodes a client RPC response (tag 14).
pub fn encode_rpc_response(response: &RpcResponse) -> Vec<u8> {
    let mut buf = Vec::with_capacity(rpc_response_len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(14);
    buf.put_u64_le(response.id);
    buf.put_u8(response.status as u8);
    buf.put_f64_le(response.estimate);
    buf.put_u64_le(response.epoch);
    buf
}

/// Decodes a datagram produced by [`encode_rpc_response`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, an unknown version or tag, or
/// an unknown status code.
pub fn decode_rpc_response(mut data: &[u8]) -> Result<RpcResponse, DecodeError> {
    if data.remaining() < rpc_response_len() {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let tag = data.get_u8();
    if tag != 14 {
        return Err(DecodeError::BadTag(tag));
    }
    let id = data.get_u64_le();
    let status_byte = data.get_u8();
    let status = RpcStatus::from_code(status_byte).ok_or(DecodeError::BadTag(status_byte))?;
    let estimate = data.get_f64_le();
    let epoch = data.get_u64_le();
    Ok(RpcResponse {
        id,
        status,
        estimate,
        epoch,
    })
}

/// Exact encoded size of [`encode_rpc_response`]'s output (responses are
/// fixed-size).
pub const fn rpc_response_len() -> usize {
    1 + 1 + 8 + 1 + 8 + 8 // version + tag + id + status + estimate + epoch
}

/// Wraps an encoded catalog gossip push in a mux routing frame addressed
/// to the virtual node `to`.
pub fn encode_mux_catalog_frame(to: NodeId, from: NodeId, entries: &[CatalogEntry]) -> Vec<u8> {
    mux_wrap(
        to,
        &encode_catalog_message(from, entries),
        mux_catalog_frame_len(entries),
    )
}

/// Exact encoded size of [`encode_mux_catalog_frame`]'s output.
pub fn mux_catalog_frame_len(entries: &[CatalogEntry]) -> usize {
    1 + 8 + catalog_message_len(entries)
}

/// Wraps an encoded query aggregation frame in a mux routing frame
/// addressed to the virtual node `to`.
pub fn encode_mux_query_frame(to: NodeId, query: &str, msg: &Message) -> Vec<u8> {
    mux_wrap(
        to,
        &encode_query_message(query, msg),
        mux_query_frame_len(query, msg),
    )
}

/// Exact encoded size of [`encode_mux_query_frame`]'s output.
pub fn mux_query_frame_len(query: &str, msg: &Message) -> usize {
    1 + 8 + query_message_len(query, msg)
}

/// Any decodable datagram body: an aggregation-plane [`Message`]
/// (tags 0–3), a membership-plane [`DirectoryPayload`] (tags 4–9), an
/// aggregation message with a piggybacked membership trailer (tag 10), or
/// query-plane traffic (tags 11–14).
#[derive(Debug, Clone, PartialEq)]
pub enum WirePayload {
    /// Aggregation protocol traffic.
    Aggregation(Message),
    /// Membership / bootstrap traffic.
    Directory(DirectoryPayload),
    /// Aggregation traffic with a membership trailer riding along.
    Piggybacked(Message, Piggyback),
    /// Query catalog gossip (tag 11).
    Catalog {
        /// Sending node.
        from: NodeId,
        /// The sender's full entry list, tombstones included.
        entries: Vec<CatalogEntry>,
    },
    /// A named query's aggregation frame (tag 12).
    Query {
        /// Owning query.
        query: String,
        /// The carried aggregation message.
        message: Message,
    },
    /// A client RPC request (tag 13).
    Rpc(RpcRequest),
    /// A client RPC response (tag 14).
    RpcReply(RpcResponse),
}

/// Decodes any datagram, routing by plane (tags 0–3 vs 4–9 vs 10 vs
/// 11–14).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the datagram is truncated, has an unknown
/// version, or carries an unknown tag.
pub fn decode_datagram(data: &[u8]) -> Result<WirePayload, DecodeError> {
    if data.len() < 2 {
        return Err(DecodeError::Truncated);
    }
    if data[0] != WIRE_VERSION {
        return Err(DecodeError::BadVersion(data[0]));
    }
    match data[1] {
        0..=3 => Ok(WirePayload::Aggregation(decode_message(data)?)),
        4..=9 => Ok(WirePayload::Directory(decode_directory_message(data)?)),
        10 => {
            let (message, piggyback) = decode_piggyback_message(data)?;
            Ok(WirePayload::Piggybacked(message, piggyback))
        }
        11 => {
            let (from, entries) = decode_catalog_message(data)?;
            Ok(WirePayload::Catalog { from, entries })
        }
        12 => {
            let (query, message) = decode_query_message(data)?;
            Ok(WirePayload::Query { query, message })
        }
        13 => Ok(WirePayload::Rpc(decode_rpc_request(data)?)),
        14 => Ok(WirePayload::RpcReply(decode_rpc_response(data)?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Wraps an encoded v1 message in a mux routing frame addressed to the
/// virtual node `to`. The receiving process reads the prefix, routes the
/// remainder to `to`'s state machine, and decodes it with
/// [`decode_message`].
pub fn encode_mux_frame(to: NodeId, msg: &Message) -> Vec<u8> {
    mux_wrap(to, &encode_message(msg), mux_frame_len(msg))
}

/// Wraps an encoded membership payload in a mux routing frame addressed
/// to the virtual node `to` (the membership twin of
/// [`encode_mux_frame`]).
pub fn encode_mux_directory_frame(to: NodeId, payload: &DirectoryPayload) -> Vec<u8> {
    mux_wrap(
        to,
        &encode_directory_message(payload),
        mux_directory_frame_len(payload),
    )
}

/// Exact encoded size of [`encode_mux_directory_frame`]'s output.
pub fn mux_directory_frame_len(payload: &DirectoryPayload) -> usize {
    1 + 8 + directory_encoded_len(payload)
}

/// Wraps a piggybacked aggregation message (tag 10) in a mux routing
/// frame addressed to the virtual node `to`.
pub fn encode_mux_piggyback_frame(to: NodeId, msg: &Message, piggyback: &Piggyback) -> Vec<u8> {
    mux_wrap(
        to,
        &encode_piggyback_message(msg, piggyback),
        mux_piggyback_frame_len(msg, piggyback),
    )
}

/// Exact encoded size of [`encode_mux_piggyback_frame`]'s output.
pub fn mux_piggyback_frame_len(msg: &Message, piggyback: &Piggyback) -> usize {
    1 + 8 + piggyback_message_len(msg, piggyback)
}

fn mux_wrap(to: NodeId, body: &[u8], capacity: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(capacity);
    buf.put_u8(MUX_WIRE_VERSION);
    buf.put_u64_le(to.as_u64());
    buf.extend_from_slice(body);
    buf
}

/// Decodes a mux-framed datagram into the destination virtual-node id
/// and the carried payload, whichever plane it belongs to.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the routing prefix is truncated or has
/// the wrong version, or if the carried payload fails to decode.
pub fn decode_mux_datagram(mut data: &[u8]) -> Result<(NodeId, WirePayload), DecodeError> {
    if data.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != MUX_WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let to = NodeId::new(data.get_u64_le());
    let payload = decode_datagram(data)?;
    Ok((to, payload))
}

/// Decodes a datagram produced by [`encode_mux_frame`] into the
/// destination virtual-node id and the carried message.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the routing prefix is truncated or has the
/// wrong version, or if the carried message fails to decode.
pub fn decode_mux_frame(mut data: &[u8]) -> Result<(NodeId, Message), DecodeError> {
    if data.remaining() < 9 {
        return Err(DecodeError::Truncated);
    }
    let version = data.get_u8();
    if version != MUX_WIRE_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let to = NodeId::new(data.get_u64_le());
    let msg = decode_message(data)?;
    Ok((to, msg))
}

/// Exact encoded size of [`encode_mux_frame`]'s output for `msg`.
pub fn mux_frame_len(msg: &Message) -> usize {
    1 + 8 + encoded_len(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) {
        let encoded = encode_message(msg);
        let decoded = decode_message(&encoded).expect("decode");
        assert_eq!(&decoded, msg);
    }

    #[test]
    fn round_trip_scalar_request() {
        round_trip(&Message::request(
            NodeId::new(7),
            42,
            vec![InstanceState::Scalar(3.25), InstanceState::Scalar(-1.5)],
        ));
    }

    #[test]
    fn round_trip_map_reply() {
        let map = InstanceMap::from_entries([(3, 0.125), (900, 1.0), (u64::MAX, 1e-30)]);
        round_trip(&Message::reply(
            NodeId::new(u64::MAX),
            u64::MAX,
            vec![InstanceState::Map(map), InstanceState::Scalar(0.0)],
        ));
    }

    #[test]
    fn round_trip_control_messages() {
        round_trip(&Message::epoch_notice(NodeId::new(0), 0));
        round_trip(&Message::refuse(NodeId::new(1), 9));
    }

    #[test]
    fn round_trip_empty_states_and_map() {
        round_trip(&Message::request(NodeId::new(2), 1, vec![]));
        round_trip(&Message::request(
            NodeId::new(2),
            1,
            vec![InstanceState::Map(InstanceMap::new())],
        ));
    }

    #[test]
    fn round_trip_special_floats() {
        round_trip(&Message::request(
            NodeId::new(3),
            2,
            vec![
                InstanceState::Scalar(f64::MAX),
                InstanceState::Scalar(f64::MIN_POSITIVE),
                InstanceState::Scalar(f64::INFINITY),
            ],
        ));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let msg = Message::request(
            NodeId::new(7),
            42,
            vec![
                InstanceState::Scalar(1.0),
                InstanceState::Map(InstanceMap::from_entries([(1, 0.5)])),
            ],
        );
        let encoded = encode_message(&msg);
        for len in 0..encoded.len() {
            let err = decode_message(&encoded[..len]).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "prefix of length {len}");
        }
        assert!(decode_message(&encoded).is_ok());
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut encoded = encode_message(&Message::refuse(NodeId::new(1), 0));
        encoded[0] = 99;
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn decode_rejects_bad_tags() {
        let mut encoded = encode_message(&Message::refuse(NodeId::new(1), 0));
        encoded[1] = 9;
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadTag(9)));

        let mut encoded = encode_message(&Message::request(
            NodeId::new(1),
            0,
            vec![InstanceState::Scalar(1.0)],
        ));
        encoded[20] = 7; // the state tag
        assert_eq!(decode_message(&encoded), Err(DecodeError::BadTag(7)));
    }

    #[test]
    fn encoding_is_compact() {
        // The paper argues COUNT messages stay small ("a few hundred
        // bytes" for 20 instances); verify the format's arithmetic.
        let map = InstanceMap::from_entries((0..20u64).map(|l| (l, 1.0 / 20.0)));
        let msg = Message::request(NodeId::new(1), 5, vec![InstanceState::Map(map)]);
        let encoded = encode_message(&msg);
        assert!(encoded.len() < 350, "encoded size {}", encoded.len());
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let map = InstanceMap::from_entries([(3, 0.125), (900, 1.0)]);
        for msg in [
            Message::request(
                NodeId::new(7),
                42,
                vec![InstanceState::Scalar(3.25), InstanceState::Map(map)],
            ),
            Message::reply(NodeId::new(1), 0, vec![]),
            Message::epoch_notice(NodeId::new(0), 0),
            Message::refuse(NodeId::new(1), 9),
        ] {
            assert_eq!(
                encoded_len(&msg),
                encode_message(&msg).len(),
                "size mismatch for {msg:?}"
            );
        }
    }

    #[test]
    fn round_trip_view_messages() {
        for delta in [false, true] {
            for reply in [false, true] {
                let payload = ViewPayload {
                    from: 0xDEAD_BEEF,
                    descriptors: vec![Descriptor::new(1, 9), Descriptor::new(u32::MAX, 0)],
                };
                let encoded = encode_view_message(&payload, reply, delta);
                assert_eq!(encoded.len(), view_encoded_len(&payload));
                let (decoded, was_reply, was_delta) =
                    decode_view_message(&encoded).expect("decode");
                assert_eq!(decoded, payload);
                assert_eq!(was_reply, reply);
                assert_eq!(was_delta, delta);
            }
        }
    }

    #[test]
    fn delta_and_full_views_use_distinct_tags() {
        let payload = ViewPayload {
            from: 1,
            descriptors: vec![Descriptor::new(2, 3)],
        };
        assert_eq!(encode_view_message(&payload, false, false)[1], 4);
        assert_eq!(encode_view_message(&payload, true, false)[1], 5);
        assert_eq!(encode_view_message(&payload, false, true)[1], 8);
        assert_eq!(encode_view_message(&payload, true, true)[1], 9);
        // Same body layout: only the tag byte differs.
        let full = encode_view_message(&payload, false, false);
        let delta = encode_view_message(&payload, false, true);
        assert_eq!(full[2..], delta[2..]);
    }

    #[test]
    fn view_decode_rejects_truncation_and_foreign_tags() {
        let payload = ViewPayload {
            from: 3,
            descriptors: vec![Descriptor::new(4, 5), Descriptor::new(6, 7)],
        };
        for delta in [false, true] {
            let encoded = encode_view_message(&payload, false, delta);
            for len in 0..encoded.len() {
                assert_eq!(
                    decode_view_message(&encoded[..len]),
                    Err(DecodeError::Truncated),
                    "prefix of length {len} (delta={delta})"
                );
            }
            assert_eq!(
                decode_message(&encoded),
                Err(DecodeError::BadTag(if delta { 8 } else { 4 }))
            );
        }
        // An aggregation message is not a view message and vice versa.
        let agg = encode_message(&Message::refuse(NodeId::new(1), 0));
        assert_eq!(decode_view_message(&agg), Err(DecodeError::BadTag(3)));
    }

    #[test]
    fn round_trip_mux_frame() {
        let msg = Message::request(NodeId::new(77), 3, vec![InstanceState::Scalar(1.5)]);
        let frame = encode_mux_frame(NodeId::new(1023), &msg);
        assert_eq!(frame.len(), mux_frame_len(&msg));
        let (to, decoded) = decode_mux_frame(&frame).expect("decode");
        assert_eq!(to, NodeId::new(1023));
        assert_eq!(decoded, msg);
    }

    #[test]
    fn mux_frame_rejects_plain_messages_and_truncation() {
        let msg = Message::refuse(NodeId::new(1), 0);
        // A v1 datagram hitting a mux socket must not decode.
        assert_eq!(
            decode_mux_frame(&encode_message(&msg)),
            Err(DecodeError::BadVersion(WIRE_VERSION))
        );
        let frame = encode_mux_frame(NodeId::new(5), &msg);
        for len in 0..frame.len() {
            assert_eq!(
                decode_mux_frame(&frame[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {len}"
            );
        }
    }

    #[test]
    fn view_exchange_size_arithmetic() {
        // A c=30 view exchange: each side ships 31 descriptors.
        assert_eq!(view_message_len(31), 1 + 1 + 4 + 2 + 31 * 8);
        let payload = ViewPayload {
            from: 0,
            descriptors: (0..31).map(|i| Descriptor::new(i, i)).collect(),
        };
        assert_eq!(view_encoded_len(&payload), view_message_len(31));
    }

    #[test]
    fn round_trip_join_and_introduce() {
        let join = DirectoryPayload::Join { from: 0xBEEF };
        let encoded = encode_directory_message(&join);
        assert_eq!(encoded.len(), directory_encoded_len(&join));
        assert_eq!(decode_directory_message(&encoded), Ok(join));

        let intro = DirectoryPayload::Introduce {
            from: 7,
            peers: vec![
                IntroduceEntry {
                    node: 1,
                    timestamp: 99,
                    addr: None,
                },
                IntroduceEntry {
                    node: 2,
                    timestamp: 0,
                    addr: Some("127.0.0.1:4040".parse().unwrap()),
                },
                IntroduceEntry {
                    node: u32::MAX,
                    timestamp: u32::MAX,
                    addr: Some("[2001:db8::1]:65535".parse().unwrap()),
                },
            ],
        };
        let encoded = encode_directory_message(&intro);
        assert_eq!(encoded.len(), directory_encoded_len(&intro));
        assert_eq!(decode_directory_message(&encoded), Ok(intro));
    }

    #[test]
    fn join_and_introduce_reject_truncation() {
        let intro = DirectoryPayload::Introduce {
            from: 3,
            peers: vec![
                IntroduceEntry {
                    node: 1,
                    timestamp: 2,
                    addr: Some("10.0.0.1:9".parse().unwrap()),
                },
                IntroduceEntry {
                    node: 4,
                    timestamp: 5,
                    addr: None,
                },
            ],
        };
        let encoded = encode_directory_message(&intro);
        for len in 0..encoded.len() {
            assert_eq!(
                decode_directory_message(&encoded[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {len}"
            );
        }
        let join = encode_join_message(9);
        for len in 0..join.len() {
            assert_eq!(
                decode_directory_message(&join[..len]),
                Err(DecodeError::Truncated)
            );
        }
    }

    #[test]
    fn decode_datagram_routes_both_planes() {
        let agg = Message::request(NodeId::new(1), 2, vec![InstanceState::Scalar(0.5)]);
        assert_eq!(
            decode_datagram(&encode_message(&agg)),
            Ok(WirePayload::Aggregation(agg))
        );
        for delta in [false, true] {
            let view = DirectoryPayload::View {
                view: ViewPayload {
                    from: 3,
                    descriptors: vec![Descriptor::new(4, 5)],
                },
                reply: true,
                delta,
            };
            assert_eq!(
                decode_datagram(&encode_directory_message(&view)),
                Ok(WirePayload::Directory(view))
            );
        }
        let join = DirectoryPayload::Join { from: 11 };
        assert_eq!(
            decode_datagram(&encode_directory_message(&join)),
            Ok(WirePayload::Directory(join))
        );
        let pb = Piggyback {
            from: 9,
            descriptors: vec![Descriptor::new(1, 2)],
            addrs: vec![],
        };
        let inner = Message::refuse(NodeId::new(4), 7);
        assert_eq!(
            decode_datagram(&encode_piggyback_message(&inner, &pb)),
            Ok(WirePayload::Piggybacked(inner, pb))
        );
        assert_eq!(
            decode_datagram(&[WIRE_VERSION, 99, 0, 0]),
            Err(DecodeError::BadTag(99))
        );
        assert_eq!(
            decode_datagram(&[77, 0, 0, 0]),
            Err(DecodeError::BadVersion(77))
        );
    }

    fn sample_descriptor(name: &str) -> QueryDescriptor {
        use epidemic_aggregation::AggregateKind;
        QueryDescriptor::new(name, AggregateKind::Variance)
            .with_gamma(12)
            .with_cycle_length(750)
            .with_ttl_ms(90_000)
            .with_default_value(-2.5)
            .with_admission(AdmissionConfig::limited(100, 25))
    }

    fn sample_entries() -> Vec<CatalogEntry> {
        use epidemic_aggregation::AggregateKind;
        vec![
            CatalogEntry {
                descriptor: sample_descriptor("load.p99"),
                version: 3,
                deleted: false,
                installed_at: 12_345,
                expires_at: 102_345,
            },
            CatalogEntry {
                descriptor: QueryDescriptor::new("gone", AggregateKind::Count),
                version: 9,
                deleted: true,
                installed_at: 0,
                expires_at: 0,
            },
        ]
    }

    #[test]
    fn round_trip_catalog_messages() {
        for entries in [vec![], sample_entries()] {
            let encoded = encode_catalog_message(NodeId::new(42), &entries);
            assert_eq!(encoded.len(), catalog_message_len(&entries));
            let (from, decoded) = decode_catalog_message(&encoded).expect("decode");
            assert_eq!(from, NodeId::new(42));
            assert_eq!(decoded, entries);
            assert_eq!(
                decode_datagram(&encoded),
                Ok(WirePayload::Catalog {
                    from: NodeId::new(42),
                    entries,
                })
            );
        }
    }

    #[test]
    fn catalog_decode_rejects_corruption() {
        let entries = sample_entries();
        let encoded = encode_catalog_message(NodeId::new(1), &entries);
        for len in 0..encoded.len() {
            assert_eq!(
                decode_catalog_message(&encoded[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {len}"
            );
        }
        // An unknown aggregate kind code must not decode. The kind byte
        // sits right after the first name (header 12 + name len byte).
        let mut bad_kind = encoded.clone();
        bad_kind[12 + 1 + entries[0].descriptor.name.len()] = 250;
        assert_eq!(
            decode_catalog_message(&bad_kind),
            Err(DecodeError::BadTag(250))
        );
        // Invalid UTF-8 in the name is rejected, not lossily accepted.
        let mut bad_name = encoded;
        bad_name[13] = 0xFF;
        assert_eq!(decode_catalog_message(&bad_name), Err(DecodeError::BadName));
        // Foreign tags bounce.
        let agg = encode_message(&Message::refuse(NodeId::new(1), 0));
        assert_eq!(decode_catalog_message(&agg), Err(DecodeError::BadTag(3)));
    }

    #[test]
    fn round_trip_query_messages() {
        let msg = Message::request(
            NodeId::new(9),
            4,
            vec![InstanceState::Scalar(1.5), InstanceState::Scalar(0.25)],
        );
        let encoded = encode_query_message("load.p99", &msg);
        assert_eq!(encoded.len(), query_message_len("load.p99", &msg));
        let (query, decoded) = decode_query_message(&encoded).expect("decode");
        assert_eq!(query, "load.p99");
        assert_eq!(decoded, msg);
        assert_eq!(
            decode_datagram(&encoded),
            Ok(WirePayload::Query {
                query,
                message: msg.clone(),
            })
        );
        for len in 0..encoded.len() {
            assert_eq!(
                decode_query_message(&encoded[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {len}"
            );
        }
        // The mux framing routes to the right virtual node.
        let frame = encode_mux_query_frame(NodeId::new(77), "load.p99", &msg);
        assert_eq!(frame.len(), mux_query_frame_len("load.p99", &msg));
        let (to, payload) = decode_mux_datagram(&frame).expect("decode");
        assert_eq!(to, NodeId::new(77));
        assert_eq!(
            payload,
            WirePayload::Query {
                query: "load.p99".to_string(),
                message: msg,
            }
        );
    }

    #[test]
    fn mux_catalog_frames_round_trip() {
        let entries = sample_entries();
        let frame = encode_mux_catalog_frame(NodeId::new(5), NodeId::new(2), &entries);
        assert_eq!(frame.len(), mux_catalog_frame_len(&entries));
        let (to, payload) = decode_mux_datagram(&frame).expect("decode");
        assert_eq!(to, NodeId::new(5));
        assert_eq!(
            payload,
            WirePayload::Catalog {
                from: NodeId::new(2),
                entries,
            }
        );
    }

    #[test]
    fn round_trip_rpc_requests() {
        let requests = [
            RpcRequest::Install {
                id: 1,
                descriptor: sample_descriptor("q"),
            },
            RpcRequest::Remove {
                id: u64::MAX,
                name: "q".to_string(),
            },
            RpcRequest::Submit {
                id: 3,
                name: "q".to_string(),
                value: -0.125,
            },
            RpcRequest::Read {
                id: 4,
                name: String::new(),
            },
        ];
        for request in requests {
            let encoded = encode_rpc_request(&request);
            assert_eq!(encoded.len(), rpc_request_len(&request), "{request:?}");
            assert_eq!(decode_rpc_request(&encoded), Ok(request.clone()));
            assert_eq!(decode_datagram(&encoded), Ok(WirePayload::Rpc(request)));
            for len in 0..encoded.len() {
                assert_eq!(
                    decode_rpc_request(&encoded[..len]),
                    Err(DecodeError::Truncated),
                    "prefix of length {len}"
                );
            }
        }
        // Unknown op codes bounce.
        let mut bad_op = encode_rpc_request(&RpcRequest::Read {
            id: 1,
            name: "q".to_string(),
        });
        bad_op[10] = 9;
        assert_eq!(decode_rpc_request(&bad_op), Err(DecodeError::BadTag(9)));
    }

    #[test]
    fn round_trip_rpc_responses() {
        let responses = [
            RpcResponse::ack(7),
            RpcResponse::reject(8, RpcStatus::AdmissionRejected),
            RpcResponse {
                id: 9,
                status: RpcStatus::Ok,
                estimate: 1024.5,
                epoch: 31,
            },
        ];
        for response in responses {
            let encoded = encode_rpc_response(&response);
            assert_eq!(encoded.len(), rpc_response_len());
            assert_eq!(decode_rpc_response(&encoded), Ok(response.clone()));
            assert_eq!(
                decode_datagram(&encoded),
                Ok(WirePayload::RpcReply(response))
            );
            for len in 0..encoded.len() {
                assert_eq!(
                    decode_rpc_response(&encoded[..len]),
                    Err(DecodeError::Truncated),
                    "prefix of length {len}"
                );
            }
        }
        // Unknown status codes bounce.
        let mut bad = encode_rpc_response(&RpcResponse::ack(1));
        bad[10] = 200;
        assert_eq!(decode_rpc_response(&bad), Err(DecodeError::BadTag(200)));
    }

    #[test]
    fn round_trip_piggyback_messages() {
        let msg = Message::request(
            NodeId::new(77),
            3,
            vec![InstanceState::Scalar(1.5), InstanceState::Scalar(-0.25)],
        );
        for pb in [
            Piggyback {
                from: 12,
                descriptors: vec![],
                addrs: vec![],
            },
            Piggyback {
                from: u32::MAX,
                descriptors: vec![Descriptor::new(1, 9), Descriptor::new(2, u32::MAX)],
                addrs: vec![
                    (1, "10.1.2.3:7001".parse().unwrap()),
                    (2, "[2001:db8::9]:65535".parse().unwrap()),
                ],
            },
        ] {
            let encoded = encode_piggyback_message(&msg, &pb);
            assert_eq!(encoded.len(), piggyback_message_len(&msg, &pb));
            assert_eq!(
                encoded.len(),
                piggyback_trailer_len(&pb) + encoded_len(&msg),
                "trailer arithmetic"
            );
            let (decoded, decoded_pb) = decode_piggyback_message(&encoded).expect("decode");
            assert_eq!(decoded, msg);
            assert_eq!(decoded_pb, pb);
        }
    }

    #[test]
    fn piggyback_rejects_truncation_and_foreign_tags() {
        let msg = Message::request(NodeId::new(1), 2, vec![InstanceState::Scalar(0.5)]);
        let pb = Piggyback {
            from: 3,
            descriptors: vec![Descriptor::new(4, 5)],
            addrs: vec![(4, "127.0.0.1:9000".parse().unwrap())],
        };
        let encoded = encode_piggyback_message(&msg, &pb);
        for len in 0..encoded.len() {
            assert_eq!(
                decode_piggyback_message(&encoded[..len]),
                Err(DecodeError::Truncated),
                "prefix of length {len}"
            );
        }
        let plain = encode_message(&msg);
        assert_eq!(
            decode_piggyback_message(&plain),
            Err(DecodeError::BadTag(0))
        );
    }

    #[test]
    fn mux_piggyback_frames_round_trip() {
        let msg = Message::reply(NodeId::new(8), 1, vec![InstanceState::Scalar(2.0)]);
        let pb = Piggyback {
            from: 8,
            descriptors: vec![Descriptor::new(9, 10)],
            addrs: vec![],
        };
        let frame = encode_mux_piggyback_frame(NodeId::new(31), &msg, &pb);
        assert_eq!(frame.len(), mux_piggyback_frame_len(&msg, &pb));
        let (to, decoded) = decode_mux_datagram(&frame).expect("decode");
        assert_eq!(to, NodeId::new(31));
        assert_eq!(decoded, WirePayload::Piggybacked(msg, pb));
    }

    #[test]
    fn mux_directory_frames_round_trip() {
        let payload = DirectoryPayload::Introduce {
            from: 2,
            peers: vec![IntroduceEntry {
                node: 3,
                timestamp: 4,
                addr: Some("127.0.0.1:5555".parse().unwrap()),
            }],
        };
        let frame = encode_mux_directory_frame(NodeId::new(900), &payload);
        assert_eq!(frame.len(), mux_directory_frame_len(&payload));
        let (to, decoded) = decode_mux_datagram(&frame).expect("decode");
        assert_eq!(to, NodeId::new(900));
        assert_eq!(decoded, WirePayload::Directory(payload));

        // Aggregation frames route through the same decoder.
        let msg = Message::refuse(NodeId::new(1), 0);
        let (to, decoded) = decode_mux_datagram(&encode_mux_frame(NodeId::new(5), &msg)).unwrap();
        assert_eq!(to, NodeId::new(5));
        assert_eq!(decoded, WirePayload::Aggregation(msg));
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadVersion(3).to_string().contains('3'));
        assert!(DecodeError::BadTag(9).to_string().contains('9'));
    }
}
