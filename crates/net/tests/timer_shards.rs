//! Property-based tests pinning [`ShardedTimerWheel`] to the unsharded
//! [`TimerWheel`]'s firing behavior.
//!
//! The mux runtime shards its timer wheel per reader socket purely for
//! lock locality — sharding must not change WHAT fires WHEN. The central
//! property: for any interleaving of schedules and advances (including
//! schedules that land behind the cursor and take the overdue lane), a
//! k-sharded wheel fires exactly the same `(deadline, token)` multiset at
//! every advance as a single wheel fed the same sequence. Token order
//! within one advance is unspecified on both sides, so comparisons sort.

use epidemic_net::timer::{ShardedTimerWheel, TimerWheel};
use proptest::prelude::*;

/// Fired tokens of one advance, sorted for multiset comparison (tokens
/// can repeat: the same vnode may have several deadlines parked).
fn drain_single(wheel: &mut TimerWheel, now: u64) -> Vec<u32> {
    let mut fired = Vec::new();
    wheel.advance(now, |t| fired.push(t));
    fired.sort_unstable();
    fired
}

fn drain_sharded(wheel: &mut ShardedTimerWheel, now: u64) -> Vec<u32> {
    let mut fired = Vec::new();
    wheel.advance(now, |t| fired.push(t));
    fired.sort_unstable();
    fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_wheel_fires_exactly_like_unsharded(
        shards in 1usize..7,
        tick in 1u64..5,
        slots in 8usize..65,
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..400, 0u32..64),
            1..80,
        ),
    ) {
        let mut single = TimerWheel::new(tick, slots);
        let mut sharded = ShardedTimerWheel::new(shards, tick, slots);
        for (is_advance, time, token) in ops {
            if is_advance {
                prop_assert_eq!(
                    drain_single(&mut single, time),
                    drain_sharded(&mut sharded, time),
                    "diverged advancing to {} with {} shards", time, shards
                );
            } else {
                single.schedule(time, token);
                sharded.schedule(time, token);
            }
            prop_assert_eq!(single.len(), sharded.len());
            prop_assert_eq!(single.is_empty(), sharded.is_empty());
            prop_assert_eq!(single.next_deadline(), sharded.next_deadline());
        }
        // Drain everything: nothing may be left behind on either side.
        prop_assert_eq!(
            drain_single(&mut single, u64::MAX),
            drain_sharded(&mut sharded, u64::MAX),
            "final drain diverged with {} shards", shards
        );
        prop_assert!(single.is_empty() && sharded.is_empty());
    }

    #[test]
    fn overdue_lane_matches_across_sharding(
        shards in 1usize..6,
        advance_to in 20u64..200,
        late in prop::collection::vec((0u64..200, 0u32..32), 1..20),
    ) {
        // Force the overdue path explicitly: advance first, then schedule
        // deadlines at or behind the cursor. Both wheels must still agree
        // at every subsequent advance.
        let mut single = TimerWheel::new(2, 16);
        let mut sharded = ShardedTimerWheel::new(shards, 2, 16);
        prop_assert_eq!(
            drain_single(&mut single, advance_to),
            drain_sharded(&mut sharded, advance_to)
        );
        for &(deadline, token) in &late {
            single.schedule(deadline, token);
            sharded.schedule(deadline, token);
        }
        prop_assert_eq!(single.len(), late.len());
        prop_assert_eq!(sharded.len(), late.len());
        for now in [advance_to, advance_to + 50, 400] {
            prop_assert_eq!(
                drain_single(&mut single, now),
                drain_sharded(&mut sharded, now),
                "overdue drain diverged at {} with {} shards", now, shards
            );
        }
        prop_assert!(single.is_empty() && sharded.is_empty());
    }

    #[test]
    fn tokens_always_fire_in_their_home_shard(
        shards in 1usize..7,
        entries in prop::collection::vec((0u64..100, 0u32..64), 1..40),
    ) {
        // Advance one shard's worth of wheels individually by scheduling
        // into a fresh sharded wheel and draining: every token must come
        // back exactly once regardless of which shard owned it.
        let mut sharded = ShardedTimerWheel::new(shards, 1, 32);
        for &(deadline, token) in &entries {
            sharded.schedule(deadline, token);
        }
        prop_assert_eq!(sharded.shard_count(), shards);
        let mut fired = Vec::new();
        sharded.advance(u64::MAX, |t| fired.push(t));
        fired.sort_unstable();
        let mut want: Vec<u32> = entries.iter().map(|&(_, t)| t).collect();
        want.sort_unstable();
        prop_assert_eq!(fired, want);
    }
}
