//! Property-based tests of the wire codec's size arithmetic and framing.
//!
//! The event engine charges view traffic against a bandwidth model using
//! the `*_len` helpers instead of encoding real buffers, so the central
//! invariant pinned here is `encoded_len() == encode().len()` over
//! arbitrary messages — aggregation bodies, view exchanges, and mux
//! frames alike — plus decode round-trips for everything generated.

use epidemic_aggregation::value::InstanceMap;
use epidemic_aggregation::{InstanceState, Message};
use epidemic_common::NodeId;
use epidemic_net::codec::{
    decode_datagram, decode_directory_message, decode_message, decode_mux_datagram,
    decode_mux_frame, decode_piggyback_message, decode_view_message, directory_encoded_len,
    encode_directory_message, encode_message, encode_mux_directory_frame, encode_mux_frame,
    encode_mux_piggyback_frame, encode_piggyback_message, encode_view_message, encoded_len,
    mux_directory_frame_len, mux_frame_len, mux_piggyback_frame_len, piggyback_message_len,
    piggyback_trailer_len, view_encoded_len,
};
use epidemic_net::directory::{DirectoryPayload, IntroduceEntry, Piggyback};
use epidemic_newscast::node::ViewPayload;
use epidemic_newscast::Descriptor;
use epidemic_query::{
    kind_from_code, AdmissionConfig, CatalogEntry, QueryDescriptor, RpcRequest, RpcResponse,
    RpcStatus,
};
use proptest::prelude::*;
use std::net::{IpAddr, SocketAddr};

/// Raw generated material for one query descriptor: `(name, kind code,
/// gamma, cycle length, timeout fraction, ttl, default, rate, burst)`.
type DescriptorRaw = (String, u8, u32, u64, f64, u64, f64, u32, u32);

/// Builds a wire-valid descriptor from generated raw material.
fn query_descriptor(raw: DescriptorRaw) -> QueryDescriptor {
    let (name, kind_code, gamma, cycle, timeout_frac, ttl, default, rate, burst) = raw;
    let kind = kind_from_code(kind_code % 8).expect("kind code in range");
    let timeout = 1 + (timeout_frac * (cycle - 2) as f64) as u64;
    QueryDescriptor {
        name,
        kind,
        gamma,
        cycle_length: cycle,
        timeout,
        ttl_ms: ttl,
        default_value: default,
        admission: AdmissionConfig {
            rate_per_sec: rate,
            burst,
        },
    }
}

/// Query names: 1–19 chars from a wire-safe alphabet (stays well under
/// the u8 length prefix).
fn query_name() -> impl Strategy<Value = String> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
    prop::collection::vec(0u8..ALPHABET.len() as u8, 1..20).prop_map(|idx| {
        idx.into_iter()
            .map(|i| ALPHABET[i as usize] as char)
            .collect()
    })
}

/// Strategy for one descriptor's raw material (floats stay finite and
/// bounded so decoded equality is exact).
fn descriptor_raw() -> impl Strategy<Value = DescriptorRaw> {
    (
        (query_name(), any::<u8>(), 1u32..1_000),
        (2u64..100_000, 0.0f64..1.0, 0u64..10_000_000),
        (-1e9f64..1e9, any::<u32>(), any::<u32>()),
    )
        .prop_map(
            |((name, kind, gamma), (cycle, frac, ttl), (default, rate, burst))| {
                (name, kind, gamma, cycle, frac, ttl, default, rate, burst)
            },
        )
}

/// Raw generated material for one instance state: `(is_map, scalar,
/// map_entries)`.
type StateRaw = (bool, f64, Vec<(u64, f64)>);

/// Builds one of the four message bodies from generated raw material.
fn message(from: u64, epoch: u64, tag: u8, states_raw: Vec<StateRaw>) -> Message {
    let states: Vec<InstanceState> = states_raw
        .into_iter()
        .map(|(is_map, scalar, entries)| {
            if is_map {
                InstanceState::Map(InstanceMap::from_entries(entries))
            } else {
                InstanceState::Scalar(scalar)
            }
        })
        .collect();
    let from = NodeId::new(from);
    match tag % 4 {
        0 => Message::request(from, epoch, states),
        1 => Message::reply(from, epoch, states),
        2 => Message::epoch_notice(from, epoch),
        _ => Message::refuse(from, epoch),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encoded_len_matches_encode_for_aggregation_messages(
        from in any::<u64>(),
        epoch in any::<u64>(),
        tag in 0u8..4,
        states_raw in prop::collection::vec(
            (any::<bool>(), -1e12f64..1e12, prop::collection::vec((any::<u64>(), 0.0f64..1.0), 0..8)),
            0..5,
        ),
    ) {
        let msg = message(from, epoch, tag, states_raw);
        let encoded = encode_message(&msg);
        prop_assert_eq!(encoded_len(&msg), encoded.len(), "encoded_len mismatch for {:?}", msg);
        let decoded = decode_message(&encoded).expect("round trip");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn encoded_len_matches_encode_for_view_messages(
        from in any::<u32>(),
        reply in any::<bool>(),
        delta in any::<bool>(),
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..40),
    ) {
        let payload = ViewPayload {
            from,
            descriptors: raw.iter().map(|&(n, t)| Descriptor::new(n, t)).collect(),
        };
        // Full and delta view messages share one layout; the tag alone
        // (4/5 vs 8/9) carries the full-vs-delta bit.
        let encoded = encode_view_message(&payload, reply, delta);
        prop_assert_eq!(view_encoded_len(&payload), encoded.len());
        let (decoded, was_reply, was_delta) =
            decode_view_message(&encoded).expect("round trip");
        prop_assert_eq!(decoded, payload);
        prop_assert_eq!(was_reply, reply);
        prop_assert_eq!(was_delta, delta);
    }

    #[test]
    fn piggybacked_message_round_trips_and_sizes_match(
        from in any::<u64>(),
        epoch in any::<u64>(),
        tag in 0u8..4,
        states_raw in prop::collection::vec(
            (any::<bool>(), -1e6f64..1e6, prop::collection::vec((any::<u64>(), 0.0f64..1.0), 0..4)),
            0..3,
        ),
        pb_from in any::<u32>(),
        descs in prop::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        addrs in prop::collection::vec(
            // (node, v6?, ip material, port material)
            (any::<u32>(), any::<bool>(), any::<u32>(), any::<u32>()),
            0..6,
        ),
        mux_to in any::<u64>(),
    ) {
        let msg = message(from, epoch, tag, states_raw);
        let piggyback = Piggyback {
            from: pb_from,
            descriptors: descs.iter().map(|&(n, t)| Descriptor::new(n, t)).collect(),
            addrs: addrs
                .iter()
                .map(|&(node, v6, ip, port)| {
                    let port = port as u16;
                    let addr = if v6 {
                        let mut octets = [0u8; 16];
                        octets[..4].copy_from_slice(&ip.to_le_bytes());
                        SocketAddr::new(IpAddr::from(octets), port)
                    } else {
                        SocketAddr::new(IpAddr::from(ip.to_le_bytes()), port)
                    };
                    (node, addr)
                })
                .collect(),
        };
        let encoded = encode_piggyback_message(&msg, &piggyback);
        prop_assert_eq!(piggyback_message_len(&msg, &piggyback), encoded.len());
        // The trailer is what the membership ledger gets charged; it must
        // never exceed the datagram it rides on.
        prop_assert!(piggyback_trailer_len(&piggyback) < encoded.len());
        let (dmsg, dpb) = decode_piggyback_message(&encoded).expect("round trip");
        prop_assert_eq!(&dmsg, &msg);
        prop_assert_eq!(&dpb, &piggyback);
        // The plane router agrees with the dedicated decoder.
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::Piggybacked(msg.clone(), piggyback.clone())
        );
        // And the mux framing routes it by destination vnode.
        let frame = encode_mux_piggyback_frame(NodeId::new(mux_to), &msg, &piggyback);
        prop_assert_eq!(mux_piggyback_frame_len(&msg, &piggyback), frame.len());
        let (dst, decoded) = decode_mux_datagram(&frame).expect("mux round trip");
        prop_assert_eq!(dst, NodeId::new(mux_to));
        prop_assert_eq!(
            decoded,
            epidemic_net::codec::WirePayload::Piggybacked(msg, piggyback)
        );
    }

    #[test]
    fn mux_frame_len_matches_and_routes(
        to in any::<u64>(),
        from in any::<u64>(),
        epoch in any::<u64>(),
        tag in 0u8..4,
        states_raw in prop::collection::vec(
            (any::<bool>(), -1e6f64..1e6, prop::collection::vec((any::<u64>(), 0.0f64..1.0), 0..4)),
            0..3,
        ),
    ) {
        let msg = message(from, epoch, tag, states_raw);
        let frame = encode_mux_frame(NodeId::new(to), &msg);
        prop_assert_eq!(mux_frame_len(&msg), frame.len());
        let (dst, decoded) = decode_mux_frame(&frame).expect("round trip");
        prop_assert_eq!(dst, NodeId::new(to));
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn encoded_len_matches_encode_for_join_and_introduce(
        from in any::<u32>(),
        is_join in any::<bool>(),
        raw in prop::collection::vec(
            // (node, timestamp, addr kind, ip material, port)
            (any::<u32>(), any::<u32>(), 0u8..3, any::<u32>(), any::<u32>()),
            0..24,
        ),
    ) {
        let payload = if is_join {
            DirectoryPayload::Join { from }
        } else {
            let peers = raw
                .iter()
                .map(|&(node, timestamp, kind, ip, port)| IntroduceEntry {
                    node,
                    timestamp,
                    addr: match kind {
                        0 => None,
                        1 => Some(SocketAddr::new(
                            IpAddr::from(ip.to_le_bytes()),
                            port as u16,
                        )),
                        _ => {
                            let mut octets = [0u8; 16];
                            octets[..4].copy_from_slice(&ip.to_le_bytes());
                            octets[12..].copy_from_slice(&port.to_le_bytes());
                            Some(SocketAddr::new(IpAddr::from(octets), (port >> 16) as u16))
                        }
                    },
                })
                .collect();
            DirectoryPayload::Introduce { from, peers }
        };
        let encoded = encode_directory_message(&payload);
        prop_assert_eq!(directory_encoded_len(&payload), encoded.len());
        let decoded = decode_directory_message(&encoded).expect("round trip");
        prop_assert_eq!(&decoded, &payload);
        // The plane router agrees with the dedicated decoder.
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::Directory(payload)
        );
    }

    #[test]
    fn mux_directory_frame_len_matches_and_routes(
        to in any::<u64>(),
        from in any::<u32>(),
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..16),
    ) {
        let payload = DirectoryPayload::Introduce {
            from,
            peers: raw
                .iter()
                .map(|&(node, timestamp)| IntroduceEntry { node, timestamp, addr: None })
                .collect(),
        };
        let frame = encode_mux_directory_frame(NodeId::new(to), &payload);
        prop_assert_eq!(mux_directory_frame_len(&payload), frame.len());
        let (dst, decoded) = decode_mux_datagram(&frame).expect("round trip");
        prop_assert_eq!(dst, NodeId::new(to));
        prop_assert_eq!(decoded, epidemic_net::codec::WirePayload::Directory(payload));
    }

    #[test]
    fn catalog_message_len_matches_and_round_trips(
        from in any::<u64>(),
        mux_to in any::<u64>(),
        raw in prop::collection::vec(
            (descriptor_raw(), any::<u32>(), any::<bool>(), any::<u64>(), any::<u64>()),
            0..6,
        ),
    ) {
        let entries: Vec<CatalogEntry> = raw
            .into_iter()
            .map(|(d, version, deleted, installed_at, expires_at)| CatalogEntry {
                descriptor: query_descriptor(d),
                version,
                deleted,
                installed_at,
                expires_at,
            })
            .collect();
        let from = NodeId::new(from);
        let encoded = epidemic_net::codec::encode_catalog_message(from, &entries);
        prop_assert_eq!(epidemic_net::codec::catalog_message_len(&entries), encoded.len());
        let (dfrom, dentries) =
            epidemic_net::codec::decode_catalog_message(&encoded).expect("round trip");
        prop_assert_eq!(dfrom, from);
        prop_assert_eq!(&dentries, &entries);
        // The plane router agrees with the dedicated decoder.
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::Catalog { from, entries: entries.clone() }
        );
        // The mux framing routes it by destination vnode.
        let frame =
            epidemic_net::codec::encode_mux_catalog_frame(NodeId::new(mux_to), from, &entries);
        prop_assert_eq!(epidemic_net::codec::mux_catalog_frame_len(&entries), frame.len());
        let (dst, decoded) = decode_mux_datagram(&frame).expect("mux round trip");
        prop_assert_eq!(dst, NodeId::new(mux_to));
        prop_assert_eq!(
            decoded,
            epidemic_net::codec::WirePayload::Catalog { from, entries }
        );
    }

    #[test]
    fn query_frame_len_matches_and_routes(
        name in query_name(),
        from in any::<u64>(),
        epoch in any::<u64>(),
        tag in 0u8..4,
        mux_to in any::<u64>(),
        states_raw in prop::collection::vec(
            (any::<bool>(), -1e6f64..1e6, prop::collection::vec((any::<u64>(), 0.0f64..1.0), 0..4)),
            0..3,
        ),
    ) {
        let msg = message(from, epoch, tag, states_raw);
        let encoded = epidemic_net::codec::encode_query_message(&name, &msg);
        prop_assert_eq!(epidemic_net::codec::query_message_len(&name, &msg), encoded.len());
        let (dname, dmsg) =
            epidemic_net::codec::decode_query_message(&encoded).expect("round trip");
        prop_assert_eq!(&dname, &name);
        prop_assert_eq!(&dmsg, &msg);
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::Query { query: name.clone(), message: msg.clone() }
        );
        let frame =
            epidemic_net::codec::encode_mux_query_frame(NodeId::new(mux_to), &name, &msg);
        prop_assert_eq!(epidemic_net::codec::mux_query_frame_len(&name, &msg), frame.len());
        let (dst, decoded) = decode_mux_datagram(&frame).expect("mux round trip");
        prop_assert_eq!(dst, NodeId::new(mux_to));
        prop_assert_eq!(
            decoded,
            epidemic_net::codec::WirePayload::Query { query: name, message: msg }
        );
    }

    #[test]
    fn rpc_frames_round_trip_and_size(
        id in any::<u64>(),
        op in 0u8..4,
        name in query_name(),
        value in -1e9f64..1e9,
        descriptor in descriptor_raw(),
        status_code in 0u8..6,
        epoch in any::<u64>(),
    ) {
        let request = match op {
            0 => RpcRequest::Install { id, descriptor: query_descriptor(descriptor) },
            1 => RpcRequest::Remove { id, name },
            2 => RpcRequest::Submit { id, name, value },
            _ => RpcRequest::Read { id, name },
        };
        let encoded = epidemic_net::codec::encode_rpc_request(&request);
        prop_assert_eq!(epidemic_net::codec::rpc_request_len(&request), encoded.len());
        let decoded = epidemic_net::codec::decode_rpc_request(&encoded).expect("round trip");
        prop_assert_eq!(&decoded, &request);
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::Rpc(request)
        );
        // Responses are fixed-size frames.
        let response = RpcResponse {
            id,
            status: RpcStatus::from_code(status_code).expect("status code in range"),
            estimate: value,
            epoch,
        };
        let encoded = epidemic_net::codec::encode_rpc_response(&response);
        prop_assert_eq!(epidemic_net::codec::rpc_response_len(), encoded.len());
        let decoded = epidemic_net::codec::decode_rpc_response(&encoded).expect("round trip");
        prop_assert_eq!(&decoded, &response);
        prop_assert_eq!(
            decode_datagram(&encoded).expect("datagram"),
            epidemic_net::codec::WirePayload::RpcReply(response)
        );
    }

    #[test]
    fn query_plane_frames_reject_foreign_versions_and_tags(
        from in any::<u64>(),
        bump in 1u8..200,
        raw in prop::collection::vec(
            (descriptor_raw(), any::<u32>(), any::<bool>(), any::<u64>(), any::<u64>()),
            0..3,
        ),
    ) {
        let entries: Vec<CatalogEntry> = raw
            .into_iter()
            .map(|(d, version, deleted, installed_at, expires_at)| CatalogEntry {
                descriptor: query_descriptor(d),
                version,
                deleted,
                installed_at,
                expires_at,
            })
            .collect();
        let mut encoded = epidemic_net::codec::encode_catalog_message(NodeId::new(from), &entries);
        // A foreign wire version is rejected before any payload parsing…
        let foreign = encoded[0].wrapping_add(bump);
        encoded[0] = foreign;
        prop_assert_eq!(
            epidemic_net::codec::decode_catalog_message(&encoded),
            Err(epidemic_net::codec::DecodeError::BadVersion(foreign))
        );
        encoded[0] = epidemic_net::codec::WIRE_VERSION;
        // …and a wrong tag is rejected by the dedicated decoders.
        encoded[1] = 12;
        prop_assert_eq!(
            epidemic_net::codec::decode_catalog_message(&encoded),
            Err(epidemic_net::codec::DecodeError::BadTag(12))
        );
    }

    #[test]
    fn truncated_frames_never_panic(
        raw in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Arbitrary bytes: decoders must reject or decode, never panic.
        let _ = decode_message(&raw);
        let _ = decode_view_message(&raw);
        let _ = decode_mux_frame(&raw);
        let _ = decode_directory_message(&raw);
        let _ = decode_piggyback_message(&raw);
        let _ = decode_datagram(&raw);
        let _ = decode_mux_datagram(&raw);
        let _ = epidemic_net::codec::decode_catalog_message(&raw);
        let _ = epidemic_net::codec::decode_query_message(&raw);
        let _ = epidemic_net::codec::decode_rpc_request(&raw);
        let _ = epidemic_net::codec::decode_rpc_response(&raw);
    }
}
