//! Property-based tests of the statistics kernel and RNG sampling.

use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats::{self, OnlineStats};
use proptest::prelude::*;

proptest! {
    #[test]
    fn welford_matches_two_pass(values in prop::collection::vec(-1e6f64..1e6, 2..100)) {
        let online: OnlineStats = values.iter().copied().collect();
        let batch_mean = stats::mean(&values);
        let batch_var = stats::variance(&values);
        prop_assert!((online.mean() - batch_mean).abs() < 1e-6 * (1.0 + batch_mean.abs()));
        prop_assert!((online.variance() - batch_var).abs() < 1e-6 * (1.0 + batch_var));
    }

    #[test]
    fn merge_is_associative_enough(
        a in prop::collection::vec(-1e3f64..1e3, 1..40),
        b in prop::collection::vec(-1e3f64..1e3, 1..40),
        c in prop::collection::vec(-1e3f64..1e3, 1..40),
    ) {
        // (a + b) + c == a + (b + c) up to floating point noise.
        let s = |v: &[f64]| -> OnlineStats { v.iter().copied().collect() };
        let mut left = s(&a);
        left.merge(&s(&b));
        left.merge(&s(&c));
        let mut bc = s(&b);
        bc.merge(&s(&c));
        let mut right = s(&a);
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - right.variance()).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = stats::quantile(&values, lo).unwrap();
        let v_hi = stats::quantile(&values, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range(
        n in 1usize..500,
        k_frac in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let sample = rng.sample_distinct(n, k);
        prop_assert_eq!(sample.len(), k);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(sample.iter().all(|&x| x < n));
    }

    #[test]
    fn next_below_is_in_range(bound in 1u64..u64::MAX, seed in 0u64..10_000) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..16 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(mut values in prop::collection::vec(0u32..100, 0..80), seed in 0u64..10_000) {
        let mut sorted_before = values.clone();
        sorted_before.sort_unstable();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        rng.shuffle(&mut values);
        values.sort_unstable();
        prop_assert_eq!(values, sorted_before);
    }

    #[test]
    fn geometric_mean_between_min_and_max(values in prop::collection::vec(1e-3f64..1e3, 1..40)) {
        let gm = stats::geometric_mean(&values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(gm >= min - 1e-9 && gm <= max + 1e-9);
        // AM-GM inequality.
        prop_assert!(gm <= stats::mean(&values) + 1e-9);
    }
}
