//! Shared kernel for the epidemic aggregation workspace.
//!
//! This crate hosts the small, dependency-light building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`NodeId`] — opaque node identifiers for overlay participants.
//! * [`rng`] — deterministic, splittable random number generation
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256`]) so that every simulation in
//!   the workspace is bit-for-bit reproducible from a single `u64` seed.
//! * [`sample`] — the [`NeighborSampling`] overlay abstraction (the paper's
//!   `GETNEIGHBOR()`), shared by static topologies, NEWSCAST membership,
//!   and both simulation engines.
//! * [`stats`] — streaming and batch statistics (mean, variance, extrema,
//!   quantiles) used to measure convergence of the aggregation protocols.
//!
//! # Examples
//!
//! ```
//! use epidemic_common::rng::Xoshiro256;
//! use epidemic_common::stats::OnlineStats;
//!
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let mut stats = OnlineStats::new();
//! for _ in 0..1000 {
//!     stats.push(rng.next_f64());
//! }
//! assert!((stats.mean() - 0.5).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod id;
pub mod rng;
pub mod sample;
pub mod stats;

pub use id::NodeId;
pub use rng::{SplitMix64, Xoshiro256};
pub use sample::{CompleteSampler, NeighborSampling};
pub use stats::{OnlineStats, Summary};
