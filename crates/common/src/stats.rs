//! Streaming and batch statistics.
//!
//! The evaluation of the aggregation protocols is phrased entirely in terms
//! of the empirical mean and variance of node estimates (paper Eq. (1)) and
//! their evolution over cycles. This module provides:
//!
//! * [`OnlineStats`] — single-pass Welford accumulator for mean/variance
//!   with extrema tracking.
//! * [`Summary`] — an immutable snapshot of an accumulator.
//! * Batch helpers: [`mean`], [`variance`], [`quantile`], [`geometric_mean`].
//!
//! # Examples
//!
//! ```
//! use epidemic_common::stats::OnlineStats;
//!
//! let stats: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
//! assert_eq!(stats.mean(), 5.0);
//! assert!((stats.population_variance() - 4.0).abs() < 1e-12);
//! ```

/// Single-pass accumulator for count, mean, variance, and extrema.
///
/// Uses Welford's algorithm, which is numerically stable even when the
/// variance is many orders of magnitude smaller than the mean — exactly the
/// regime gossip averaging converges into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` if empty.
    pub const fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (divides by `n - 1`, the paper's Eq. (1));
    /// `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (divides by `n`); `0.0` if empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `+inf` if empty.
    pub const fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` if empty.
    pub const fn max(&self) -> f64 {
        self.max
    }

    /// `max - min`; `0.0` if empty. The drift of a set of estimates that
    /// should all agree — the telemetry plane's convergence-health gauge.
    pub fn spread(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns an immutable snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            variance: self.variance(),
            min: self.min,
            max: self.max,
        }
    }
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = OnlineStats::new();
        for x in iter {
            stats.push(x);
        }
        stats
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Arithmetic mean of a slice; `0.0` if empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance of a slice (paper Eq. (1)); `0.0` with fewer
/// than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Geometric mean of strictly positive values, computed in log space to
/// avoid overflow; `0.0` if the slice is empty.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geometric mean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of an unsorted slice.
///
/// Returns `None` if the slice is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn known_mean_and_variance() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert_eq!(s.mean(), 5.0);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.spread(), 7.0);
        assert_eq!(OnlineStats::new().spread(), 0.0);
    }

    #[test]
    fn matches_batch_variance() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let s: OnlineStats = data.iter().copied().collect();
        assert!((s.mean() - mean(&data)).abs() < 1e-10);
        assert!((s.variance() - variance(&data)).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| i as f64 * 0.7 - 3.0).collect();
        let (a, b) = data.split_at(20);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let whole: OnlineStats = data.iter().copied().collect();
        assert_eq!(sa.count(), whole.count());
        assert!((sa.mean() - whole.mean()).abs() < 1e-10);
        assert!((sa.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(sa.min(), whole.min());
        assert_eq!(sa.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].iter().copied().collect();
        let before = s.summary();
        s.merge(&OnlineStats::new());
        assert_eq!(s.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&s);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn welford_is_stable_for_tiny_variance() {
        // Mean ~1e9, variance ~1: naive sum-of-squares loses all precision.
        let base = 1e9;
        let s: OnlineStats = (0..1000).map(|i| base + (i % 3) as f64 - 1.0).collect();
        assert!((s.variance() - 0.667).abs() < 0.01);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = OnlineStats::new();
        s.extend([1.0, 2.0, 3.0]);
        s.extend([4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn batch_mean_variance_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_no_overflow() {
        let big = vec![1e300; 10];
        let gm = geometric_mean(&big);
        assert!((gm - 1e300).abs() / 1e300 < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn quantile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(quantile(&v, 0.5), Some(5.0));
    }
}
