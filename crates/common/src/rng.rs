//! Deterministic, splittable random number generation.
//!
//! Every experiment in this workspace must be reproducible from a single
//! `u64` seed, across crate versions and platforms. We therefore implement
//! the generators ourselves instead of relying on the algorithmic details of
//! an external crate:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer; used for seeding
//!   and for deriving independent per-node streams.
//! * [`Xoshiro256`] — Blackman & Vigna's `xoshiro256**`, a fast all-purpose
//!   generator with 256 bits of state and a jump function for creating
//!   non-overlapping parallel streams.
//!
//! [`Xoshiro256`] exposes `rand`-style entry points ([`Xoshiro256::fill_bytes`],
//! [`Xoshiro256::from_seed`]) as inherent methods so no external RNG crate is
//! required; `rand` trait impls can be layered on later behind a feature.
//!
//! # Examples
//!
//! ```
//! use epidemic_common::rng::Xoshiro256;
//!
//! let mut a = Xoshiro256::seed_from_u64(7);
//! let mut b = Xoshiro256::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//!
//! // Independent per-node streams from one master seed:
//! let mut node_rngs: Vec<Xoshiro256> = (0..4).map(|i| Xoshiro256::stream(7, i)).collect();
//! let x = node_rngs[0].next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

/// SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into larger seed material
/// and to derive independent sub-streams. Passes statistical tests on its
/// own, but [`Xoshiro256`] is preferred for bulk generation.
///
/// # Examples
///
/// ```
/// use epidemic_common::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(1);
/// let first = sm.next_u64();
/// assert_ne!(first, sm.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Mixes a value through the SplitMix64 finalizer without advancing any
    /// state. Useful as a cheap, high-quality integer hash.
    pub fn mix(value: u64) -> u64 {
        let mut z = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` generator: the workhorse RNG for all simulations.
///
/// Implements this workspace's convenience sampling API (ranges, floats,
/// shuffles, distinct sampling) directly so that results do not depend on
/// the sampling algorithms of any external crate version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a single `u64` seed via SplitMix64 expansion,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; the SplitMix expansion of any
        // seed is astronomically unlikely to produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Derives the `index`-th independent stream of a master seed.
    ///
    /// Streams for distinct `(seed, index)` pairs are statistically
    /// independent for all practical purposes: the seed material is produced
    /// by mixing the index into the master seed before expansion.
    pub fn stream(seed: u64, index: u64) -> Self {
        Self::seed_from_u64(seed ^ SplitMix64::mix(index.wrapping_add(0x5bf0_3635)))
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// `p <= 0` never yields `true`; `p >= 1` always does.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform integer in the half-open range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_below(hi - lo)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Samples `k` *distinct* indices from `[0, n)`.
    ///
    /// The result is in no particular order. Dense draws (`k` a sizable
    /// fraction of `n`, or very large in absolute terms) use a partial
    /// Fisher–Yates shuffle; sparse draws use rejection sampling against a
    /// small sorted buffer. Neither path hashes or touches the heap beyond
    /// the output buffer (plus the `O(n)` pool on the dense path), which
    /// keeps the NEWSCAST view-bootstrap and crash-selection hot paths free
    /// of per-call `HashSet` churn.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 16 >= n || k >= 8192 {
            // Dense: shuffle the first k slots of the full pool.
            let mut pool: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.index(n - i);
                pool.swap(i, j);
            }
            pool.truncate(k);
            return pool;
        }
        // Sparse: rejection against a sorted buffer. With k < n/16 the
        // expected number of rejections is below k/15, and the buffer is
        // small enough that binary search + insertion shifts stay cheap.
        let mut sorted: Vec<usize> = Vec::with_capacity(k);
        while sorted.len() < k {
            let v = self.index(n);
            if let Err(pos) = sorted.binary_search(&v) {
                sorted.insert(pos, v);
            }
        }
        sorted
    }

    /// Splits off a new generator whose stream is independent of `self`'s
    /// future output.
    pub fn split(&mut self) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(self.next_u64())
    }

    /// Fills `dest` with random bytes (little-endian words of
    /// [`next_u64`](Self::next_u64)).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Builds a generator directly from 32 bytes of seed material
    /// (little-endian state words), `rand::SeedableRng`-style.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, slot) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *slot = u64::from_le_bytes(bytes);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let out: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(out[0], 6457827717110365317);
        assert_eq!(out[1], 3203168211198807973);
        assert_eq!(out[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_distinct() {
        let mut s0 = Xoshiro256::stream(42, 0);
        let mut s1 = Xoshiro256::stream(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut counts = [0usize; 7];
        let trials = 70_000;
        for _ in 0..trials {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            let expected = trials / 7;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "next_below bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn range_u64_within_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>()); // overwhelmingly likely
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Xoshiro256::seed_from_u64(12);
        for _ in 0..50 {
            let sample = rng.sample_distinct(100, 30);
            assert_eq!(sample.len(), 30);
            let set: std::collections::HashSet<_> = sample.iter().collect();
            assert_eq!(set.len(), 30, "sample contains duplicates");
            assert!(sample.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut sample = rng.sample_distinct(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn split_diverges_from_parent() {
        let mut parent = Xoshiro256::seed_from_u64(14);
        let mut child = parent.split();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(15);
        let mut b = Xoshiro256::seed_from_u64(15);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn seedable_from_seed_round_trip() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256::from_seed(seed);
        let mut b = Xoshiro256::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
