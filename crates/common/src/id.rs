//! Node identifiers.
//!
//! Overlay participants are identified by an opaque 64-bit [`NodeId`]. In
//! simulations, identifiers are typically dense indices (`0..n`); on a real
//! network they can be derived from an address or assigned by a bootstrap
//! service. The newtype keeps the two uses from being confused with plain
//! integers ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Unique identifier of a node in the overlay network.
///
/// `NodeId` is `Copy`, totally ordered and hashable, so it can be used as a
/// map key (for example in COUNT instance maps, which are keyed by the
/// leader's identifier).
///
/// # Examples
///
/// ```
/// use epidemic_common::NodeId;
///
/// let a = NodeId::new(3);
/// let b = NodeId::new(7);
/// assert!(a < b);
/// assert_eq!(a.as_u64(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node identifier from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw 64-bit value of this identifier.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the identifier as a `usize` index.
    ///
    /// Simulations use dense identifiers (`0..n`) so node state can live in
    /// flat arrays indexed by `NodeId`.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not fit in `usize` (only possible on
    /// 32-bit targets with identifiers above `u32::MAX`).
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("node id exceeds usize")
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<usize> for NodeId {
    fn from(raw: usize) -> Self {
        NodeId(raw as u64)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn construction_and_accessors() {
        let id = NodeId::new(17);
        assert_eq!(id.as_u64(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(u64::from(id), 17);
    }

    #[test]
    fn conversions_round_trip() {
        let id: NodeId = 5u64.into();
        assert_eq!(id, NodeId::new(5));
        let id: NodeId = 9usize.into();
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(123).to_string(), "n123");
    }

    #[test]
    fn ordering_matches_raw_values() {
        let mut set = BTreeSet::new();
        set.insert(NodeId::new(2));
        set.insert(NodeId::new(0));
        set.insert(NodeId::new(1));
        let ordered: Vec<u64> = set.into_iter().map(NodeId::as_u64).collect();
        assert_eq!(ordered, vec![0, 1, 2]);
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(NodeId::new(1), "one");
        assert_eq!(m[&NodeId::new(1)], "one");
    }
}
