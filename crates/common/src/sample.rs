//! Neighbor sampling abstraction.
//!
//! The only thing the aggregation protocol needs from a membership or
//! topology layer is the `GETNEIGHBOR()` primitive of the paper's Figure 1:
//! a uniformly random member of the node's current neighbor set.
//! [`NeighborSampling`] captures exactly that. It lives in the shared
//! kernel so that membership (`epidemic-newscast`) and topology
//! (`epidemic-topology`) are sibling layers: both implement the trait, and
//! every engine from `epidemic-common` up can accept any overlay without
//! depending on either crate.

use crate::rng::Xoshiro256;

/// Draws a uniform index in `[0, len)` excluding `skip` (when
/// `skip < len`), or `None` when no eligible index remains.
///
/// This is the one skip-over-self trick every overlay sampler needs; a
/// single implementation keeps the off-by-one invariant in one place.
///
/// # Examples
///
/// ```
/// use epidemic_common::rng::Xoshiro256;
/// use epidemic_common::sample::index_excluding;
///
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// assert_eq!(index_excluding(&mut rng, 1, Some(0)), None);
/// let i = index_excluding(&mut rng, 5, Some(2)).unwrap();
/// assert!(i < 5 && i != 2);
/// ```
#[inline]
pub fn index_excluding(rng: &mut Xoshiro256, len: usize, skip: Option<usize>) -> Option<usize> {
    match skip {
        Some(pos) if pos < len => {
            if len < 2 {
                return None;
            }
            let raw = rng.index(len - 1);
            Some(if raw >= pos { raw + 1 } else { raw })
        }
        _ => {
            if len == 0 {
                return None;
            }
            Some(rng.index(len))
        }
    }
}

/// A source of uniformly random neighbors — the paper's `GETNEIGHBOR()`.
///
/// Implementors: `epidemic_topology::Graph` (static topologies),
/// [`CompleteSampler`] (implicit complete graph), and
/// `epidemic_newscast::Overlay` (dynamic views).
pub trait NeighborSampling {
    /// Total number of nodes in the overlay.
    fn node_count(&self) -> usize;

    /// Returns a uniformly random out-neighbor of `node`, or `None` if the
    /// node has no neighbors.
    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize>;
}

/// Implicit complete graph: every node neighbors every other node.
///
/// The complete topology at `n = 10^6` would need ~10¹² edges if
/// materialized; this sampler draws a uniform peer `!= node` in O(1).
///
/// # Examples
///
/// ```
/// use epidemic_common::rng::Xoshiro256;
/// use epidemic_common::sample::{CompleteSampler, NeighborSampling};
///
/// let overlay = CompleteSampler::new(10);
/// let mut rng = Xoshiro256::seed_from_u64(0);
/// let peer = overlay.sample_neighbor(3, &mut rng).unwrap();
/// assert_ne!(peer, 3);
/// assert!(peer < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteSampler {
    nodes: usize,
}

impl CompleteSampler {
    /// Creates a complete-graph sampler over `nodes` nodes.
    pub const fn new(nodes: usize) -> Self {
        CompleteSampler { nodes }
    }
}

impl NeighborSampling for CompleteSampler {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        index_excluding(rng, self.nodes, Some(node))
    }
}

impl<T: NeighborSampling + ?Sized> NeighborSampling for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        (**self).sample_neighbor(node, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_never_returns_self() {
        let s = CompleteSampler::new(5);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for node in 0..5 {
            for _ in 0..100 {
                let peer = s.sample_neighbor(node, &mut rng).unwrap();
                assert_ne!(peer, node);
                assert!(peer < 5);
            }
        }
    }

    #[test]
    fn complete_covers_all_peers_uniformly() {
        let s = CompleteSampler::new(4);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut counts = [0usize; 4];
        let trials = 30_000;
        for _ in 0..trials {
            counts[s.sample_neighbor(1, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        for &c in [counts[0], counts[2], counts[3]].iter() {
            assert!((c as i64 - 10_000).abs() < 1_000);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        assert_eq!(CompleteSampler::new(0).sample_neighbor(0, &mut rng), None);
        assert_eq!(CompleteSampler::new(1).sample_neighbor(0, &mut rng), None);
        let two = CompleteSampler::new(2);
        assert_eq!(two.sample_neighbor(0, &mut rng), Some(1));
        assert_eq!(two.sample_neighbor(1, &mut rng), Some(0));
    }

    #[test]
    fn reference_impl_forwards() {
        let s = CompleteSampler::new(3);
        let by_ref: &dyn NeighborSampling = &s;
        assert_eq!(NeighborSampling::node_count(&by_ref), 3);
        let mut rng = Xoshiro256::seed_from_u64(4);
        assert!(by_ref.sample_neighbor(0, &mut rng).is_some());
    }
}
