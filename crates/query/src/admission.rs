//! Token-bucket admission control for the submit path.
//!
//! One bucket per (query, node): sustained rate `rate_per_sec`, capacity
//! `burst`. The bucket is clock-driven — refills are computed from the
//! caller-supplied `now` in milliseconds — so the same sequence of
//! `(now, try_take)` calls grants the same sequence of admissions under
//! the simulator and both UDP runtimes.

use crate::descriptor::AdmissionConfig;

/// Deterministic token bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    config: AdmissionConfig,
    /// Scaled by 1000 so refill math stays integral: one token is
    /// `1000` millitokens, and `rate_per_sec` adds exactly
    /// `rate_per_sec` millitokens per elapsed millisecond.
    millitokens: u64,
    last_refill: u64,
}

impl TokenBucket {
    /// A full bucket with the given limits.
    pub fn new(config: AdmissionConfig) -> Self {
        TokenBucket {
            config,
            millitokens: u64::from(config.burst) * 1000,
            last_refill: 0,
        }
    }

    /// Attempts to take one token at time `now` (milliseconds); `true`
    /// grants. Unlimited configs always grant.
    pub fn try_take(&mut self, now: u64) -> bool {
        if !self.config.is_limited() {
            return true;
        }
        let elapsed = now.saturating_sub(self.last_refill);
        self.last_refill = now;
        let cap = u64::from(self.config.burst) * 1000;
        self.millitokens = self
            .millitokens
            .saturating_add(elapsed.saturating_mul(u64::from(self.config.rate_per_sec)))
            .min(cap);
        if self.millitokens >= 1000 {
            self.millitokens -= 1000;
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available (unlimited buckets report
    /// `u32::MAX`).
    pub fn available(&self) -> u32 {
        if !self.config.is_limited() {
            return u32::MAX;
        }
        (self.millitokens / 1000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let mut bucket = TokenBucket::new(AdmissionConfig::UNLIMITED);
        for t in 0..1_000 {
            assert!(bucket.try_take(t));
        }
    }

    #[test]
    fn burst_then_rate_gates() {
        // 10/s sustained, burst of 3: the first three land instantly,
        // the fourth needs 100 ms of refill.
        let mut bucket = TokenBucket::new(AdmissionConfig::limited(10, 3));
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        assert!(!bucket.try_take(0));
        assert!(!bucket.try_take(50));
        assert!(bucket.try_take(100));
        assert!(!bucket.try_take(100));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut bucket = TokenBucket::new(AdmissionConfig::limited(1_000, 2));
        assert!(bucket.try_take(0));
        assert!(bucket.try_take(0));
        // A long quiet period refills to burst, not beyond.
        assert_eq!(bucket.available(), 0);
        assert!(bucket.try_take(1_000_000));
        assert!(bucket.try_take(1_000_000));
        assert!(!bucket.try_take(1_000_000));
    }

    #[test]
    fn deterministic_replay() {
        let schedule: Vec<u64> = vec![0, 10, 20, 500, 501, 502, 900, 1_400];
        let run =
            |mut b: TokenBucket| -> Vec<bool> { schedule.iter().map(|&t| b.try_take(t)).collect() };
        let config = AdmissionConfig::limited(2, 1);
        assert_eq!(run(TokenBucket::new(config)), run(TokenBucket::new(config)));
    }
}
