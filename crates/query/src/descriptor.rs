//! Named query descriptors: what a client asks the network to aggregate.
//!
//! A [`QueryDescriptor`] is the unit of installation in the query plane:
//! a name, an [`AggregateKind`], epoch geometry (γ and the cycle length δ
//! of its private epoch-restart schedule), an optional TTL, a default
//! contribution for nodes no client has submitted to, and per-node
//! admission limits for the submit path. Descriptors travel inside
//! catalog entries (see [`crate::catalog`]) and inside `Install` RPC
//! frames, so every field is plain old data with a stable wire encoding
//! (the aggregate kind is encoded as its index in
//! [`AggregateKind::ALL`]).

use crate::QueryError;
use epidemic_aggregation::AggregateKind;

/// Longest admissible query name in bytes (a `u8` length prefix on the
/// wire).
pub const MAX_NAME_LEN: usize = 255;

/// Per-node token-bucket admission limits for a query's submit path.
///
/// `rate_per_sec == 0` disables limiting entirely (the bucket always
/// grants). `burst` is the bucket capacity: how many submits may land
/// back-to-back before the rate gates them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained submits per second granted per node.
    pub rate_per_sec: u32,
    /// Bucket capacity (maximum burst size).
    pub burst: u32,
}

impl AdmissionConfig {
    /// No admission limiting: every submit is granted.
    pub const UNLIMITED: AdmissionConfig = AdmissionConfig {
        rate_per_sec: 0,
        burst: 0,
    };

    /// Limited to `rate_per_sec` sustained with bursts of `burst`.
    pub fn limited(rate_per_sec: u32, burst: u32) -> Self {
        AdmissionConfig {
            rate_per_sec,
            burst: burst.max(1),
        }
    }

    /// `true` when the config limits at all.
    pub fn is_limited(&self) -> bool {
        self.rate_per_sec > 0
    }
}

/// A named, installable aggregate query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDescriptor {
    /// Cluster-unique query name (≤ [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// Which aggregate the query computes.
    pub kind: AggregateKind,
    /// Epoch length γ in cycles: how many cycles each snapshot converges
    /// before it is reported and the query restarts from fresh values.
    pub gamma: u32,
    /// Cycle length δ in milliseconds of this query's gossip schedule.
    pub cycle_length: u64,
    /// Exchange timeout in milliseconds (must be `< cycle_length`).
    pub timeout: u64,
    /// Lifetime in milliseconds after installation; `0` = standing query.
    pub ttl_ms: u64,
    /// Value a node contributes before any client submits to it.
    pub default_value: f64,
    /// Per-node admission limits for submits.
    pub admission: AdmissionConfig,
}

impl QueryDescriptor {
    /// A descriptor with sensible defaults: γ = 10, δ = 1 s, timeout
    /// 200 ms, standing (no TTL), default contribution 0, unlimited
    /// admission.
    pub fn new(name: impl Into<String>, kind: AggregateKind) -> Self {
        QueryDescriptor {
            name: name.into(),
            kind,
            gamma: 10,
            cycle_length: 1_000,
            timeout: 200,
            ttl_ms: 0,
            default_value: 0.0,
            admission: AdmissionConfig::UNLIMITED,
        }
    }

    /// Sets the epoch length γ (cycles per epoch).
    pub fn with_gamma(mut self, gamma: u32) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the cycle length δ in milliseconds; the exchange timeout is
    /// re-derived as δ/5 (minimum 1 ms) so the pair stays valid.
    pub fn with_cycle_length(mut self, ms: u64) -> Self {
        self.cycle_length = ms;
        self.timeout = (ms / 5).max(1);
        self
    }

    /// Sets the TTL in milliseconds (`0` = standing query).
    pub fn with_ttl_ms(mut self, ttl: u64) -> Self {
        self.ttl_ms = ttl;
        self
    }

    /// Sets the default per-node contribution.
    pub fn with_default_value(mut self, value: f64) -> Self {
        self.default_value = value;
        self
    }

    /// Sets the admission limits.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Validates the descriptor the way installation will.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidDescriptor`] names the first violated
    /// constraint: empty/oversized name, γ = 0, δ = 0, or a timeout not
    /// in `1..cycle_length`.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.name.is_empty() {
            return Err(QueryError::InvalidDescriptor("empty query name"));
        }
        if self.name.len() > MAX_NAME_LEN {
            return Err(QueryError::InvalidDescriptor(
                "query name exceeds 255 bytes",
            ));
        }
        if self.gamma == 0 {
            return Err(QueryError::InvalidDescriptor("gamma must be at least 1"));
        }
        if self.cycle_length == 0 {
            return Err(QueryError::InvalidDescriptor(
                "cycle length must be positive",
            ));
        }
        if self.timeout == 0 || self.timeout >= self.cycle_length {
            return Err(QueryError::InvalidDescriptor(
                "timeout must be positive and shorter than the cycle",
            ));
        }
        Ok(())
    }
}

/// Stable wire code of an aggregate kind: its index in
/// [`AggregateKind::ALL`].
pub fn kind_code(kind: AggregateKind) -> u8 {
    AggregateKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind present in ALL") as u8
}

/// Inverse of [`kind_code`]; `None` for out-of-range codes.
pub fn kind_from_code(code: u8) -> Option<AggregateKind> {
    AggregateKind::ALL.get(code as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        QueryDescriptor::new("cpu", AggregateKind::Average)
            .validate()
            .unwrap();
    }

    #[test]
    fn builders_compose() {
        let d = QueryDescriptor::new("mem", AggregateKind::Maximum)
            .with_gamma(20)
            .with_cycle_length(500)
            .with_ttl_ms(60_000)
            .with_default_value(1.5)
            .with_admission(AdmissionConfig::limited(100, 10));
        assert_eq!(d.gamma, 20);
        assert_eq!(d.cycle_length, 500);
        assert_eq!(d.timeout, 100);
        assert_eq!(d.ttl_ms, 60_000);
        assert_eq!(d.default_value, 1.5);
        assert!(d.admission.is_limited());
        d.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let base = QueryDescriptor::new("q", AggregateKind::Average);
        assert!(QueryDescriptor {
            name: String::new(),
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(QueryDescriptor {
            name: "x".repeat(256),
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(QueryDescriptor {
            gamma: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(QueryDescriptor {
            timeout: 1_000,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(QueryDescriptor { timeout: 0, ..base }.validate().is_err());
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in AggregateKind::ALL {
            assert_eq!(kind_from_code(kind_code(kind)), Some(kind));
        }
        assert_eq!(kind_from_code(8), None);
        assert_eq!(kind_from_code(255), None);
    }

    #[test]
    fn unlimited_admission_is_not_limited() {
        assert!(!AdmissionConfig::UNLIMITED.is_limited());
        assert_eq!(AdmissionConfig::limited(5, 0).burst, 1);
    }
}
