//! The per-node query plane: one sans-io state machine multiplexing
//! every installed query.
//!
//! A [`QueryPlane`] owns the node's catalog replica plus one
//! [`GossipNode`] per live query — each query is its own epoch-restart
//! schedule over the shared exchange plane, so concurrent queries with
//! different γ and δ coexist without interfering (their frames are
//! routed by query name, see `epidemic-net`'s tag 12). Like the
//! aggregation core it performs no I/O and holds no clock: embeddings
//! call [`QueryPlane::poll`] with the current time and a peer sampler,
//! deliver incoming frames through [`QueryPlane::handle_catalog`] /
//! [`QueryPlane::handle_aggregation`], serve clients through
//! [`QueryPlane::handle_rpc`], and transmit whatever [`QueryOutbound`]
//! frames come back. The event simulator and both UDP runtimes drive
//! this exact type, which is what makes sim-vs-wire conformance a test
//! rather than a hope.
//!
//! Each query's epoch schedule is anchored cluster-wide at the gossiped
//! install timestamp: the installing node activates into epoch 1
//! immediately, and a node that learns of the query later starts its
//! [`GossipNode`] as a Section 4.2 joiner that waits for the next common
//! boundary `installed_at + k·γδ`. Deriving boundaries from the shared
//! anchor (rather than each node's local discovery time) keeps epoch
//! restarts aligned, so every replica settles every epoch instead of
//! being perpetually jumped forward by earlier-anchored peers.

use crate::admission::TokenBucket;
use crate::catalog::{CatalogEntry, QueryCatalog};
use crate::descriptor::QueryDescriptor;
use crate::rpc::{RpcRequest, RpcResponse, RpcStatus};
use crate::QueryError;
use epidemic_aggregation::{
    AggregateKind, EpochReport, GossipNode, InstanceState, Message, NodeConfig, PeerSampler,
};
use epidemic_common::NodeId;
use epidemic_telemetry::{Counter, Gauge, Registry};
use std::collections::BTreeMap;

/// Plane-wide tuning knobs shared by every node of a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlaneConfig {
    /// Catalog anti-entropy cadence in milliseconds: how often a node
    /// pushes its entry list to a random peer when nothing changed.
    pub gossip_period: u64,
    /// Peers contacted per gossip round while a recent change is being
    /// spread (the rumor-mongering boost).
    pub boost_fanout: usize,
    /// Gossip rounds the boost lasts after a change.
    pub boost_rounds: u32,
    /// `C` of `P_lead = C/N̂` for queries that need a COUNT instance.
    pub count_concurrency: f64,
    /// Initial network-size guess handed to each query's gossip node.
    pub initial_size_guess: f64,
}

impl Default for QueryPlaneConfig {
    fn default() -> Self {
        QueryPlaneConfig {
            gossip_period: 250,
            boost_fanout: 4,
            boost_rounds: 4,
            count_concurrency: 16.0,
            initial_size_guess: 64.0,
        }
    }
}

/// An outbound query-plane frame with its destination.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutbound {
    /// A push-pull aggregation message belonging to the named query
    /// (wire tag 12).
    Aggregation {
        /// Destination node.
        to: NodeId,
        /// Owning query.
        query: String,
        /// The embedded aggregation message.
        message: Message,
    },
    /// A catalog gossip push (wire tag 11).
    Catalog {
        /// Destination node.
        to: NodeId,
        /// Full entry list, tombstones included.
        entries: Vec<CatalogEntry>,
    },
}

/// A readable estimate of one query at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEstimate {
    /// The estimated aggregate value.
    pub value: f64,
    /// Epoch the estimate belongs to.
    pub epoch: u64,
    /// `true` when the value comes from a completed epoch (a consistent
    /// snapshot); `false` for a mid-epoch read of the converging state.
    pub settled: bool,
}

/// One completed query epoch, drained by the embedding for cluster-level
/// telemetry (per-query estimate drift).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEpoch {
    /// Owning query.
    pub query: String,
    /// The completed epoch number.
    pub epoch: u64,
    /// This node's estimate for that epoch (`None` when the aggregate
    /// could not be extracted, e.g. no COUNT mass reached the node).
    pub estimate: Option<f64>,
}

struct RunningQuery {
    node: GossipNode,
    version: u32,
    kind: AggregateKind,
    bucket: TokenBucket,
    latest: Option<(u64, f64)>,
    submits: Counter,
    reads: Counter,
    rejects: Counter,
}

impl std::fmt::Debug for RunningQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningQuery")
            .field("kind", &self.kind)
            .field("epoch", &self.node.epoch())
            .field("latest", &self.latest)
            .finish()
    }
}

/// The per-node query plane state machine.
#[derive(Debug)]
pub struct QueryPlane {
    id: NodeId,
    seed: u64,
    config: QueryPlaneConfig,
    catalog: QueryCatalog,
    running: BTreeMap<String, RunningQuery>,
    next_gossip_at: u64,
    boost_left: u32,
    epochs: Vec<QueryEpoch>,
    registry: Registry,
    installed_gauge: Gauge,
}

impl QueryPlane {
    /// Creates an empty plane for node `id`. Metrics go to `registry`
    /// (pass [`Registry::disabled`] to run without telemetry).
    pub fn new(id: NodeId, config: QueryPlaneConfig, seed: u64, registry: Registry) -> Self {
        let installed_gauge = registry.gauge("query.installed");
        QueryPlane {
            id,
            seed,
            config,
            catalog: QueryCatalog::new(),
            running: BTreeMap::new(),
            next_gossip_at: u64::MAX,
            boost_left: 0,
            epochs: Vec::new(),
            registry,
            installed_gauge,
        }
    }

    /// Node this plane belongs to.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Names of the queries currently running at this node.
    pub fn installed(&self) -> Vec<String> {
        self.running.keys().cloned().collect()
    }

    /// The catalog replica (tombstones included) — the gossip payload.
    pub fn catalog_entries(&self) -> Vec<CatalogEntry> {
        self.catalog.entries().cloned().collect()
    }

    /// Installs a query at this node and starts spreading it.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryCatalog::install`] failures (validation,
    /// conflict).
    pub fn install(&mut self, descriptor: QueryDescriptor, now: u64) -> Result<(), QueryError> {
        if self.catalog.install(descriptor, now)? {
            self.mark_changed(now);
            self.sync_running(now);
        }
        Ok(())
    }

    /// Removes (tombstones) a query and starts spreading the removal.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] when no live query of that name
    /// exists.
    pub fn remove(&mut self, name: &str, now: u64) -> Result<(), QueryError> {
        self.catalog.remove(name, now)?;
        self.mark_changed(now);
        self.sync_running(now);
        Ok(())
    }

    /// Submits this node's contribution to a query, subject to the
    /// query's admission limits. The value takes effect at the query's
    /// next epoch (snapshot semantics, same as `set_local_value`).
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] or [`QueryError::AdmissionRejected`]
    /// — the latter is also counted in the per-query
    /// `query.admission_rejects` series, never swallowed.
    pub fn submit(&mut self, name: &str, value: f64, now: u64) -> Result<(), QueryError> {
        let query = self.running.get_mut(name).ok_or(QueryError::UnknownQuery)?;
        if !query.bucket.try_take(now) {
            query.rejects.inc();
            return Err(QueryError::AdmissionRejected);
        }
        query.node.set_local_value(value);
        query.submits.inc();
        Ok(())
    }

    /// Reads the current estimate of a query at this node.
    ///
    /// Prefers the last completed epoch (a consistent snapshot); before
    /// any epoch completes, scalar-instance aggregates fall back to the
    /// converging mid-epoch state. COUNT-composed aggregates have no
    /// mid-epoch readout and report [`QueryError::NotReady`] until their
    /// first epoch closes.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] or [`QueryError::NotReady`].
    pub fn estimate(&mut self, name: &str) -> Result<QueryEstimate, QueryError> {
        let query = self.running.get_mut(name).ok_or(QueryError::UnknownQuery)?;
        query.reads.inc();
        if let Some((epoch, value)) = query.latest {
            return Ok(QueryEstimate {
                value,
                epoch,
                settled: true,
            });
        }
        // Mid-epoch fallback: reconstruct a report from the live scalar
        // states (maps are not exposed mid-epoch).
        let mut states = Vec::new();
        for idx in 0..query.kind.instance_count() {
            match query.node.scalar_estimate(idx) {
                Some(v) => states.push(InstanceState::Scalar(v)),
                None => return Err(QueryError::NotReady),
            }
        }
        let report = EpochReport {
            epoch: query.node.epoch(),
            cycles_run: query.node.cycles_run(),
            states,
        };
        match query.kind.extract(&report, 0) {
            Some(value) => Ok(QueryEstimate {
                value,
                epoch: report.epoch,
                settled: false,
            }),
            None => Err(QueryError::NotReady),
        }
    }

    /// Serves one client RPC — the single entry point shared by every
    /// runtime, so a request is answered identically no matter which
    /// transport delivered it.
    pub fn handle_rpc(&mut self, request: &RpcRequest, now: u64) -> RpcResponse {
        let id = request.id();
        let result = match request {
            RpcRequest::Install { descriptor, .. } => self
                .install(descriptor.clone(), now)
                .map(|()| RpcResponse::ack(id)),
            RpcRequest::Remove { name, .. } => {
                self.remove(name, now).map(|()| RpcResponse::ack(id))
            }
            RpcRequest::Submit { name, value, .. } => self
                .submit(name, *value, now)
                .map(|()| RpcResponse::ack(id)),
            RpcRequest::Read { name, .. } => self.estimate(name).map(|est| RpcResponse {
                id,
                status: RpcStatus::Ok,
                estimate: est.value,
                epoch: est.epoch,
            }),
        };
        result.unwrap_or_else(|err| RpcResponse::reject(id, err.into()))
    }

    /// Advances timers to `now`: expires TTLs, runs every query's gossip
    /// schedule, and emits due catalog gossip. Returns the frames to
    /// transmit. The sampler is the embedding's `GETNEIGHBOR()`; it is
    /// consulted once per initiated exchange and once per catalog push.
    pub fn poll(&mut self, now: u64, sampler: &mut dyn PeerSampler) -> Vec<QueryOutbound> {
        let mut out = Vec::new();
        if self.catalog.expire(now) > 0 {
            self.mark_changed(now);
            self.sync_running(now);
        }
        for (name, query) in self.running.iter_mut() {
            if let Some(outbound) = query.node.poll_sampler(now, sampler) {
                out.push(QueryOutbound::Aggregation {
                    to: outbound.to,
                    query: name.clone(),
                    message: outbound.message,
                });
            }
        }
        self.harvest_reports();
        if now >= self.next_gossip_at && !self.catalog.is_empty() {
            let fanout = if self.boost_left > 0 {
                self.boost_left -= 1;
                self.config.boost_fanout.max(1)
            } else {
                1
            };
            let entries = self.catalog_entries();
            for _ in 0..fanout {
                if let Some(peer) = sampler.draw_peer() {
                    if peer != self.id {
                        out.push(QueryOutbound::Catalog {
                            to: peer,
                            entries: entries.clone(),
                        });
                    }
                }
            }
            self.next_gossip_at = now + self.config.gossip_period;
        }
        out
    }

    /// Merges a gossiped catalog; returns `true` if the replica changed
    /// (in which case the node re-gossips promptly to keep the rumor
    /// spreading, and the embedding should re-read
    /// [`QueryPlane::next_deadline`]).
    pub fn handle_catalog(&mut self, entries: &[CatalogEntry], now: u64) -> bool {
        if self.catalog.merge_all(entries) {
            self.mark_changed(now);
            self.sync_running(now);
            true
        } else {
            // First contact with an equal catalog still starts the
            // gossip schedule (a fresh node may have merged nothing new
            // yet still needs to participate in anti-entropy).
            if self.next_gossip_at == u64::MAX && !self.catalog.is_empty() {
                self.next_gossip_at = now + self.config.gossip_period;
            }
            false
        }
    }

    /// Routes an incoming aggregation message to its query, returning
    /// the reply to transmit. Messages for unknown queries are dropped —
    /// catalog gossip will catch the node up, and the sender's exchange
    /// timeout masks the gap exactly like a crashed peer.
    pub fn handle_aggregation(
        &mut self,
        query: &str,
        message: &Message,
        now: u64,
    ) -> Option<QueryOutbound> {
        let name = query.to_string();
        let running = self.running.get_mut(&name)?;
        let reply = running.node.handle(message, now);
        self.harvest_reports();
        reply.map(|outbound| QueryOutbound::Aggregation {
            to: outbound.to,
            query: name,
            message: outbound.message,
        })
    }

    /// Earliest tick this plane needs polling again: the soonest query
    /// deadline or the next catalog gossip, whichever comes first.
    /// `u64::MAX` while the plane is empty. Re-read after every local
    /// operation and every `handle_*` call — installs change it.
    pub fn next_deadline(&self) -> u64 {
        let mut deadline = self.next_gossip_at;
        for query in self.running.values() {
            deadline = deadline.min(query.node.next_deadline());
        }
        deadline
    }

    /// Drains the completed query epochs recorded since the last call
    /// (for cluster-level per-query telemetry).
    pub fn take_epochs(&mut self) -> Vec<QueryEpoch> {
        std::mem::take(&mut self.epochs)
    }

    fn mark_changed(&mut self, now: u64) {
        self.boost_left = self.config.boost_rounds;
        self.next_gossip_at = self.next_gossip_at.min(now);
    }

    fn harvest_reports(&mut self) {
        for (name, query) in self.running.iter_mut() {
            for report in query.node.take_reports() {
                let estimate = query.kind.extract(&report, 0);
                if let Some(value) = estimate {
                    query.latest = Some((report.epoch, value));
                }
                self.epochs.push(QueryEpoch {
                    query: name.clone(),
                    epoch: report.epoch,
                    estimate,
                });
            }
        }
    }

    /// Reconciles the running set with the catalog: starts gossip nodes
    /// for newly live queries, drops removed/expired ones.
    fn sync_running(&mut self, now: u64) {
        let live: Vec<CatalogEntry> = self.catalog.live(now).cloned().collect();
        // Version mismatches (a resurrected name with a new descriptor)
        // drop the stale node and restart from the new entry's anchor.
        self.running.retain(|name, query| {
            live.iter()
                .any(|e| e.descriptor.name == *name && e.version == query.version)
        });
        for entry in live {
            let name = entry.descriptor.name.clone();
            if self.running.contains_key(&name) {
                continue;
            }
            let d = &entry.descriptor;
            let mut builder = NodeConfig::builder();
            builder
                .gamma(d.gamma)
                .cycle_length(d.cycle_length)
                .timeout(d.timeout)
                .initial_size_guess(self.config.initial_size_guess);
            for spec in d.kind.instances(self.config.count_concurrency) {
                builder.instance(spec);
            }
            let config = builder
                .build()
                .expect("validated descriptor yields a valid node config");
            // The query's epoch schedule is anchored cluster-wide at the
            // gossiped install time: epoch k spans
            // `anchor + (k-1)·γδ .. anchor + k·γδ`. The installer (and
            // any node learning of the query within the same tick)
            // activates into epoch 1 at once; a late learner joins as a
            // Section 4.2 joiner waiting for the next common boundary so
            // its epoch restarts stay aligned with everyone else's.
            let seed = self.seed ^ name_seed(&name);
            let epoch_len = u64::from(d.gamma) * d.cycle_length;
            let anchor = entry.installed_at;
            let elapsed = now.saturating_sub(anchor);
            let node = if elapsed == 0 {
                let mut node =
                    GossipNode::joiner(self.id, config, d.default_value, seed, 0, anchor);
                // The activation is due immediately; perform it now so an
                // install-then-read at the same tick already sees a live
                // (if unconverged) instance.
                node.poll(now, None);
                node
            } else {
                let boundary = elapsed / epoch_len + 1;
                GossipNode::joiner(
                    self.id,
                    config,
                    d.default_value,
                    seed,
                    boundary,
                    anchor + boundary * epoch_len,
                )
            };
            let labels = [("query", name.as_str())];
            self.running.insert(
                name.clone(),
                RunningQuery {
                    node,
                    version: entry.version,
                    kind: d.kind,
                    bucket: TokenBucket::new(d.admission),
                    latest: None,
                    submits: self.registry.counter_with("query.submits", &labels),
                    reads: self.registry.counter_with("query.reads", &labels),
                    rejects: self
                        .registry
                        .counter_with("query.admission_rejects", &labels),
                },
            );
        }
        self.installed_gauge.set(self.running.len() as f64);
    }
}

/// FNV-1a over the query name: a per-query seed offset so two queries at
/// the same node draw independent randomness streams.
fn name_seed(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::AdmissionConfig;

    struct RoundRobin {
        peers: Vec<u64>,
        at: usize,
    }

    impl PeerSampler for RoundRobin {
        fn draw_peer(&mut self) -> Option<NodeId> {
            let peer = self.peers[self.at % self.peers.len()];
            self.at += 1;
            Some(NodeId::new(peer))
        }
    }

    fn plane(id: u64) -> QueryPlane {
        QueryPlane::new(
            NodeId::new(id),
            QueryPlaneConfig::default(),
            42,
            Registry::disabled(),
        )
    }

    fn fast_query(name: &str, kind: AggregateKind) -> QueryDescriptor {
        QueryDescriptor::new(name, kind)
            .with_gamma(4)
            .with_cycle_length(100)
    }

    /// Drives a fully-connected clique of planes over `from..to` ms.
    fn run_clique(planes: &mut [QueryPlane], from: u64, to: u64) {
        let n = planes.len() as u64;
        for t in from..to {
            for i in 0..planes.len() {
                let mut sampler = RoundRobin {
                    peers: (0..n).filter(|&p| p != i as u64).collect(),
                    at: (t as usize) + i,
                };
                let out = planes[i].poll(t, &mut sampler);
                deliver(planes, out, t);
            }
        }
    }

    fn deliver(planes: &mut [QueryPlane], frames: Vec<QueryOutbound>, t: u64) {
        for frame in frames {
            match frame {
                QueryOutbound::Aggregation { to, query, message } => {
                    let reply =
                        planes[to.as_u64() as usize].handle_aggregation(&query, &message, t);
                    if let Some(reply) = reply {
                        deliver(planes, vec![reply], t);
                    }
                }
                QueryOutbound::Catalog { to, entries } => {
                    planes[to.as_u64() as usize].handle_catalog(&entries, t);
                }
            }
        }
    }

    #[test]
    fn empty_plane_is_idle() {
        let mut p = plane(0);
        assert_eq!(p.next_deadline(), u64::MAX);
        let mut sampler = RoundRobin {
            peers: vec![1],
            at: 0,
        };
        assert!(p.poll(1_000, &mut sampler).is_empty());
        assert!(p.installed().is_empty());
    }

    #[test]
    fn install_starts_gossip_and_schedules() {
        let mut p = plane(0);
        p.install(fast_query("cpu", AggregateKind::Average), 10)
            .unwrap();
        assert_eq!(p.installed(), vec!["cpu".to_string()]);
        assert!(p.next_deadline() <= 10 + 250, "gossip not scheduled");
        let mut sampler = RoundRobin {
            peers: vec![1, 2],
            at: 0,
        };
        let out = p.poll(10, &mut sampler);
        assert!(
            out.iter()
                .any(|f| matches!(f, QueryOutbound::Catalog { .. })),
            "no catalog gossip emitted after install"
        );
    }

    #[test]
    fn catalog_gossip_installs_remotely_and_query_converges() {
        let mut planes: Vec<QueryPlane> = (0..4).map(plane).collect();
        planes[0]
            .install(fast_query("load", AggregateKind::Average), 0)
            .unwrap();
        // Seed distinct values at each node once the query reaches it.
        run_clique(&mut planes, 0, 1_200);
        for (i, p) in planes.iter().enumerate() {
            assert_eq!(
                p.installed(),
                vec!["load".to_string()],
                "node {i} missing query"
            );
        }
        for (i, p) in planes.iter_mut().enumerate() {
            p.submit("load", (i + 1) as f64, 1_200).unwrap();
        }
        run_clique(&mut planes, 1_200, 3_600);
        // Truth = mean of 1..=4 = 2.5 (submits replaced the 0 defaults).
        for (i, p) in planes.iter_mut().enumerate() {
            let est = p.estimate("load").expect("estimate available");
            assert!(est.settled, "node {i} never settled an epoch");
            assert!(
                (est.value - 2.5).abs() < 0.2,
                "node {i} estimate {} off truth 2.5",
                est.value
            );
        }
    }

    #[test]
    fn remove_spreads_and_tears_down() {
        let mut planes: Vec<QueryPlane> = (0..3).map(plane).collect();
        planes[0]
            .install(fast_query("tmp", AggregateKind::Average), 0)
            .unwrap();
        run_clique(&mut planes, 0, 800);
        assert!(planes.iter().all(|p| !p.installed().is_empty()));
        planes[1].remove("tmp", 800).unwrap();
        run_clique(&mut planes, 800, 1_600);
        for (i, p) in planes.iter().enumerate() {
            assert!(p.installed().is_empty(), "node {i} still runs the query");
        }
        assert_eq!(
            planes[2].estimate("tmp").unwrap_err(),
            QueryError::UnknownQuery
        );
    }

    #[test]
    fn ttl_expires_everywhere_without_a_remove() {
        let mut planes: Vec<QueryPlane> = (0..3).map(plane).collect();
        planes[0]
            .install(
                fast_query("blip", AggregateKind::Average).with_ttl_ms(1_000),
                0,
            )
            .unwrap();
        run_clique(&mut planes, 0, 900);
        assert!(planes.iter().all(|p| !p.installed().is_empty()));
        run_clique(&mut planes, 900, 1_300);
        for (i, p) in planes.iter().enumerate() {
            assert!(p.installed().is_empty(), "node {i} outlived the TTL");
        }
    }

    #[test]
    fn admission_limits_reject_and_count() {
        let registry = Registry::new();
        let mut p = QueryPlane::new(
            NodeId::new(0),
            QueryPlaneConfig::default(),
            1,
            registry.clone(),
        );
        let q = fast_query("gated", AggregateKind::Average)
            .with_admission(AdmissionConfig::limited(1, 2));
        p.install(q, 0).unwrap();
        assert!(p.submit("gated", 1.0, 0).is_ok());
        assert!(p.submit("gated", 2.0, 0).is_ok());
        assert_eq!(
            p.submit("gated", 3.0, 0),
            Err(QueryError::AdmissionRejected)
        );
        // After a second of refill one more lands.
        assert!(p.submit("gated", 4.0, 1_000).is_ok());
        assert_eq!(registry.counter_value("query.submits"), 3);
        assert_eq!(registry.counter_value("query.admission_rejects"), 1);
        assert_eq!(registry.gauge_value("query.installed"), Some(1.0));
    }

    #[test]
    fn rpc_dispatch_covers_every_op_and_error() {
        let mut p = plane(0);
        let d = fast_query("q", AggregateKind::Average);
        let ok = p.handle_rpc(
            &RpcRequest::Install {
                id: 1,
                descriptor: d.clone(),
            },
            0,
        );
        assert_eq!(ok, RpcResponse::ack(1));
        // Conflicting re-install.
        let conflict = p.handle_rpc(
            &RpcRequest::Install {
                id: 2,
                descriptor: fast_query("q", AggregateKind::Maximum),
            },
            0,
        );
        assert_eq!(conflict.status, RpcStatus::Conflict);
        let submit = p.handle_rpc(
            &RpcRequest::Submit {
                id: 3,
                name: "q".into(),
                value: 9.0,
            },
            0,
        );
        assert_eq!(submit.status, RpcStatus::Ok);
        let read = p.handle_rpc(
            &RpcRequest::Read {
                id: 4,
                name: "q".into(),
            },
            0,
        );
        assert_eq!(read.status, RpcStatus::Ok);
        assert_eq!(read.id, 4);
        let unknown = p.handle_rpc(
            &RpcRequest::Read {
                id: 5,
                name: "nope".into(),
            },
            0,
        );
        assert_eq!(unknown.status, RpcStatus::UnknownQuery);
        let gone = p.handle_rpc(
            &RpcRequest::Remove {
                id: 6,
                name: "q".into(),
            },
            0,
        );
        assert_eq!(gone.status, RpcStatus::Ok);
        let removed = p.handle_rpc(
            &RpcRequest::Submit {
                id: 7,
                name: "q".into(),
                value: 1.0,
            },
            0,
        );
        assert_eq!(removed.status, RpcStatus::UnknownQuery);
    }

    #[test]
    fn mid_epoch_read_falls_back_for_scalars_only() {
        let mut p = plane(0);
        p.install(fast_query("avg", AggregateKind::Average), 0)
            .unwrap();
        p.install(fast_query("size", AggregateKind::Count), 0)
            .unwrap();
        p.submit("avg", 7.0, 0).unwrap();
        // Activate the joiner nodes (epoch 1 starts at install time).
        let mut sampler = RoundRobin {
            peers: vec![1],
            at: 0,
        };
        p.poll(1, &mut sampler);
        let est = p.estimate("avg").unwrap();
        assert!(!est.settled);
        // The first epoch initialized from the default 0.0 before the
        // submit lands at the next epoch; mid-epoch the scalar is live.
        assert!(est.value.is_finite());
        assert_eq!(p.estimate("size").unwrap_err(), QueryError::NotReady);
    }

    #[test]
    fn concurrent_queries_keep_separate_schedules() {
        let mut planes: Vec<QueryPlane> = (0..3).map(plane).collect();
        planes[0]
            .install(fast_query("fast", AggregateKind::Maximum), 0)
            .unwrap();
        planes[0]
            .install(
                QueryDescriptor::new("slow", AggregateKind::Minimum)
                    .with_gamma(8)
                    .with_cycle_length(300),
                0,
            )
            .unwrap();
        run_clique(&mut planes, 0, 500);
        for (i, p) in planes.iter_mut().enumerate() {
            p.submit("fast", (i * 10) as f64, 500).unwrap();
            p.submit("slow", (i + 1) as f64, 500).unwrap();
        }
        // Submitted values land at the next epoch start, so the first
        // post-submit "slow" epoch closes near t=4500 — but a node that
        // is epoch-jumped at a boundary skips reporting the epoch it was
        // robbed of and settles a later one instead. Drive epoch-sized
        // chunks until every node has settled the post-submit truth,
        // bounded so divergence still fails the test.
        fn converged(p: &mut QueryPlane) -> bool {
            p.estimate("fast")
                .is_ok_and(|e| e.settled && (e.value - 20.0).abs() < 1e-6)
                && p.estimate("slow")
                    .is_ok_and(|e| e.settled && (e.value - 1.0).abs() < 1e-6)
        }
        let mut now = 500;
        while now < 20_000 {
            let next = now + 2_400;
            run_clique(&mut planes, now, next);
            now = next;
            if planes.iter_mut().all(converged) {
                break;
            }
        }
        for (i, p) in planes.iter_mut().enumerate() {
            assert!(converged(p), "node {i} never settled both queries");
        }
    }

    #[test]
    fn take_epochs_reports_completions() {
        let mut planes: Vec<QueryPlane> = (0..2).map(plane).collect();
        planes[0]
            .install(fast_query("e", AggregateKind::Average), 0)
            .unwrap();
        run_clique(&mut planes, 0, 2_000);
        let epochs = planes[0].take_epochs();
        assert!(!epochs.is_empty(), "no epochs harvested");
        assert!(epochs.iter().all(|e| e.query == "e"));
        assert!(planes[0].take_epochs().is_empty(), "drain must empty");
    }

    #[test]
    fn name_seed_separates_queries() {
        assert_ne!(name_seed("a"), name_seed("b"));
        assert_eq!(name_seed("cpu"), name_seed("cpu"));
    }
}
