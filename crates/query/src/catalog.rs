//! The replicated query catalog: versioned, tombstoned entries merged
//! epidemically.
//!
//! Every node holds a [`QueryCatalog`]; install/remove RPCs mutate the
//! local copy, and the query plane gossips the entry list to random
//! peers (codec tag 11 on the wire). Merging is a deterministic join —
//! per name, the entry with the greater precedence key wins, where the
//! key orders by version, then tombstone (a delete beats a concurrent
//! re-install of the same version), then descriptor contents as a stable
//! tiebreak — so any two replicas that have seen the same set of entries
//! hold byte-identical catalogs regardless of arrival order.

use crate::descriptor::{kind_code, QueryDescriptor};
use crate::QueryError;
use std::collections::BTreeMap;

/// One replicated catalog slot: a descriptor plus merge metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The query itself.
    pub descriptor: QueryDescriptor,
    /// Monotone per-name version; every local mutation bumps it.
    pub version: u32,
    /// Tombstone: the query was removed (the entry keeps gossiping so
    /// stragglers learn of the removal).
    pub deleted: bool,
    /// Protocol tick of installation — the cluster-wide anchor of the
    /// query's epoch schedule. Every node derives the same epoch
    /// boundaries `installed_at + k·γδ` from it, so replicas that learn
    /// of the query at different times still restart epochs in unison
    /// (the Section 4.2 joiner synchronization, applied per query).
    pub installed_at: u64,
    /// Protocol tick at which the query expires (`0` = never). Derived
    /// from the installing node's clock plus the descriptor TTL and
    /// gossiped verbatim, so replicas expire in unison.
    pub expires_at: u64,
}

impl CatalogEntry {
    /// `true` when the entry is serving (not tombstoned, not expired).
    pub fn is_live(&self, now: u64) -> bool {
        !self.deleted && (self.expires_at == 0 || now < self.expires_at)
    }

    /// Total order deciding which of two same-name entries survives a
    /// merge. Strictly increases on every local mutation (the version
    /// bump), and breaks version ties deterministically so concurrent
    /// divergent installs still converge.
    fn precedence(&self) -> impl Ord {
        (
            self.version,
            self.deleted,
            self.installed_at,
            self.expires_at,
            self.descriptor.gamma,
            self.descriptor.cycle_length,
            self.descriptor.timeout,
            self.descriptor.ttl_ms,
            kind_code(self.descriptor.kind),
            self.descriptor.default_value.to_bits(),
            self.descriptor.admission.rate_per_sec,
            self.descriptor.admission.burst,
        )
    }
}

/// A node's replica of the named-query catalog.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryCatalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl QueryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        QueryCatalog::default()
    }

    /// Installs `descriptor` locally at time `now`.
    ///
    /// Re-installing an identical live descriptor is idempotent;
    /// installing over a tombstone resurrects the name with a version
    /// bump.
    ///
    /// # Errors
    ///
    /// [`QueryError::InvalidDescriptor`] if validation fails, or
    /// [`QueryError::Conflict`] when a live entry of the same name has a
    /// different descriptor.
    pub fn install(&mut self, descriptor: QueryDescriptor, now: u64) -> Result<bool, QueryError> {
        descriptor.validate()?;
        let expires_at = if descriptor.ttl_ms == 0 {
            0
        } else {
            now.saturating_add(descriptor.ttl_ms)
        };
        match self.entries.get_mut(&descriptor.name) {
            Some(entry) if entry.is_live(now) => {
                if entry.descriptor == descriptor {
                    Ok(false)
                } else {
                    Err(QueryError::Conflict)
                }
            }
            Some(entry) => {
                entry.version += 1;
                entry.deleted = false;
                entry.installed_at = now;
                entry.expires_at = expires_at;
                entry.descriptor = descriptor;
                Ok(true)
            }
            None => {
                self.entries.insert(
                    descriptor.name.clone(),
                    CatalogEntry {
                        descriptor,
                        version: 1,
                        deleted: false,
                        installed_at: now,
                        expires_at,
                    },
                );
                Ok(true)
            }
        }
    }

    /// Tombstones the named query.
    ///
    /// # Errors
    ///
    /// [`QueryError::UnknownQuery`] when no live entry of that name
    /// exists.
    pub fn remove(&mut self, name: &str, now: u64) -> Result<(), QueryError> {
        match self.entries.get_mut(name) {
            Some(entry) if entry.is_live(now) => {
                entry.version += 1;
                entry.deleted = true;
                Ok(())
            }
            _ => Err(QueryError::UnknownQuery),
        }
    }

    /// Merges one gossiped entry; returns `true` if the replica changed.
    pub fn merge(&mut self, incoming: &CatalogEntry) -> bool {
        match self.entries.get_mut(&incoming.descriptor.name) {
            Some(existing) => {
                if incoming.precedence() > existing.precedence() {
                    *existing = incoming.clone();
                    true
                } else {
                    false
                }
            }
            None => {
                self.entries
                    .insert(incoming.descriptor.name.clone(), incoming.clone());
                true
            }
        }
    }

    /// Merges a gossiped entry list; returns `true` if anything changed.
    pub fn merge_all(&mut self, incoming: &[CatalogEntry]) -> bool {
        let mut changed = false;
        for entry in incoming {
            changed |= self.merge(entry);
        }
        changed
    }

    /// Tombstones every live entry whose TTL has elapsed; returns how
    /// many expired. Expiry is driven by the gossiped `expires_at`, so
    /// replicas tombstone at the same protocol time and the resulting
    /// same-version tombstones merge as no-ops.
    pub fn expire(&mut self, now: u64) -> usize {
        let mut expired = 0;
        for entry in self.entries.values_mut() {
            if !entry.deleted && entry.expires_at != 0 && now >= entry.expires_at {
                entry.version += 1;
                entry.deleted = true;
                expired += 1;
            }
        }
        expired
    }

    /// The entry for `name`, live or tombstoned.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// All entries (including tombstones) in name order — the gossip
    /// payload.
    pub fn entries(&self) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values()
    }

    /// Live entries at time `now`, in name order.
    pub fn live(&self, now: u64) -> impl Iterator<Item = &CatalogEntry> {
        self.entries.values().filter(move |e| e.is_live(now))
    }

    /// Number of live entries at time `now`.
    pub fn live_count(&self, now: u64) -> usize {
        self.live(now).count()
    }

    /// Total number of entries, tombstones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the catalog holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::AggregateKind;

    fn descriptor(name: &str) -> QueryDescriptor {
        QueryDescriptor::new(name, AggregateKind::Average)
    }

    #[test]
    fn install_then_get() {
        let mut cat = QueryCatalog::new();
        assert!(cat.install(descriptor("cpu"), 0).unwrap());
        let entry = cat.get("cpu").unwrap();
        assert_eq!(entry.version, 1);
        assert!(entry.is_live(0));
        assert_eq!(cat.live_count(0), 1);
    }

    #[test]
    fn reinstall_identical_is_idempotent() {
        let mut cat = QueryCatalog::new();
        cat.install(descriptor("cpu"), 0).unwrap();
        assert!(!cat.install(descriptor("cpu"), 10).unwrap());
        assert_eq!(cat.get("cpu").unwrap().version, 1);
    }

    #[test]
    fn conflicting_reinstall_is_rejected() {
        let mut cat = QueryCatalog::new();
        cat.install(descriptor("cpu"), 0).unwrap();
        let other = QueryDescriptor::new("cpu", AggregateKind::Maximum);
        assert_eq!(cat.install(other, 0), Err(QueryError::Conflict));
    }

    #[test]
    fn remove_tombstones_and_resurrection_bumps_version() {
        let mut cat = QueryCatalog::new();
        cat.install(descriptor("cpu"), 0).unwrap();
        cat.remove("cpu", 5).unwrap();
        assert_eq!(cat.remove("cpu", 6), Err(QueryError::UnknownQuery));
        assert_eq!(cat.live_count(10), 0);
        assert_eq!(cat.len(), 1); // the tombstone keeps gossiping
        assert!(cat.install(descriptor("cpu"), 20).unwrap());
        let entry = cat.get("cpu").unwrap();
        assert_eq!(entry.version, 3);
        assert!(entry.is_live(20));
    }

    #[test]
    fn merge_prefers_higher_version_and_tombstones_on_ties() {
        let mut a = QueryCatalog::new();
        let mut b = QueryCatalog::new();
        a.install(descriptor("cpu"), 0).unwrap();
        b.install(descriptor("cpu"), 0).unwrap();
        // Same version on both sides: merging is a no-op either way.
        let b_entries: Vec<CatalogEntry> = b.entries().cloned().collect();
        assert!(!a.merge_all(&b_entries));
        // b removes; its version-2 tombstone must win at a.
        b.remove("cpu", 1).unwrap();
        let b_entries: Vec<CatalogEntry> = b.entries().cloned().collect();
        assert!(a.merge_all(&b_entries));
        assert_eq!(a.live_count(2), 0);
        // Re-merging the same tombstone changes nothing.
        assert!(!a.merge_all(&b_entries));
    }

    #[test]
    fn merge_converges_regardless_of_order() {
        let mut x = QueryCatalog::new();
        x.install(descriptor("a"), 0).unwrap();
        x.remove("a", 1).unwrap();
        x.install(descriptor("a"), 2).unwrap();
        let mut y = QueryCatalog::new();
        y.install(descriptor("b"), 0).unwrap();

        let x_entries: Vec<CatalogEntry> = x.entries().cloned().collect();
        let y_entries: Vec<CatalogEntry> = y.entries().cloned().collect();
        let mut xy = x.clone();
        xy.merge_all(&y_entries);
        let mut yx = y.clone();
        yx.merge_all(&x_entries);
        assert_eq!(xy, yx);
        assert_eq!(xy.live_count(3), 2);
    }

    #[test]
    fn ttl_expiry_is_deterministic_and_merge_stable() {
        let mut a = QueryCatalog::new();
        let d = descriptor("tmp").with_ttl_ms(100);
        a.install(d, 50).unwrap();
        assert!(a.get("tmp").unwrap().is_live(149));
        assert!(!a.get("tmp").unwrap().is_live(150));
        let mut b = a.clone();
        assert_eq!(a.expire(150), 1);
        assert_eq!(b.expire(150), 1);
        // Both replicas produced the same tombstone independently.
        let b_entries: Vec<CatalogEntry> = b.entries().cloned().collect();
        assert!(!a.merge_all(&b_entries));
        assert_eq!(a.expire(151), 0);
    }

    #[test]
    fn install_rejects_invalid_descriptor() {
        let mut cat = QueryCatalog::new();
        let mut bad = descriptor("");
        bad.name = String::new();
        assert!(matches!(
            cat.install(bad, 0),
            Err(QueryError::InvalidDescriptor(_))
        ));
        assert!(cat.is_empty());
    }
}
