//! Client RPC vocabulary: the request/response frames any node serves.
//!
//! The paper's point is that *every* node holds the aggregate, so every
//! node is a valid RPC endpoint. These types are transport-agnostic —
//! `epidemic-net` encodes them as wire tags 13/14, the runtimes' in-
//! process `Cluster` methods construct them directly — and the single
//! server-side entry point is [`crate::QueryPlane::handle_rpc`], so the
//! simulator and both UDP runtimes answer byte-identically.

use crate::descriptor::QueryDescriptor;
use crate::QueryError;

/// A client request, tagged with a caller-chosen correlation id that the
/// response echoes.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcRequest {
    /// Install a named query cluster-wide.
    Install {
        /// Correlation id echoed by the response.
        id: u64,
        /// The query to install.
        descriptor: QueryDescriptor,
    },
    /// Remove (tombstone) a named query cluster-wide.
    Remove {
        /// Correlation id echoed by the response.
        id: u64,
        /// Name of the query to remove.
        name: String,
    },
    /// Submit this node's contribution to a named query.
    Submit {
        /// Correlation id echoed by the response.
        id: u64,
        /// Target query.
        name: String,
        /// The submitted value.
        value: f64,
    },
    /// Read the current estimate of a named query.
    Read {
        /// Correlation id echoed by the response.
        id: u64,
        /// Target query.
        name: String,
    },
}

impl RpcRequest {
    /// The correlation id.
    pub fn id(&self) -> u64 {
        match self {
            RpcRequest::Install { id, .. }
            | RpcRequest::Remove { id, .. }
            | RpcRequest::Submit { id, .. }
            | RpcRequest::Read { id, .. } => *id,
        }
    }

    /// Stable wire code of the operation.
    pub fn op_code(&self) -> u8 {
        match self {
            RpcRequest::Install { .. } => 0,
            RpcRequest::Remove { .. } => 1,
            RpcRequest::Submit { .. } => 2,
            RpcRequest::Read { .. } => 3,
        }
    }
}

/// Outcome code of an RPC, with a stable wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RpcStatus {
    /// The operation succeeded.
    Ok = 0,
    /// No live query of that name.
    UnknownQuery = 1,
    /// The submit was rejected by the query's admission limits.
    AdmissionRejected = 2,
    /// A live query of the same name exists with a different descriptor.
    Conflict = 3,
    /// The request was malformed (bad descriptor, unknown op).
    BadRequest = 4,
    /// The query exists but has not produced an estimate yet.
    NotReady = 5,
}

impl RpcStatus {
    /// Decodes a wire status code.
    pub fn from_code(code: u8) -> Option<RpcStatus> {
        Some(match code {
            0 => RpcStatus::Ok,
            1 => RpcStatus::UnknownQuery,
            2 => RpcStatus::AdmissionRejected,
            3 => RpcStatus::Conflict,
            4 => RpcStatus::BadRequest,
            5 => RpcStatus::NotReady,
            _ => return None,
        })
    }

    /// `true` for every non-`Ok` outcome — the rejection surface counted
    /// in `TrafficCounts::rpc_rejects`.
    pub fn is_reject(self) -> bool {
        self != RpcStatus::Ok
    }
}

impl From<QueryError> for RpcStatus {
    fn from(err: QueryError) -> RpcStatus {
        match err {
            QueryError::UnknownQuery => RpcStatus::UnknownQuery,
            QueryError::AdmissionRejected => RpcStatus::AdmissionRejected,
            QueryError::Conflict => RpcStatus::Conflict,
            QueryError::InvalidDescriptor(_) => RpcStatus::BadRequest,
            QueryError::NotReady => RpcStatus::NotReady,
        }
    }
}

/// The response to an [`RpcRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct RpcResponse {
    /// Correlation id copied from the request.
    pub id: u64,
    /// Outcome.
    pub status: RpcStatus,
    /// Estimate payload; meaningful only for a successful `Read`.
    pub estimate: f64,
    /// Epoch the estimate belongs to; meaningful only for a successful
    /// `Read`.
    pub epoch: u64,
}

impl RpcResponse {
    /// A bare acknowledgement (install/remove/submit success).
    pub fn ack(id: u64) -> Self {
        RpcResponse {
            id,
            status: RpcStatus::Ok,
            estimate: 0.0,
            epoch: 0,
        }
    }

    /// A failure response.
    pub fn reject(id: u64, status: RpcStatus) -> Self {
        RpcResponse {
            id,
            status,
            estimate: 0.0,
            epoch: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_aggregation::AggregateKind;

    #[test]
    fn op_codes_and_ids() {
        let d = QueryDescriptor::new("q", AggregateKind::Average);
        let reqs = [
            RpcRequest::Install {
                id: 7,
                descriptor: d,
            },
            RpcRequest::Remove {
                id: 8,
                name: "q".into(),
            },
            RpcRequest::Submit {
                id: 9,
                name: "q".into(),
                value: 1.0,
            },
            RpcRequest::Read {
                id: 10,
                name: "q".into(),
            },
        ];
        let codes: Vec<u8> = reqs.iter().map(RpcRequest::op_code).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
        let ids: Vec<u64> = reqs.iter().map(RpcRequest::id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn status_codes_round_trip() {
        for code in 0..=5 {
            let status = RpcStatus::from_code(code).unwrap();
            assert_eq!(status as u8, code);
        }
        assert_eq!(RpcStatus::from_code(6), None);
        assert!(!RpcStatus::Ok.is_reject());
        assert!(RpcStatus::UnknownQuery.is_reject());
    }

    #[test]
    fn error_to_status_mapping() {
        assert_eq!(
            RpcStatus::from(QueryError::UnknownQuery),
            RpcStatus::UnknownQuery
        );
        assert_eq!(
            RpcStatus::from(QueryError::AdmissionRejected),
            RpcStatus::AdmissionRejected
        );
        assert_eq!(RpcStatus::from(QueryError::Conflict), RpcStatus::Conflict);
        assert_eq!(
            RpcStatus::from(QueryError::InvalidDescriptor("x")),
            RpcStatus::BadRequest
        );
        assert_eq!(RpcStatus::from(QueryError::NotReady), RpcStatus::NotReady);
    }
}
