//! Multi-tenant query plane for the epidemic aggregation stack.
//!
//! The DSN 2004 protocol makes *every* node hold the aggregate — so
//! every node can answer a client. This crate turns that property into a
//! service: clients install **named queries** (an aggregate kind plus
//! its own epoch geometry, TTL, and admission limits), submit values,
//! and read estimates at *any* node. It layers between the aggregation
//! core and the transports:
//!
//! * [`descriptor`] — [`QueryDescriptor`]: the installable unit.
//! * [`catalog`] — [`QueryCatalog`]: the replicated name → descriptor
//!   map, versioned and tombstoned so replicas converge under epidemic
//!   merging in any delivery order.
//! * [`admission`] — deterministic [`TokenBucket`] limiting the submit
//!   path per (query, node).
//! * [`rpc`] — the transport-agnostic client request/response
//!   vocabulary.
//! * [`plane`] — [`QueryPlane`]: the sans-io per-node state machine
//!   multiplexing one `GossipNode` per live query over the shared
//!   exchange plane. The event simulator and both UDP runtimes in
//!   `epidemic-net` drive this same type, so query behaviour is
//!   conformance-testable across engines.
//!
//! Like every layer below it, the crate performs no I/O: wire encodings
//! for catalog gossip (tag 11), query aggregation frames (tag 12), and
//! the RPC pair (tags 13/14) live in `epidemic-net`'s codec.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod catalog;
pub mod descriptor;
pub mod plane;
pub mod rpc;

pub use admission::TokenBucket;
pub use catalog::{CatalogEntry, QueryCatalog};
pub use descriptor::{kind_code, kind_from_code, AdmissionConfig, QueryDescriptor, MAX_NAME_LEN};
pub use plane::{QueryEpoch, QueryEstimate, QueryOutbound, QueryPlane, QueryPlaneConfig};
pub use rpc::{RpcRequest, RpcResponse, RpcStatus};

use std::fmt;

/// Errors of the query plane's client-facing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No live query of that name at this node.
    UnknownQuery,
    /// The submit exceeded the query's admission limits.
    AdmissionRejected,
    /// A live query of the same name exists with a different descriptor.
    Conflict,
    /// The descriptor failed validation (the message names the
    /// constraint).
    InvalidDescriptor(&'static str),
    /// The query runs but has no readable estimate yet.
    NotReady,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownQuery => f.write_str("unknown query"),
            QueryError::AdmissionRejected => f.write_str("submit rejected by admission limits"),
            QueryError::Conflict => {
                f.write_str("query name already installed with a different descriptor")
            }
            QueryError::InvalidDescriptor(why) => write!(f, "invalid descriptor: {why}"),
            QueryError::NotReady => f.write_str("query has no estimate yet"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let all = [
            QueryError::UnknownQuery,
            QueryError::AdmissionRejected,
            QueryError::Conflict,
            QueryError::InvalidDescriptor("empty query name"),
            QueryError::NotReady,
        ];
        for err in all {
            assert!(!err.to_string().is_empty());
        }
        assert!(QueryError::InvalidDescriptor("empty query name")
            .to_string()
            .contains("empty query name"));
    }
}
