//! Property-based tests of the topology generators.

use epidemic_common::rng::Xoshiro256;
use epidemic_topology::{generate, metrics, CompleteSampler, NeighborSampling};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_k_out_always_valid(
        n in 2usize..300,
        k_frac in 0.01f64..0.99,
        seed in 0u64..1000,
    ) {
        let k = ((n as f64 * k_frac) as usize).clamp(1, n - 1);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let g = generate::random_k_out(n, k, &mut rng).unwrap();
        prop_assert_eq!(g.node_count(), n);
        for u in 0..n {
            let nbrs = g.neighbors(u);
            prop_assert_eq!(nbrs.len(), k);
            prop_assert!(!nbrs.contains(&(u as u32)), "self loop at {}", u);
            let set: std::collections::HashSet<_> = nbrs.iter().collect();
            prop_assert_eq!(set.len(), k, "duplicate neighbor at {}", u);
        }
    }

    #[test]
    fn watts_strogatz_preserves_edges_and_symmetry(
        half_k in 1usize..6,
        beta in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let n = 60;
        let k = half_k * 2;
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let g = generate::watts_strogatz(n, k, beta, &mut rng).unwrap();
        // Rewiring is one-for-one: total directed edge count is unchanged.
        prop_assert_eq!(g.edge_count(), n * k);
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u), "asymmetric edge {}->{}", u, v);
            prop_assert!(u != v, "self loop at {}", u);
        }
    }

    #[test]
    fn lattice_is_connected_and_regular(
        n in 5usize..200,
        half_k in 1usize..4,
    ) {
        let k = (half_k * 2).min(n - 1);
        let k = if k % 2 == 1 { k - 1 } else { k };
        prop_assume!(k >= 2);
        let g = generate::ring_lattice(n, k).unwrap();
        prop_assert!(metrics::is_connected(&g));
        for u in 0..n {
            prop_assert_eq!(g.degree(u), k);
        }
    }

    #[test]
    fn barabasi_albert_is_connected(
        n in 10usize..300,
        m in 1usize..6,
        seed in 0u64..1000,
    ) {
        prop_assume!(n > m + 1);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let g = generate::barabasi_albert(n, m, &mut rng).unwrap();
        prop_assert!(metrics::is_connected(&g));
        // Every non-seed node has degree >= m.
        for u in (m + 1)..n {
            prop_assert!(g.degree(u) >= m, "degree {} < m at {}", g.degree(u), u);
        }
    }

    #[test]
    fn complete_sampler_uniform_support(
        n in 2usize..50,
        seed in 0u64..1000,
    ) {
        let sampler = CompleteSampler::new(n);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let node = rng.index(n);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..(n * 30) {
            let peer = sampler.sample_neighbor(node, &mut rng).unwrap();
            prop_assert!(peer < n);
            prop_assert!(peer != node);
            seen.insert(peer);
        }
        // With 30n draws, all n-1 peers appear with overwhelming probability.
        prop_assert_eq!(seen.len(), n - 1);
    }

    #[test]
    fn components_partition_the_graph(
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut b = epidemic_topology::GraphBuilder::new(40);
        for (u, v) in edges {
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let comp = metrics::connected_components(&g);
        prop_assert_eq!(comp.len(), 40);
        // Connected endpoints share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
        // Component ids are dense 0..count.
        let count = metrics::component_count(&g);
        prop_assert!(comp.iter().all(|&c| c < count));
    }
}
