//! Neighbor sampling abstraction (re-exported from `epidemic-common`).
//!
//! The [`NeighborSampling`] trait — the paper's `GETNEIGHBOR()` primitive —
//! lives in [`epidemic_common::sample`] so that membership
//! (`epidemic-newscast`) and topology (this crate) are sibling layers
//! rather than stacked. This module re-exports it, together with
//! [`CompleteSampler`], so existing `epidemic_topology::{NeighborSampling,
//! CompleteSampler}` imports keep working unchanged.

pub use epidemic_common::sample::{CompleteSampler, NeighborSampling};

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_common::rng::Xoshiro256;

    #[test]
    fn reexported_paths_resolve() {
        // The historical `epidemic_topology` import path must keep working.
        let s: &dyn NeighborSampling = &CompleteSampler::new(3);
        assert_eq!(s.node_count(), 3);
        let mut rng = Xoshiro256::seed_from_u64(4);
        assert!(s.sample_neighbor(0, &mut rng).is_some());
    }
}
