//! Compact adjacency storage.
//!
//! Simulations in this workspace run on overlays with up to a million nodes
//! and degree around 20, so adjacency is stored in compressed sparse row
//! (CSR) form: one flat `Vec<u32>` of neighbor indices plus an offset table.
//! Graphs are built incrementally through [`GraphBuilder`] and then frozen
//! into an immutable [`Graph`].

use crate::sample::NeighborSampling;
use epidemic_common::rng::Xoshiro256;
use std::fmt;

/// Immutable overlay graph in CSR form.
///
/// Edges are directed: `neighbors(u)` is the list of nodes that `u` may
/// initiate an exchange with. Undirected topologies simply store both
/// directions. Note that a push-pull exchange moves information both ways
/// along an edge regardless of its direction, so *weak* connectivity is the
/// relevant criterion for convergence (see [`crate::metrics::is_connected`]).
///
/// # Examples
///
/// ```
/// use epidemic_topology::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_undirected_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert_eq!(g.neighbors(2), &[] as &[u32]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.node_count()`.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[u32] {
        &self.targets[self.offsets[node]..self.offsets[node + 1]]
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.node_count()`.
    #[inline]
    pub fn degree(&self, node: usize) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// Iterates over all directed edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count())
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v as usize)))
    }

    /// Returns `true` if the directed edge `u -> v` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors(u).contains(&(v as u32))
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl NeighborSampling for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn sample_neighbor(&self, node: usize, rng: &mut Xoshiro256) -> Option<usize> {
        let nbrs = self.neighbors(node);
        rng.choose(nbrs).map(|&v| v as usize)
    }
}

/// Incremental builder for [`Graph`].
///
/// Edges may be added in any order; duplicates are kept as-is (generators
/// are responsible for avoiding them where the model forbids multi-edges).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<u32>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); nodes],
        }
    }

    /// Creates a builder pre-reserving `degree` slots per node.
    pub fn with_degree_hint(nodes: usize, degree: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::with_capacity(degree); nodes],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(v < self.adjacency.len(), "target {v} out of range");
        self.adjacency[u].push(v as u32);
        self
    }

    /// Adds both `u -> v` and `v -> u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_undirected_edge(&mut self, u: usize, v: usize) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u);
        self
    }

    /// Returns `true` if the directed edge `u -> v` already exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].contains(&(v as u32))
    }

    /// Current out-degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Mutable access to the adjacency list of `u` (used by the
    /// Watts–Strogatz rewiring pass).
    pub(crate) fn neighbors_mut(&mut self, u: usize) -> &mut Vec<u32> {
        &mut self.adjacency[u]
    }

    /// Out-neighbors of `u`.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adjacency[u]
    }

    /// Freezes the builder into a CSR [`Graph`].
    pub fn build(self) -> Graph {
        let mut offsets = Vec::with_capacity(self.adjacency.len() + 1);
        offsets.push(0);
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        for nbrs in &self.adjacency {
            targets.extend_from_slice(nbrs);
            offsets.push(targets.len());
        }
        Graph { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 0);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        for i in 0..5 {
            assert_eq!(g.degree(i), 0);
            assert!(g.neighbors(i).is_empty());
        }
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        for i in 0..3 {
            assert_eq!(g.degree(i), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = triangle();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 0)));
    }

    #[test]
    fn sampling_returns_a_neighbor() {
        let g = triangle();
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..50 {
            let peer = g.sample_neighbor(0, &mut rng).unwrap();
            assert!(peer == 1 || peer == 2);
        }
    }

    #[test]
    fn sampling_isolated_node_is_none() {
        let g = GraphBuilder::new(2).build();
        let mut rng = Xoshiro256::seed_from_u64(4);
        assert_eq!(g.sample_neighbor(0, &mut rng), None);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 3);
        let g = b.build();
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 4];
        let trials = 30_000;
        for _ in 0..trials {
            counts[g.sample_neighbor(0, &mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            assert!((c as i64 - 10_000).abs() < 1_000, "count {c} not ~10000");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_bad_target() {
        GraphBuilder::new(2).add_edge(0, 7);
    }

    #[test]
    fn builder_degree_and_has_edge() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        assert!(b.has_edge(0, 1));
        assert!(!b.has_edge(1, 0));
        assert_eq!(b.degree(0), 1);
        assert_eq!(b.degree(1), 0);
    }

    #[test]
    fn debug_format_is_compact() {
        let g = triangle();
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 3"));
        assert!(s.contains("edges: 6"));
    }
}
