//! Graph analysis used to validate generated topologies.
//!
//! The convergence results of the paper hinge on structural properties of
//! the overlay (randomness, connectivity, path length), so the test suite
//! and the experiment harness verify them explicitly:
//!
//! * [`is_connected`] / [`connected_components`] — weak connectivity, the
//!   necessary condition for gossip averaging to converge to the true mean.
//! * [`degree_summary`] — degree distribution statistics.
//! * [`clustering_coefficient`] — local clustering (high for lattices, low
//!   for random graphs; the small-world signature).
//! * [`average_path_length`] — BFS-sampled mean shortest path.

use crate::graph::Graph;
use epidemic_common::rng::Xoshiro256;
use epidemic_common::stats::{OnlineStats, Summary};
use std::collections::VecDeque;

/// Returns the weakly connected component id of every node.
///
/// Weak connectivity treats every directed edge as bidirectional, which is
/// the right notion for push-pull gossip: an exchange moves information in
/// both directions regardless of which endpoint initiated it.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    // Build reverse adjacency once so the scan is O(V + E).
    let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        reverse[v].push(u as u32);
    }
    let mut component = vec![usize::MAX; n];
    let mut current = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = current;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if component[v] == usize::MAX {
                    component[v] = current;
                    queue.push_back(v);
                }
            }
            for &v in &reverse[u] {
                let v = v as usize;
                if component[v] == usize::MAX {
                    component[v] = current;
                    queue.push_back(v);
                }
            }
        }
        current += 1;
    }
    component
}

/// Returns `true` if the graph is weakly connected (and non-empty).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() == 0 {
        return false;
    }
    let components = connected_components(g);
    components.iter().all(|&c| c == 0)
}

/// Number of weakly connected components.
pub fn component_count(g: &Graph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

/// Summary statistics (mean/variance/min/max) of the out-degree
/// distribution.
pub fn degree_summary(g: &Graph) -> Summary {
    let stats: OnlineStats = (0..g.node_count()).map(|u| g.degree(u) as f64).collect();
    stats.summary()
}

/// Average local clustering coefficient over a random sample of nodes.
///
/// For each sampled node the coefficient is the fraction of its neighbor
/// pairs that are themselves connected; nodes with degree below 2
/// contribute 0. Pass `sample >= n` for the exact value.
pub fn clustering_coefficient(g: &Graph, sample: usize, rng: &mut Xoshiro256) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    let nodes: Vec<usize> = if sample >= n {
        (0..n).collect()
    } else {
        rng.sample_distinct(n, sample)
    };
    let mut total = 0.0;
    for &u in &nodes {
        let nbrs = g.neighbors(u);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        let mut links = 0usize;
        for i in 0..d {
            for j in (i + 1)..d {
                if g.has_edge(nbrs[i] as usize, nbrs[j] as usize)
                    || g.has_edge(nbrs[j] as usize, nbrs[i] as usize)
                {
                    links += 1;
                }
            }
        }
        total += links as f64 / (d * (d - 1) / 2) as f64;
    }
    total / nodes.len() as f64
}

/// Mean shortest-path length estimated by BFS from `sources` random
/// sources, following edges in both directions.
///
/// Unreachable pairs are ignored. Returns `0.0` for graphs with fewer than
/// two nodes.
pub fn average_path_length(g: &Graph, sources: usize, rng: &mut Xoshiro256) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        reverse[v].push(u as u32);
    }
    let starts: Vec<usize> = if sources >= n {
        (0..n).collect()
    } else {
        rng.sample_distinct(n, sources)
    };
    let mut stats = OnlineStats::new();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for &s in &starts {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            for &v in g.neighbors(u).iter().chain(reverse[u].iter()) {
                let v = v as usize;
                if dist[v] == u32::MAX {
                    dist[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if v != s && d != u32::MAX {
                stats.push(d as f64);
            }
        }
    }
    stats.mean()
}

/// Eccentricity lower bound via the double-sweep heuristic: BFS from `start`,
/// then BFS again from the farthest node found. Gives a good diameter
/// estimate on small-world graphs.
pub fn estimated_diameter(g: &Graph, start: usize) -> usize {
    let n = g.node_count();
    if n == 0 {
        return 0;
    }
    let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        reverse[v].push(u as u32);
    }
    let bfs_far = |s: usize| -> (usize, usize) {
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        let mut far = (s, 0u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            if du > far.1 {
                far = (u, du);
            }
            for &v in g.neighbors(u).iter().chain(reverse[u].iter()) {
                let v = v as usize;
                if dist[v] == u32::MAX {
                    dist[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        (far.0, far.1 as usize)
    };
    let (far_node, _) = bfs_far(start.min(n - 1));
    let (_, diameter) = bfs_far(far_node);
    diameter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::graph::GraphBuilder;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_undirected_edge(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn connectivity_of_path() {
        let g = path_graph(10);
        assert!(is_connected(&g));
        assert_eq!(component_count(&g), 1);
    }

    #[test]
    fn disconnected_components_counted() {
        let mut b = GraphBuilder::new(6);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(2, 3);
        // 4 and 5 isolated.
        let g = b.build();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 4);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[5]);
    }

    #[test]
    fn weak_connectivity_follows_reverse_edges() {
        // 0 -> 1, 2 -> 1: weakly connected even though 1 has no out-edges.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(2, 1);
        let g = b.build();
        assert!(is_connected(&g));
    }

    #[test]
    fn empty_graph_is_not_connected() {
        let g = GraphBuilder::new(0).build();
        assert!(!is_connected(&g));
        assert_eq!(component_count(&g), 0);
    }

    #[test]
    fn degree_summary_of_lattice() {
        let g = generate::ring_lattice(20, 4).unwrap();
        let s = degree_summary(&g);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn clustering_lattice_vs_random() {
        let mut r = rng(1);
        let lattice = generate::ring_lattice(200, 10).unwrap();
        let random = generate::random_k_out(200, 10, &mut r).unwrap();
        let c_lat = clustering_coefficient(&lattice, 200, &mut r);
        let c_rnd = clustering_coefficient(&random, 200, &mut r);
        // Lattice clustering is 2/3 as k -> inf; random ~ k/n.
        assert!(c_lat > 0.5, "lattice clustering {c_lat}");
        assert!(c_rnd < 0.15, "random clustering {c_rnd}");
        assert!(c_lat > 3.0 * c_rnd);
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1);
        b.add_undirected_edge(1, 2);
        b.add_undirected_edge(2, 0);
        let g = b.build();
        let c = clustering_coefficient(&g, 3, &mut rng(2));
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_length_of_path_graph() {
        let g = path_graph(5);
        // Exact: all pairs, mean distance of a path P5 = 2.0.
        let apl = average_path_length(&g, 5, &mut rng(3));
        assert!((apl - 2.0).abs() < 1e-12);
    }

    #[test]
    fn small_world_shortens_paths() {
        let mut r = rng(4);
        let lattice = generate::ring_lattice(1000, 10).unwrap();
        let ws = generate::watts_strogatz(1000, 10, 0.25, &mut r).unwrap();
        let apl_lat = average_path_length(&lattice, 30, &mut r);
        let apl_ws = average_path_length(&ws, 30, &mut r);
        assert!(
            apl_ws < apl_lat / 2.0,
            "rewiring should shorten paths: lattice {apl_lat}, ws {apl_ws}"
        );
    }

    #[test]
    fn diameter_of_path_graph() {
        let g = path_graph(8);
        assert_eq!(estimated_diameter(&g, 3), 7);
    }

    #[test]
    fn diameter_of_random_graph_is_small() {
        let mut r = rng(5);
        let g = generate::random_k_out(1000, 20, &mut r).unwrap();
        let d = estimated_diameter(&g, 0);
        assert!(d <= 5, "random k-out diameter {d} unexpectedly large");
    }

    #[test]
    fn empty_and_tiny_graph_metrics() {
        let empty = GraphBuilder::new(0).build();
        assert_eq!(estimated_diameter(&empty, 0), 0);
        assert_eq!(average_path_length(&empty, 3, &mut rng(6)), 0.0);
        let single = GraphBuilder::new(1).build();
        assert_eq!(average_path_length(&single, 1, &mut rng(6)), 0.0);
        assert_eq!(clustering_coefficient(&single, 1, &mut rng(6)), 0.0);
    }
}
