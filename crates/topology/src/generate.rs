//! Topology generators.
//!
//! Deterministic (seeded) generators for every static overlay evaluated in
//! Section 4.4 of the paper:
//!
//! * [`complete`] — every node knows every other node.
//! * [`random_k_out`] — each node's neighbor set is a random sample of `k`
//!   distinct peers (the paper's "random network" with degree 20).
//! * [`ring_lattice`] — nodes on a ring, connected to the `k/2` nearest
//!   neighbors on each side (the Watts–Strogatz β = 0 case).
//! * [`watts_strogatz`] — ring lattice with each lattice edge rewired to a
//!   random target with probability β.
//! * [`barabasi_albert`] — preferential attachment; each new node wires `m`
//!   edges to existing nodes picked proportionally to their degree.
//!
//! [`TopologyKind`] names the full family (including the implicit complete
//! graph and the dynamic NEWSCAST overlay) so experiment configuration can
//! be data-driven.

use crate::graph::{Graph, GraphBuilder};
use epidemic_common::rng::Xoshiro256;
use std::error::Error;
use std::fmt;

/// Error raised when generator parameters are inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// The requested degree cannot be realized for the given node count.
    DegreeTooLarge {
        /// Number of nodes requested.
        nodes: usize,
        /// Degree requested.
        degree: usize,
    },
    /// The lattice degree must be even (k/2 neighbors on each side).
    OddLatticeDegree(usize),
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability(f64),
    /// The generator needs at least this many nodes.
    TooFewNodes {
        /// Number of nodes requested.
        requested: usize,
        /// Minimum supported.
        minimum: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DegreeTooLarge { nodes, degree } => {
                write!(f, "degree {degree} is not realizable with {nodes} nodes")
            }
            TopologyError::OddLatticeDegree(k) => {
                write!(f, "lattice degree must be even, got {k}")
            }
            TopologyError::InvalidProbability(p) => {
                write!(f, "probability must be in [0, 1], got {p}")
            }
            TopologyError::TooFewNodes { requested, minimum } => {
                write!(
                    f,
                    "generator needs at least {minimum} nodes, got {requested}"
                )
            }
        }
    }
}

impl Error for TopologyError {}

/// Complete graph on `n` nodes (materialized).
///
/// Only practical for small `n`; for large networks use
/// [`crate::CompleteSampler`], which draws neighbors without storing edges.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_degree_hint(n, n.saturating_sub(1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Random k-out graph: each node's neighbor list is a uniform sample of `k`
/// distinct peers, excluding itself (directed; this is the paper's "random"
/// topology with `k = 20`).
///
/// # Errors
///
/// Returns [`TopologyError::DegreeTooLarge`] if `k >= n`.
pub fn random_k_out(n: usize, k: usize, rng: &mut Xoshiro256) -> Result<Graph, TopologyError> {
    if n == 0 || k >= n {
        return Err(TopologyError::DegreeTooLarge {
            nodes: n,
            degree: k,
        });
    }
    let mut b = GraphBuilder::with_degree_hint(n, k);
    for u in 0..n {
        // Sample k distinct targets from the n-1 peers (skip self by shift).
        for raw in rng.sample_distinct(n - 1, k) {
            let v = if raw >= u { raw + 1 } else { raw };
            b.add_edge(u, v);
        }
    }
    Ok(b.build())
}

/// Ring lattice: `n` nodes on a ring, each connected (undirected) to its
/// `k/2` nearest neighbors on both sides.
///
/// # Errors
///
/// Returns an error if `k` is odd, `k >= n`, or `n < 3`.
pub fn ring_lattice(n: usize, k: usize) -> Result<Graph, TopologyError> {
    validate_lattice(n, k)?;
    let mut b = GraphBuilder::with_degree_hint(n, k);
    let half = k / 2;
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            b.add_undirected_edge(u, v);
        }
    }
    Ok(b.build())
}

fn validate_lattice(n: usize, k: usize) -> Result<(), TopologyError> {
    if n < 3 {
        return Err(TopologyError::TooFewNodes {
            requested: n,
            minimum: 3,
        });
    }
    if k % 2 != 0 {
        return Err(TopologyError::OddLatticeDegree(k));
    }
    if k >= n {
        return Err(TopologyError::DegreeTooLarge {
            nodes: n,
            degree: k,
        });
    }
    Ok(())
}

/// Watts–Strogatz small-world graph.
///
/// Starts from [`ring_lattice`]`(n, k)` and rewires each "forward" lattice
/// edge `(u, u+j)` with probability `beta`: the edge is removed and replaced
/// by `(u, w)` for a uniform random `w` avoiding self-loops and duplicate
/// edges (Watts & Strogatz, Nature 393, 1998). `beta = 0` leaves the
/// lattice intact; `beta = 1` rewires every edge.
///
/// # Errors
///
/// Returns an error for invalid lattice parameters or `beta` outside
/// `[0, 1]`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut Xoshiro256,
) -> Result<Graph, TopologyError> {
    validate_lattice(n, k)?;
    if !(0.0..=1.0).contains(&beta) {
        return Err(TopologyError::InvalidProbability(beta));
    }
    let half = k / 2;
    let mut b = GraphBuilder::with_degree_hint(n, k);
    // Build the lattice first.
    for u in 0..n {
        for j in 1..=half {
            let v = (u + j) % n;
            b.add_undirected_edge(u, v);
        }
    }
    if beta == 0.0 {
        return Ok(b.build());
    }
    // Rewire pass: scan forward lattice edges in the canonical W-S order.
    for j in 1..=half {
        for u in 0..n {
            if !rng.next_bool(beta) {
                continue;
            }
            let old_v = (u + j) % n;
            // Draw a new target avoiding self-loops and duplicates; skip the
            // rewire if the node is already saturated (tiny n edge case).
            if b.degree(u) >= n - 1 {
                continue;
            }
            let new_v = loop {
                let w = rng.index(n);
                if w != u && !b.has_edge(u, w) {
                    break w;
                }
            };
            remove_directed(&mut b, u, old_v);
            remove_directed(&mut b, old_v, u);
            b.add_undirected_edge(u, new_v);
        }
    }
    Ok(b.build())
}

fn remove_directed(b: &mut GraphBuilder, u: usize, v: usize) {
    let nbrs = b.neighbors_mut(u);
    if let Some(pos) = nbrs.iter().position(|&x| x == v as u32) {
        nbrs.swap_remove(pos);
    }
}

/// Barabási–Albert scale-free graph via preferential attachment.
///
/// Starts from a clique of `m + 1` seed nodes; every subsequent node
/// attaches `m` undirected edges to distinct existing nodes chosen with
/// probability proportional to their current degree (implemented with the
/// repeated-endpoints trick). The paper's scale-free topology uses a mean
/// degree of about 20, i.e. `m = 10`.
///
/// # Errors
///
/// Returns an error if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut Xoshiro256) -> Result<Graph, TopologyError> {
    if m == 0 {
        return Err(TopologyError::DegreeTooLarge {
            nodes: n,
            degree: m,
        });
    }
    if n <= m + 1 {
        return Err(TopologyError::TooFewNodes {
            requested: n,
            minimum: m + 2,
        });
    }
    let mut b = GraphBuilder::with_degree_hint(n, 2 * m);
    // Every edge endpoint is appended here; sampling a uniform element of
    // this vector is exactly degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);
    for u in 0..=m {
        for v in (u + 1)..=m {
            b.add_undirected_edge(u, v);
            endpoints.push(u as u32);
            endpoints.push(v as u32);
        }
    }
    let mut chosen = Vec::with_capacity(m);
    for u in (m + 1)..n {
        chosen.clear();
        while chosen.len() < m {
            let v = endpoints[rng.index(endpoints.len())];
            if v as usize != u && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            b.add_undirected_edge(u, v as usize);
            endpoints.push(u as u32);
            endpoints.push(v);
        }
    }
    Ok(b.build())
}

/// Named topology families used throughout the experiments.
///
/// `degree`-style parameters follow the paper: all regular topologies use
/// degree 20, the scale-free graph uses `m = 10` (mean degree ≈ 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// Complete graph (implicit; use [`crate::CompleteSampler`]).
    Complete,
    /// Random k-out graph.
    Random {
        /// Out-degree of every node.
        k: usize,
    },
    /// Ring lattice (Watts–Strogatz with β = 0).
    RingLattice {
        /// Even lattice degree.
        k: usize,
    },
    /// Watts–Strogatz small world.
    WattsStrogatz {
        /// Even lattice degree.
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// Barabási–Albert scale-free graph.
    ScaleFree {
        /// Edges attached by each arriving node.
        m: usize,
    },
}

impl TopologyKind {
    /// Generates the topology over `n` nodes.
    ///
    /// # Errors
    ///
    /// Propagates the parameter-validation errors of the individual
    /// generators. `Complete` is materialized — prefer
    /// [`crate::CompleteSampler`] for large `n`.
    pub fn generate(self, n: usize, rng: &mut Xoshiro256) -> Result<Graph, TopologyError> {
        match self {
            TopologyKind::Complete => Ok(complete(n)),
            TopologyKind::Random { k } => random_k_out(n, k, rng),
            TopologyKind::RingLattice { k } => ring_lattice(n, k),
            TopologyKind::WattsStrogatz { k, beta } => watts_strogatz(n, k, beta, rng),
            TopologyKind::ScaleFree { m } => barabasi_albert(n, m, rng),
        }
    }

    /// Short human-readable label used in experiment output.
    pub fn label(self) -> String {
        match self {
            TopologyKind::Complete => "complete".to_string(),
            TopologyKind::Random { k } => format!("random(k={k})"),
            TopologyKind::RingLattice { k } => format!("lattice(k={k})"),
            TopologyKind::WattsStrogatz { k: _, beta } => format!("w-s(beta={beta:.2})"),
            TopologyKind::ScaleFree { m } => format!("scale-free(m={m})"),
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn complete_small() {
        let g = complete(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 20);
        for u in 0..5 {
            assert_eq!(g.degree(u), 4);
            assert!(!g.has_edge(u, u));
        }
    }

    #[test]
    fn random_k_out_degrees_and_validity() {
        let g = random_k_out(100, 20, &mut rng(1)).unwrap();
        for u in 0..100 {
            assert_eq!(g.degree(u), 20);
            let nbrs = g.neighbors(u);
            let set: std::collections::HashSet<_> = nbrs.iter().collect();
            assert_eq!(set.len(), 20, "duplicate neighbors at {u}");
            assert!(!nbrs.contains(&(u as u32)), "self-loop at {u}");
        }
    }

    #[test]
    fn random_k_out_rejects_k_ge_n() {
        assert!(random_k_out(5, 5, &mut rng(2)).is_err());
        assert!(random_k_out(0, 0, &mut rng(2)).is_err());
    }

    #[test]
    fn random_k_out_is_deterministic() {
        let a = random_k_out(50, 5, &mut rng(7)).unwrap();
        let b = random_k_out(50, 5, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ring_lattice_structure() {
        let g = ring_lattice(10, 4).unwrap();
        for u in 0..10 {
            assert_eq!(g.degree(u), 4);
            assert!(g.has_edge(u, (u + 1) % 10));
            assert!(g.has_edge(u, (u + 2) % 10));
            assert!(g.has_edge(u, (u + 8) % 10));
            assert!(g.has_edge(u, (u + 9) % 10));
        }
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn ring_lattice_validation() {
        assert_eq!(
            ring_lattice(10, 3).unwrap_err(),
            TopologyError::OddLatticeDegree(3)
        );
        assert!(ring_lattice(2, 2).is_err());
        assert!(ring_lattice(10, 10).is_err());
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let ws = watts_strogatz(30, 6, 0.0, &mut rng(3)).unwrap();
        let lat = ring_lattice(30, 6).unwrap();
        assert_eq!(ws, lat);
    }

    #[test]
    fn watts_strogatz_preserves_edge_count() {
        for beta in [0.1, 0.5, 1.0] {
            let g = watts_strogatz(200, 10, beta, &mut rng(4)).unwrap();
            // Rewiring replaces edges one-for-one.
            assert_eq!(g.edge_count(), 200 * 10, "beta={beta}");
            // Mean degree is preserved even though individual degrees vary.
            let total: usize = (0..200).map(|u| g.degree(u)).sum();
            assert_eq!(total, 2000);
        }
    }

    #[test]
    fn watts_strogatz_no_self_loops_or_duplicates() {
        let g = watts_strogatz(100, 8, 0.7, &mut rng(5)).unwrap();
        for u in 0..100 {
            let nbrs = g.neighbors(u);
            assert!(!nbrs.contains(&(u as u32)), "self-loop at {u}");
            let set: std::collections::HashSet<_> = nbrs.iter().collect();
            assert_eq!(set.len(), nbrs.len(), "duplicate edge at {u}");
        }
    }

    #[test]
    fn watts_strogatz_remains_symmetric() {
        let g = watts_strogatz(80, 6, 0.4, &mut rng(6)).unwrap();
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "edge {u}->{v} has no reverse");
        }
    }

    #[test]
    fn watts_strogatz_beta_one_destroys_lattice() {
        let g = watts_strogatz(500, 10, 1.0, &mut rng(8)).unwrap();
        // Count surviving forward lattice edges; with full rewiring only a
        // small fraction should remain by chance.
        let surviving = (0..500)
            .flat_map(|u| (1..=5).map(move |j| (u, (u + j) % 500)))
            .filter(|&(u, v)| g.has_edge(u, v))
            .count();
        assert!(
            surviving < 250,
            "too many lattice edges survived: {surviving}"
        );
    }

    #[test]
    fn watts_strogatz_rejects_bad_beta() {
        assert!(matches!(
            watts_strogatz(10, 4, 1.5, &mut rng(9)),
            Err(TopologyError::InvalidProbability(_))
        ));
        assert!(watts_strogatz(10, 4, -0.1, &mut rng(9)).is_err());
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let n = 300;
        let m = 4;
        let g = barabasi_albert(n, m, &mut rng(10)).unwrap();
        // clique(m+1) + m per subsequent node, undirected => 2x directed.
        let clique_edges = (m + 1) * m / 2;
        let expected = 2 * (clique_edges + m * (n - m - 1));
        assert_eq!(g.edge_count(), expected);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn barabasi_albert_is_skewed() {
        let g = barabasi_albert(2000, 3, &mut rng(11)).unwrap();
        let max_degree = (0..2000).map(|u| g.degree(u)).max().unwrap();
        // Hubs should appear: max degree far above the mean (~6).
        assert!(
            max_degree > 40,
            "max degree {max_degree} too small for scale-free"
        );
    }

    #[test]
    fn barabasi_albert_no_self_loops_or_duplicates() {
        let g = barabasi_albert(400, 5, &mut rng(12)).unwrap();
        for u in 0..400 {
            let nbrs = g.neighbors(u);
            assert!(!nbrs.contains(&(u as u32)));
            let set: std::collections::HashSet<_> = nbrs.iter().collect();
            assert_eq!(set.len(), nbrs.len());
        }
    }

    #[test]
    fn barabasi_albert_validation() {
        assert!(barabasi_albert(5, 0, &mut rng(13)).is_err());
        assert!(barabasi_albert(3, 3, &mut rng(13)).is_err());
    }

    #[test]
    fn kind_generate_dispatches() {
        let mut r = rng(14);
        assert_eq!(
            TopologyKind::Complete
                .generate(4, &mut r)
                .unwrap()
                .edge_count(),
            12
        );
        assert!(TopologyKind::Random { k: 3 }.generate(10, &mut r).is_ok());
        assert!(TopologyKind::RingLattice { k: 4 }
            .generate(10, &mut r)
            .is_ok());
        assert!(TopologyKind::WattsStrogatz { k: 4, beta: 0.5 }
            .generate(10, &mut r)
            .is_ok());
        assert!(TopologyKind::ScaleFree { m: 2 }
            .generate(10, &mut r)
            .is_ok());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(TopologyKind::Complete.label(), "complete");
        assert_eq!(TopologyKind::Random { k: 20 }.label(), "random(k=20)");
        assert_eq!(
            TopologyKind::WattsStrogatz { k: 20, beta: 0.25 }.to_string(),
            "w-s(beta=0.25)"
        );
    }

    #[test]
    fn error_display_messages() {
        let e = TopologyError::DegreeTooLarge {
            nodes: 5,
            degree: 9,
        };
        assert!(e.to_string().contains("degree 9"));
        assert!(TopologyError::OddLatticeDegree(3)
            .to_string()
            .contains("even"));
        assert!(TopologyError::InvalidProbability(2.0)
            .to_string()
            .contains("[0, 1]"));
        let e = TopologyError::TooFewNodes {
            requested: 1,
            minimum: 3,
        };
        assert!(e.to_string().contains("at least 3"));
    }
}
