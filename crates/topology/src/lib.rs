//! Overlay topologies for epidemic aggregation.
//!
//! The DSN 2004 paper evaluates the aggregation protocol over a family of
//! overlay topologies (Section 4.4): complete graphs, random k-out graphs,
//! ring lattices, Watts–Strogatz small worlds, Barabási–Albert scale-free
//! graphs, and the dynamic NEWSCAST overlay (in its own crate). This crate
//! provides:
//!
//! * [`Graph`] — a compact CSR adjacency structure sized for millions of
//!   nodes ([`graph`]).
//! * [`generate`] — deterministic generators for every static topology in
//!   the paper.
//! * [`metrics`] — connectivity, degree, clustering, and path-length
//!   analysis used to validate the generators.
//! * [`NeighborSampling`] — the one-method abstraction the aggregation
//!   protocol needs from a topology: "give me a uniformly random neighbor".
//!   The trait itself lives in [`epidemic_common::sample`] (so membership
//!   and topology stay sibling layers) and is re-exported here.
//!
//! # Examples
//!
//! ```
//! use epidemic_common::rng::Xoshiro256;
//! use epidemic_topology::generate;
//! use epidemic_topology::metrics;
//! use epidemic_topology::NeighborSampling;
//!
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let g = generate::watts_strogatz(1_000, 20, 0.25, &mut rng)?;
//! assert!(metrics::is_connected(&g));
//! let peer = g.sample_neighbor(0, &mut rng);
//! assert!(peer.is_some());
//! # Ok::<(), epidemic_topology::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generate;
pub mod graph;
pub mod metrics;
pub mod sample;

pub use generate::{TopologyError, TopologyKind};
pub use graph::{Graph, GraphBuilder};
pub use sample::{CompleteSampler, NeighborSampling};
